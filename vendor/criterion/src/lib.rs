//! A minimal, offline, API-compatible stand-in for the `criterion` crate:
//! groups, `bench_function` / `bench_with_input`, `iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! fixed-iteration median-of-samples wall-clock timer — far simpler than
//! real Criterion's statistics, but stable enough to compare the plans
//! this workspace benches against each other.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accept both `&str` and `BenchmarkId` where real criterion does.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.full
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_target: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // calibrate: aim for samples of at least ~1ms or 10 iterations
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000)
            as u64;
        self.iters_per_sample = per_sample;
        for _ in 0..self.sample_target {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / per_sample as u32);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_target: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples (b.iter never called)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "  {label}: median {} (min {}, max {}, {} samples x {} iters)",
        fmt_dur(median),
        fmt_dur(min),
        fmt_dur(max),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
