//! A minimal, offline, API-compatible stand-in for the `rand` crate:
//! exactly the surface this workspace uses (`StdRng::seed_from_u64`,
//! `gen_range` over integer/float ranges, `gen_bool`, `gen_ratio`). The
//! generator is SplitMix64 — statistically fine for synthetic data
//! generation, not for cryptography.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit source every `Rng` method builds on.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Integer types samplable through a common i128-widening path. The single
/// blanket impl over this trait (rather than one impl per primitive) is
/// what lets type inference flow from the use site into range literals,
/// exactly as with the real `rand`.
pub trait UniformInt: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range: empty range");
        let span = (hi - lo) as u128;
        T::from_i128(lo + ((rng.next_u64() as u128) % span) as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range: empty range");
        let span = (hi - lo) as u128 + 1;
        T::from_i128(lo + ((rng.next_u64() as u128) % span) as i128)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, decent equidistribution for data synthesis.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0..10usize);
            assert_eq!(x, b.gen_range(0..10usize));
            assert!(x < 10);
            let y = a.gen_range(1..=3i64);
            assert!((1..=3).contains(&y));
            assert_eq!(y, b.gen_range(1..=3i64));
            let f = a.gen_range(0.5..1.0f64);
            assert!((0.5..1.0).contains(&f));
            b.gen_range(0.5..1.0f64);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
