//! A minimal, offline, API-compatible stand-in for the `proptest` crate,
//! covering exactly the surface this workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, `boxed`, tuples, ranges, `Just`,
//!   `any::<bool>()`, weighted/unweighted [`prop_oneof!`], and string
//!   strategies from simple character-class regexes (`"[a-z]{1,6}"`);
//! * [`collection::vec`] with a size range or an exact count;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//!   `prop_assert*` macros returning [`test_runner::TestCaseError`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case is
//! reported with its full `Debug` rendering. Generation is deterministic
//! per test (seeded from the case index), so failures reproduce.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A failed property; carries the failure message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// Proptest's "discard this case" marker; treated as a pass here.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(format!("rejected: {}", msg.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

/// The RNG driving generation: SplitMix64, seeded per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy: 'static {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self // already erased; re-boxing would only add indirection
    }
}

/// Strategy returning a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
    O: fmt::Debug,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// String strategies from a simple regex subset: a concatenation of
/// `[class]` atoms (ranges, literals, trailing `-`) each optionally
/// followed by `{n}` or `{m,n}`. This covers every pattern in the test
/// suite; anything else panics loudly.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        // parse one atom: a character class or a literal character
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pat}"))
                + i;
            let mut class = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad range in pattern {pat}");
                    class.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    class.push(chars[j]); // literal, including trailing '-'
                    j += 1;
                }
            }
            i = close + 1;
            class
        } else {
            let c = chars[i];
            assert!(
                !['(', ')', '|', '*', '+', '?', '.', '\\'].contains(&c),
                "unsupported regex construct '{c}' in pattern {pat}"
            );
            i += 1;
            vec![c]
        };
        // parse an optional {n} / {m,n} repetition
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                None => {
                    let n: usize = spec.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        assert!(!class.is_empty(), "empty class in pattern {pat}");
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` support (subset: the types the tests request).
pub trait Arbitrary: fmt::Debug + Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A weighted union of boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for WeightedUnion<T> {
    fn clone(&self) -> Self {
        WeightedUnion {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T: fmt::Debug + 'static> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights exhausted")
    }
}

pub fn weighted_union<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> WeightedUnion<T> {
    let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "prop_oneof! needs at least one arm");
    WeightedUnion { arms, total }
}

pub mod collection {
    use super::{fmt, Strategy, TestRng};
    use std::ops::Range;

    /// Vec sizes: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S: Strategy> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy + Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, WeightedUnion};
}

pub mod prelude {
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::weighted_union(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::weighted_union(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                        stringify!($a), stringify!($b), a, b, format!($($fmt)*)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} != {}\n  both: {:?}",
                        stringify!($a), stringify!($b), a),
            ));
        }
    }};
}

/// The test-definition macro. Each `#[test] fn name(arg in strategy, ..)
/// { body }` becomes a plain `#[test]` that runs `body` over `cases`
/// generated inputs. The body may `return Err(TestCaseError)` (that is
/// what the `prop_assert*` macros expand to); the harness panics with the
/// message and the `Debug` rendering of the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Strategies are rebuilt once per test, not per case.
            $(let $arg = $strat;)*
            for case in 0..config.cases {
                // Mix the case index into the seed; keep it deterministic.
                let mut rng = $crate::TestRng::new(
                    0xC0FF_EE00_0000_0000u64 ^ (case as u64).wrapping_mul(0x9E37_79B9)
                );
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)*
                // Render the inputs before the body can move them.
                let inputs = format!("{:?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn patterns_generate_within_class_and_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1}", &mut rng);
            assert_eq!(s.len(), 1);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
            let s = Strategy::generate(&"[a-z][a-z0-9-]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let s = Strategy::generate(&"[a-zA-Z0-9 .,;:()-]{0,16}", &mut rng);
            assert!(s.len() <= 16);
        }
    }

    #[test]
    fn oneof_honors_weights_loosely() {
        let strat = prop_oneof![
            9 => Just(1),
            1 => Just(2),
        ];
        let mut rng = TestRng::new(9);
        let ones = (0..1000)
            .filter(|_| Strategy::generate(&strat, &mut rng) == 1)
            .count();
        assert!(ones > 800, "{ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_wires_strategies_through(x in 0i64..10, v in super::collection::vec(0i64..5, 0..4)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.iter().copied().count(), v.len());
        }
    }
}
