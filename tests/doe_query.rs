//! End-to-end reproduction of the paper's "impossible" DOE query
//! (experiment E1 in DESIGN.md): chromosome-22 loci from the relational
//! GDB source joined through Entrez sequence ids to non-human homology
//! links, validated exactly against the generator's ground truth.

use std::collections::BTreeMap;

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, Session};
use kleisli_core::{DriverRequest, LatencyModel, Value};
use nrc::Expr;

fn federation() -> (Session, kleisli::BioFederation) {
    let fed = bio_federation(
        &GdbConfig {
            loci: 400,
            seed: 11,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 120,
            links_per_entry: 3,
            seed: 11,
            ..Default::default()
        },
        LatencyModel::instant(),
        LatencyModel::instant(),
    )
    .expect("federation");
    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());
    session
        .run(
            r#"
            define Loci22 == {[locus_symbol = x, genbank_ref = y] |
                [locus_symbol = \x, locus_id = \a, ...] <- GDB-Tab("locus"),
                [genbank_ref = \y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
                [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")};
            define ASN-IDs == \accession =>
                flatten(GenBank([db = "na",
                                 select = "accession " ^ accession,
                                 path = "Seq-entry.seq.id..giim"]));
            define NA-Links == \uid => GenBank([db = "na", link = uid]);
        "#,
        )
        .expect("defines");
    (session, fed)
}

const DOE: &str = r#"{[locus = locus, homologs =
        {l | \l <- NA-Links(uid), not (l.organism = "Homo sapiens")}] |
    \locus <- Loci22, \uid <- ASN-IDs(locus.genbank_ref)}"#;

#[test]
fn doe_query_matches_ground_truth_exactly() {
    let (session, fed) = federation();
    let result = session.query(DOE).expect("query");

    // ground truth from the generators
    let mut expected: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for (symbol, acc) in fed.gdb_data.expected_loci("22") {
        let uid = fed
            .genbank_data
            .entry_by_accession(acc)
            .expect("entry")
            .uid;
        let mut homologs = fed.genbank_data.expected_non_human_links(uid);
        homologs.sort();
        homologs.dedup();
        expected.insert(symbol.to_string(), homologs);
    }
    assert!(!expected.is_empty(), "seed must put loci on chromosome 22");
    assert!(
        expected.values().any(|h| !h.is_empty()),
        "seed must produce some non-human homologs"
    );

    let rows = result.elements().expect("set result");
    assert_eq!(rows.len(), expected.len(), "one row per chr-22 locus");
    for row in rows {
        let locus = row.project("locus").expect("locus");
        let symbol = match locus.project("locus_symbol") {
            Some(Value::Str(s)) => s.to_string(),
            other => panic!("bad locus_symbol {other:?}"),
        };
        let want = expected.get(&symbol).expect("known locus");
        let homologs = row.project("homologs").expect("homologs");
        let mut got: Vec<i64> = homologs
            .elements()
            .expect("set")
            .iter()
            .map(|l| match l.project("uid") {
                Some(Value::Int(u)) => *u,
                other => panic!("bad link uid {other:?}"),
            })
            .collect();
        got.sort();
        got.dedup();
        assert_eq!(&got, want, "homologs of {symbol}");
        // every returned homolog is non-human
        for l in homologs.elements().unwrap() {
            assert_ne!(
                l.project("organism"),
                Some(&Value::str("Homo sapiens")),
                "human homolog leaked through the filter"
            );
        }
    }
}

#[test]
fn doe_plan_uses_every_optimization_of_section_4() {
    let (session, _fed) = federation();
    let compiled = session.compile(DOE).expect("compile");
    let mut sql = 0;
    let mut paths = 0;
    let mut pars = 0;
    compiled.optimized.visit(&mut |e| match e {
        Expr::Remote { request, .. } => match request {
            DriverRequest::Sql { query } => {
                sql += 1;
                assert!(
                    query.contains("locus_cyto_location"),
                    "three-way join shipped: {query}"
                );
            }
            DriverRequest::EntrezFetch { path: Some(_), .. } => {
                paths += 1;
            }
            _ => {}
        },
        Expr::ParExt { max_in_flight, .. } => {
            pars += 1;
            assert!(
                *max_in_flight <= 5,
                "server tolerates at most 5 concurrent requests"
            );
        }
        _ => {}
    });
    assert_eq!(sql, 1, "relational part must ship as one SQL query");
    assert_eq!(pars, 2, "both remote inner loops run with bounded concurrency");
    // the authored path expression is preserved through optimization
    let mut remote_apps_with_path = 0;
    compiled.optimized.visit(&mut |e| {
        if let Expr::RemoteApp { arg, .. } = e {
            if format!("{arg}").contains("path") {
                remote_apps_with_path += 1;
            }
        }
    });
    assert!(
        paths + remote_apps_with_path >= 1,
        "path extraction must reach the driver"
    );
}

#[test]
fn doe_query_ships_one_relational_request() {
    let (session, _fed) = federation();
    session.reset_metrics();
    let _ = session.query(DOE).expect("query");
    let gdb = session.driver_metrics("GDB").expect("gdb metrics");
    assert_eq!(gdb.requests, 1, "Loci22 must be a single shipped SQL query");
    let gb = session.driver_metrics("GenBank").expect("genbank metrics");
    assert!(gb.requests >= 2, "per-locus Entrez requests happen");
}

#[test]
fn doe_without_optimizations_gives_the_same_answer() {
    let (mut session, _fed) = federation();
    let optimized = session.query(DOE).expect("optimized");
    session.set_opt_config(kleisli_opt::OptConfig::none());
    let naive = session.query(DOE).expect("naive");
    assert_eq!(optimized, naive);
}

#[test]
fn parameterized_view_other_chromosome() {
    // the Figure-1 form generalizes the query over chromosomes
    let (mut session, fed) = federation();
    let query21 = DOE.replace("Loci22", "Loci21");
    session
        .run(
            r#"define Loci21 == {[locus_symbol = x, genbank_ref = y] |
            [locus_symbol = \x, locus_id = \a, ...] <- GDB-Tab("locus"),
            [genbank_ref = \y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
            [loc_cyto_chrom_num = "21", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")};"#,
        )
        .expect("define");
    let result = session.query(&query21).expect("query");
    assert_eq!(
        result.len(),
        Some(fed.gdb_data.expected_loci("21").len()),
        "chromosome parameter respected"
    );
}
