//! Session-level behavior of the deterministic subplan-caching subsystem:
//! stable `Cached` ids across pointer-distinct compiles, the compiled-plan
//! LRU (hits, invalidation, correctness), and the set-deduplicated
//! `query_first_n` prefix.

use std::time::Duration;

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, BioFederation, Session};
use kleisli_core::{LatencyModel, Value};
use kleisli_opt::OptConfig;
use nrc::Expr;

fn federation(loci: usize) -> (Session, BioFederation) {
    let fed = bio_federation(
        &GdbConfig {
            loci,
            seed: 31,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 40,
            links_per_entry: 2,
            seed: 31,
            ..Default::default()
        },
        LatencyModel::virtual_only(Duration::from_millis(2), Duration::from_micros(10)),
        LatencyModel::virtual_only(Duration::from_millis(2), Duration::from_micros(10)),
    )
    .expect("federation");
    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());
    (session, fed)
}

/// A query whose inner subquery is outer-independent and remote — the
/// cache rule wraps it in `Cached`.
const CACHEABLE: &str = r#"{[s = l.locus_symbol,
         n = count({e | \e <- GDB-Tab("object_genbank_eref"), e.object_class_key = 1})] |
      \l <- GDB-Tab("locus")}"#;

fn cached_ids(e: &Expr) -> Vec<u64> {
    let mut out = Vec::new();
    e.visit(&mut |n| {
        if let Expr::Cached { id, .. } = n {
            out.push(*id);
        }
    });
    out
}

#[test]
fn cached_ids_are_stable_across_pointer_distinct_compiles() {
    // Two *separate* sessions (separate interners, separate plan caches):
    // the compiled plans share no Arcs, yet their cached subqueries carry
    // identical ids — the subplan's structural hash — and therefore map
    // to the same Context cache slots.
    let (s1, _fed1) = federation(20);
    let (s2, _fed2) = federation(20);
    let c1 = s1.compile(CACHEABLE).expect("compile 1");
    let c2 = s2.compile(CACHEABLE).expect("compile 2");

    let ids1 = cached_ids(&c1.optimized);
    let ids2 = cached_ids(&c2.optimized);
    assert!(!ids1.is_empty(), "the inner subquery must be cached");
    assert_eq!(ids1, ids2, "Cached ids must survive recompilation");

    // The plans really are pointer-distinct objects.
    let arcs = |e: &Expr| {
        let mut v = Vec::new();
        e.for_each_child(&mut |c| v.push(std::sync::Arc::as_ptr(c) as usize));
        v
    };
    assert_ne!(arcs(&c1.optimized), arcs(&c2.optimized));

    // Running the query populates exactly those slots in the session's
    // Context — the deterministic id is a real slot address.
    let s1 = s1;
    let v = s1.query(CACHEABLE).expect("run");
    assert_eq!(v.len(), Some(20));
    for id in &ids1 {
        assert!(
            s1.context().cache_get(*id).is_some(),
            "slot {id} must be populated after the run"
        );
    }
}

#[test]
fn plan_cache_hits_and_is_invalidated_by_binding_changes() {
    let mut session = Session::new();
    session.bind_value(
        "DB",
        Value::set((0..10).map(Value::Int).collect()),
    );
    let q = r"{x | \x <- DB, x < 5}";
    let first = session.query(q).expect("first");
    let stats = session.plan_cache_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.entries, 1);

    let second = session.query(q).expect("second");
    assert_eq!(first, second);
    let stats = session.plan_cache_stats();
    assert_eq!(stats.hits, 1, "identical source must hit the plan cache");

    // Rebinding DB changes the meaning of the source: the cache must not
    // serve the stale plan.
    session.bind_value(
        "DB",
        Value::set((100..110).map(Value::Int).collect()),
    );
    assert_eq!(session.plan_cache_stats().entries, 0, "invalidated");
    let third = session.query(q).expect("third");
    assert_eq!(third, Value::set(vec![]), "new binding, new plan");
}

#[test]
fn plan_cache_respects_opt_config_and_capacity() {
    let (session, _fed) = federation(10);
    let mut session = session;
    let a = session.query(CACHEABLE).expect("default config");
    session.set_opt_config(OptConfig::none());
    // Different config → different key → a fresh compile, same answer.
    let before = session.plan_cache_stats();
    let b = session.query(CACHEABLE).expect("none config");
    let after = session.plan_cache_stats();
    assert_eq!(a, b);
    assert_eq!(after.hits, before.hits, "config change must not hit");
    assert_eq!(after.entries, before.entries + 1);

    // Capacity 0 disables caching entirely.
    session.set_plan_cache_capacity(0);
    assert_eq!(session.plan_cache_stats().entries, 0);
    session.query(CACHEABLE).expect("uncached run");
    assert_eq!(session.plan_cache_stats().entries, 0);
}

#[test]
fn first_n_prefix_of_a_set_query_is_duplicate_free() {
    let mut session = Session::new();
    // 40 records whose projection collapses onto 4 distinct keys: the
    // streamed prefix used to return the same key over and over.
    session.bind_value(
        "DB",
        Value::set(
            (0..40)
                .map(|i| {
                    Value::record_from(vec![("k", Value::Int(i % 4)), ("v", Value::Int(i))])
                })
                .collect(),
        ),
    );
    let got = session
        .query_first_n(r"{x.k | \x <- DB}", 10)
        .expect("first_n");
    let mut uniq = got.clone();
    uniq.sort();
    uniq.dedup();
    assert_eq!(
        uniq.len(),
        got.len(),
        "set prefix contains duplicates: {got:?}"
    );
    assert_eq!(got.len(), 4, "only 4 distinct keys exist");

    // Bag prefixes keep duplicates (kind-faithful behavior).
    let bag = session
        .query_first_n(r"{| x.k | \x <- DB |}", 10)
        .expect("bag first_n");
    assert_eq!(bag.len(), 10);
}

#[test]
fn repeated_queries_reuse_the_compiled_plan_and_stay_correct() {
    let (session, _fed) = federation(15);
    let first = session.query(CACHEABLE).expect("run 1");
    for _ in 0..5 {
        assert_eq!(session.query(CACHEABLE).expect("re-run"), first);
    }
    let stats = session.plan_cache_stats();
    assert_eq!(stats.hits, 5, "five warm runs, five plan-cache hits");
}
