//! End-to-end tests of the concurrency-first session API: non-blocking
//! [`kleisli::Session::submit`], `QueryHandle` wait / try_wait / cancel /
//! first_n, enforced per-driver admission budgets, and latency overlap
//! across parallel plans.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::set_par_width;
use kleisli::{QueryStatus, Session};
use kleisli_core::testutil::SlowDriver;
use kleisli_core::Value;

/// A session over one slow driver plus an `IDS` binding for per-element
/// remote loops.
fn slow_session(driver: Arc<SlowDriver>, ids: i64) -> Session {
    let mut s = Session::new();
    s.register_driver(driver);
    s.bind_value("IDS", Value::set((0..ids).map(Value::Int).collect()));
    s
}

/// Per-element remote loop (the request depends on `i`, so the optimizer
/// parallelizes the loop up to the driver's budget rather than caching
/// the subquery).
const PER_ELEMENT: &str = r#"{[i = i, n = count(SRC([function = "probe", arg = i]))] | \i <- IDS}"#;

#[test]
fn submit_then_wait_matches_blocking_evaluation() {
    let driver = SlowDriver::new("SRC", 3, Duration::from_millis(1), 4);
    let s = slow_session(driver, 6);
    let compiled = s.compile(PER_ELEMENT).expect("compile");
    let concurrent = s.submit(PER_ELEMENT).expect("submit").wait().expect("wait");
    let blocking = s.run_compiled(&compiled).expect("blocking");
    assert_eq!(concurrent, blocking);
}

#[test]
fn parallel_plan_overlaps_latency_and_respects_the_budget() {
    let delay = Duration::from_millis(30);
    let driver = SlowDriver::new("SRC", 2, delay, 4);
    let max_seen = Arc::clone(&driver.max_seen);
    let s = slow_session(driver, 8);
    let compiled = s.compile(PER_ELEMENT).expect("compile");

    // Blocking baseline: width forced to 1 — each of the 8 requests is
    // submitted and waited on in turn.
    let mut sequential = compiled.clone();
    sequential.optimized = set_par_width(&compiled.optimized, 1);
    let t0 = Instant::now();
    let blocking_result = s.run_compiled(&sequential).expect("blocking");
    let blocking = t0.elapsed();

    // Concurrent: the optimizer's width (the driver budget, 4).
    let t0 = Instant::now();
    let concurrent_result = s.submit_compiled(&compiled).wait().expect("concurrent");
    let concurrent = t0.elapsed();

    assert_eq!(blocking_result, concurrent_result);
    assert!(
        concurrent * 2 < blocking,
        "8 overlapped {delay:?} requests at width 4 must be at least 2x \
         faster than blocking: {concurrent:?} vs {blocking:?}"
    );
    let seen = max_seen.load(Ordering::SeqCst);
    assert!(
        seen <= 4,
        "in-flight requests exceeded the enforced budget: {seen} > 4"
    );
    assert!(seen >= 2, "requests did not overlap at all");
}

#[test]
fn try_wait_polls_without_blocking() {
    let driver = SlowDriver::new("SRC", 2, Duration::from_millis(40), 2);
    let s = slow_session(driver, 2);
    let mut h = s.submit(PER_ELEMENT).expect("submit");
    // Immediately after submit the slow query cannot be done.
    assert_eq!(h.status(), QueryStatus::Running);
    let mut polls = 0u32;
    let result = loop {
        match h.try_wait() {
            Some(r) => break r,
            None => {
                polls += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    assert!(result.is_ok());
    assert!(polls > 0, "the first poll should have found it running");
}

#[test]
fn cancelled_handle_frees_the_driver_budget_for_later_queries() {
    // Budget of 1 and a slow request: cancel a submitted query mid-flight,
    // then prove the driver still serves subsequent queries — no leaked
    // admission ticket.
    let driver = SlowDriver::new("SRC", 2, Duration::from_millis(30), 1);
    let gate = Arc::clone(&driver.gate);
    let s = slow_session(driver, 4);

    let h = s.submit(PER_ELEMENT).expect("submit");
    std::thread::sleep(Duration::from_millis(10)); // let it get in flight
    h.cancel();
    drop(h);

    // The next query on the same (budget-1) driver must complete.
    let v = s
        .submit(r#"{[n = x.n] | \x <- SRC([table = "t"])}"#)
        .expect("submit")
        .wait()
        .expect("wait");
    assert_eq!(v.len(), Some(2));
    // Every ticket drains (bounded: a leak must fail, not hang).
    let t0 = Instant::now();
    while gate.in_flight() != 0 {
        assert!(t0.elapsed() < Duration::from_secs(2), "admission ticket leaked");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn first_n_streams_a_prefix_and_cancels_the_rest() {
    // 40 ids, each costing a 10 ms request: a 3-row prefix must return
    // long before the full evaluation would, and stop the worker.
    let driver = SlowDriver::new("SRC", 1, Duration::from_millis(10), 2);
    let performs = Arc::clone(&driver.performs);
    let s = slow_session(driver, 40);
    let h = s.submit(PER_ELEMENT).expect("submit");
    let prefix = h.first_n(3).expect("prefix");
    assert_eq!(prefix.len(), 3);
    // Give cancellation a moment to land, then check the worker stopped
    // far short of the 40 requests the full query would need.
    std::thread::sleep(Duration::from_millis(60));
    let ran = performs.load(Ordering::SeqCst);
    assert!(
        ran < 40,
        "first_n(3) must cancel the remaining evaluation (ran {ran}/40 requests)"
    );
}

#[test]
fn first_n_prefix_wins_over_a_later_error() {
    // The stream yields 0..=4 fine and errors on 5 (division by zero).
    // first_n(3) has its rows regardless of whether the worker has
    // already hit the error by the time we ask — the prefix, not the
    // late error, is the answer.
    let mut s = Session::new();
    s.bind_value("DB", Value::set((0..6).map(Value::Int).collect()));
    let q = r"{| if x = 5 then 10 / 0 else x | \x <- DB |}";
    // Let the worker run to the error before asking for the prefix.
    let h = s.submit(q).expect("submit");
    std::thread::sleep(Duration::from_millis(20));
    let prefix = h.first_n(3).expect("prefix must not be poisoned by a later error");
    assert_eq!(prefix, vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
    // But an error *before* n rows does propagate.
    let h = s.submit(q).expect("submit");
    assert!(h.first_n(6).is_err());
}

#[test]
fn dedup_applies_to_set_typed_prefixes() {
    let mut s = Session::new();
    s.bind_value(
        "DB",
        Value::set((0..30).map(|i| Value::Int(i % 3)).collect()),
    );
    let h = s.submit(r"{x | \x <- DB}").expect("submit");
    let prefix = h.first_n(10).expect("prefix");
    // only 3 distinct values exist; duplicates must not count toward n
    assert_eq!(prefix.len(), 3);
    let mut sorted = prefix.clone();
    sorted.sort();
    assert_eq!(sorted, vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
}

#[test]
fn query_workers_run_on_a_bounded_shared_executor() {
    // 20 submitted queries on a session whose executor allows 3 workers:
    // every query completes correctly, yet at most 3 OS threads are ever
    // created — submissions beyond the bound queue as data. This is the
    // observable for "no ad-hoc thread per query" (PR-4 spawned one
    // thread per submit, i.e. 20 here).
    use kleisli_core::Executor;

    let executor = Executor::new("session-test", 3);
    let driver = SlowDriver::new("SRC", 2, Duration::from_millis(1), 4);
    let mut s = Session::with_executor(Arc::clone(&executor));
    s.register_driver(driver);
    s.bind_value("IDS", Value::set((0..3).map(Value::Int).collect()));

    let q = r#"{[n = x.n] | \x <- SRC([table = "t"])}"#;
    let handles: Vec<_> = (0..20).map(|_| s.submit(q).expect("submit")).collect();
    let mut results = Vec::new();
    for h in handles {
        results.push(h.wait().expect("wait"));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    assert!(
        executor.threads_spawned() <= 3,
        "query workers must stay bounded by the executor limit: {} spawned",
        executor.threads_spawned()
    );
    assert!(executor.threads_spawned() >= 1);
}

#[test]
fn two_queries_in_flight_on_one_session() {
    // Generous margins: sequential would cost >= 2 x 60 ms, so anything
    // clearly under that proves the two queries overlapped even on a
    // loaded CI machine.
    let delay = Duration::from_millis(60);
    let driver = SlowDriver::new("SRC", 2, delay, 4);
    let s = slow_session(driver, 2);
    let q = r#"{[n = x.n] | \x <- SRC([table = "t"])}"#;
    let t0 = Instant::now();
    let h1 = s.submit(q).expect("submit 1");
    let h2 = s.submit(q).expect("submit 2");
    let v1 = h1.wait().expect("wait 1");
    let v2 = h2.wait().expect("wait 2");
    let elapsed = t0.elapsed();
    assert_eq!(v1, v2);
    assert!(
        elapsed < 2 * delay - delay / 6,
        "two overlapped queries must beat back-to-back execution: {elapsed:?}"
    );
}

#[test]
fn session_queries_prefetch_rows_on_latency_charging_drivers() {
    // End-to-end through the real federation: with a per-row transfer
    // cost the drivers advertise a prefetch depth, so a session query's
    // rows are pulled ahead by pool workers — visible in the new
    // rows_prefetched counter — and the answer matches the instant
    // (fully lazy, prefetch-0) federation's.
    use bench_harness::{latency_federation, latency_federation_rows};
    use std::time::Duration as D;

    let q = r#"{[s = l.locus_symbol] | \l <- GDB-Tab("locus")}"#;
    let (pre_session, _pre_fed) =
        latency_federation_rows(25, D::from_millis(1), D::from_micros(200));
    let (lazy_session, _lazy_fed) = latency_federation(25, D::from_millis(1));

    let pre = pre_session.query(q).expect("prefetching query");
    let lazy = lazy_session.query(q).expect("lazy query");
    assert_eq!(pre, lazy, "row prefetch must not change the answer");

    let m = pre_session.driver_metrics("GDB").unwrap();
    assert!(
        m.rows_prefetched > 0,
        "a per-row-latency driver must prefetch rows ahead of the consumer"
    );
    assert!(m.rows_pulled >= m.rows_prefetched);
    let m0 = lazy_session.driver_metrics("GDB").unwrap();
    assert_eq!(m0.rows_prefetched, 0, "instant rows must not be prefetched");
}
