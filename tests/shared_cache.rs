//! Cross-session shared-cache semantics at the `Session` API level
//! (below the server): two sessions sharing one `PlanCache` and one
//! `ResultCache` compile a common query once and populate the result
//! cache once, and a cancellation mid-flight neither poisons the shared
//! cell nor caches a partial result.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, BioFederation, PlanCache, Session, SharedQuery};
use kleisli_core::{LatencyModel, Value};
use kleisli_exec::ResultCache;

fn shared_pair(fed: &BioFederation) -> (Session, Session, Arc<PlanCache>, Arc<ResultCache>) {
    let plans = PlanCache::new(16);
    let results = ResultCache::with_default_budget();
    let make = || {
        let mut s = Session::new();
        s.register_driver(fed.gdb.clone());
        s.register_driver(fed.genbank.clone());
        // Shared caches attach *after* registration (registration
        // invalidates whatever caches are attached).
        s.share_plan_cache(Arc::clone(&plans));
        s.share_result_cache(Arc::clone(&results));
        s
    };
    let a = make();
    let b = make();
    (a, b, plans, results)
}

fn federation(latency_ms: u64) -> BioFederation {
    bio_federation(
        &GdbConfig {
            loci: 30,
            seed: 23,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 5,
            links_per_entry: 2,
            seq_len: 20,
            seed: 23,
        },
        LatencyModel::real(Duration::from_millis(latency_ms), Duration::ZERO),
        LatencyModel::real(Duration::from_millis(latency_ms), Duration::ZERO),
    )
    .expect("federation")
}

const COUNT_LOCI: &str = r#"count({l | \l <- GDB-Tab("locus")})"#;

/// Redeem a `SharedQuery`, committing fresh results — what a server
/// connection does per query.
fn redeem(q: SharedQuery) -> Value {
    match q {
        SharedQuery::Cached(v) => v,
        SharedQuery::Fresh { handle, commit } => {
            let v = handle.wait().expect("query");
            commit.commit(v.clone());
            v
        }
        SharedQuery::Uncached(handle) => handle.wait().expect("query"),
    }
}

#[test]
fn two_concurrent_sessions_compile_once_and_populate_once() {
    let fed = federation(25);
    let (a, b, plans, results) = shared_pair(&fed);
    let barrier = Barrier::new(2);

    let (va, vb) = thread::scope(|scope| {
        let ta = scope.spawn(|| {
            barrier.wait();
            redeem(a.submit_shared(COUNT_LOCI).expect("submit"))
        });
        let tb = scope.spawn(|| {
            barrier.wait();
            redeem(b.submit_shared(COUNT_LOCI).expect("submit"))
        });
        (ta.join().unwrap(), tb.join().unwrap())
    });

    assert_eq!(va, Value::Int(30));
    assert_eq!(vb, va);

    // Exactly one compile across both sessions (single-flight plan
    // cache), and exactly one populate flight in the result cache.
    let p = plans.stats();
    assert_eq!(p.misses, 1, "one compile: {p:?}");
    assert_eq!(p.hits, 1, "the other session hit: {p:?}");
    let r = results.stats();
    assert_eq!(r.misses, 1, "one result computation: {r:?}");
    assert_eq!(r.hits, 1, "the other session was served: {r:?}");
    assert_eq!(r.entries, 1);
}

#[test]
fn cancelled_flight_does_not_poison_the_shared_cell() {
    let fed = federation(300);
    let (a, b, _plans, results) = shared_pair(&fed);

    // Session A wins the populate flight, then is cancelled mid-flight;
    // dropping its commit must wake waiters, not cache anything.
    match a.submit_shared(COUNT_LOCI).expect("submit") {
        SharedQuery::Fresh { handle, commit } => {
            handle.cancel();
            let err = handle.wait().expect_err("cancelled query");
            assert!(
                err.to_string().to_lowercase().contains("cancel"),
                "{err}"
            );
            drop(commit);
        }
        _ => panic!("first submission must win the flight"),
    }
    assert_eq!(results.stats().entries, 0, "nothing cached by the abort");

    // Session B retries the same plan_hash and completes — the cell was
    // released, not poisoned.
    let v = redeem(b.submit_shared(COUNT_LOCI).expect("submit"));
    assert_eq!(v, Value::Int(30));
    let r = results.stats();
    assert_eq!(r.entries, 1, "retry cached the result: {r:?}");
    assert_eq!(r.misses, 2, "both flights counted as misses: {r:?}");
}

#[test]
fn plan_hash_is_stable_across_sessions_and_recompiles() {
    let fed = federation(0);
    let (a, b, _, _) = shared_pair(&fed);
    let ha = a.compile(COUNT_LOCI).unwrap().plan_hash();
    let hb = b.compile(COUNT_LOCI).unwrap().plan_hash();
    assert_eq!(ha, hb, "same topology, same source, same key");
    let other = a.compile(r#"count({l | \l <- GDB-Tab("object_genbank_eref")})"#).unwrap();
    assert_ne!(ha, other.plan_hash());
}
