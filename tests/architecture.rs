//! Figure-2 architecture tests (experiment E2): one session federating
//! all three source kinds, data crossing driver boundaries as token
//! streams, and the printers producing every output format.

use std::sync::Arc;

use ace_sim::{AceServer, AceStore};
use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, AceObjects, Session};
use kleisli_core::{read_exchange, write_exchange, LatencyModel, Value};

fn three_source_session() -> Session {
    let fed = bio_federation(
        &GdbConfig {
            loci: 80,
            seed: 8,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 20,
            seed: 8,
            ..Default::default()
        },
        LatencyModel::instant(),
        LatencyModel::instant(),
    )
    .expect("federation");

    let mut store = AceStore::new();
    let seq_ref = store.reference("Sequence", "seq-22-1");
    store.upsert(
        "Sequence",
        "seq-22-1",
        vec![("DNA".into(), vec![Value::str("ACGTACGT")])],
    );
    store
        .insert(
            "Clone",
            "c22-5",
            vec![
                ("Length".into(), vec![Value::Int(1200)]),
                ("Seq".into(), vec![seq_ref]),
            ],
        )
        .expect("insert");
    let ace = Arc::new(AceServer::new("ACE22", store, LatencyModel::instant()));

    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());
    session.register_driver(ace.clone());
    session.register_object_store(Arc::new(AceObjects(ace)));
    session
}

#[test]
fn all_three_sources_answer_through_one_session() {
    let s = three_source_session();
    let relational = s
        .query(r#"count(GDB-Tab("locus"))"#)
        .expect("relational source");
    assert_eq!(relational, Value::Int(80));

    let asn = s
        .query(r#"count(GenBank([db = "na", select = "organism \"Homo sapiens\""]))"#)
        .expect("asn source");
    assert!(matches!(asn, Value::Int(n) if n > 0));

    let ace = s
        .query(r#"{[n = c.name, len = c.Length] | \c <- ACE22([class = "Clone"])}"#)
        .expect("ace source");
    assert_eq!(ace.len(), Some(1));
}

#[test]
fn object_identity_dereferences_across_the_session() {
    let s = three_source_session();
    // Follow the Seq reference of the clone through deref.
    let dna = s
        .query(r#"{deref(c.Seq).DNA | \c <- ACE22([class = "Clone"])}"#)
        .expect("deref");
    assert_eq!(dna, Value::set(vec![Value::str("ACGTACGT")]));
}

#[test]
fn query_results_survive_the_exchange_format() {
    let s = three_source_session();
    let v = s
        .query(r#"{[s = l.locus_symbol, i = l.locus_id] | \l <- GDB-Tab("locus"), l.locus_id <= 5}"#)
        .expect("query");
    // ship it through the driver exchange format and back
    let text = write_exchange(&v);
    let back = read_exchange(&text).expect("exchange parse");
    assert_eq!(v, back);
}

#[test]
fn printers_cover_the_output_formats_of_section_3() {
    let s = three_source_session();
    let v = s
        .query(r#"{[s = l.locus_symbol] | \l <- GDB-Tab("locus"), l.locus_id <= 3}"#)
        .expect("query");
    // CPL syntax
    let cpl = v.to_string();
    assert!(cpl.starts_with('{') && cpl.contains("[s = "));
    // HTML for the Mosaic views
    let html = kleisli_core::print::to_html(&v);
    assert!(html.contains("<table"));
    // aligned text table
    let table = kleisli_core::print::to_table(&v);
    assert!(table.lines().count() >= 4);
}

#[test]
fn cross_source_join_runs_locally() {
    // GDB (relational) joined with GenBank (ASN.1) — never pushable, so
    // the optimizer must plan it locally and still get the right answer.
    let s = three_source_session();
    let v = s
        .query(
            r#"{[s = l.locus_symbol, org = e.organism] |
                \l <- GDB-Tab("locus"),
                [object_id = \oid, genbank_ref = \acc, ...] <- GDB-Tab("object_genbank_eref"),
                oid = l.locus_id,
                \e <- GenBank([db = "na", select = "chromosome 22"]),
                member(<accession = acc>, e.seq.id)}"#,
        )
        .expect("cross-source join");
    // every chromosome-22 entry pairs with exactly its locus
    for row in v.elements().unwrap() {
        assert_eq!(row.project("org"), Some(&Value::str("Homo sapiens")));
    }
}
