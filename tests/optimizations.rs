//! Behavioral tests for each Section-4 optimization, using the traffic
//! counters and virtual latency clocks as observables (experiments
//! E7–E11 in DESIGN.md, checked for *shape* rather than wall time).

use std::time::Duration;

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, BioFederation, Session};
use kleisli_core::LatencyModel;
use kleisli_opt::OptConfig;

fn federation(loci: usize) -> (Session, BioFederation) {
    let fed = bio_federation(
        &GdbConfig {
            loci,
            seed: 31,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 40,
            links_per_entry: 2,
            seed: 31,
            ..Default::default()
        },
        // virtual latency: accumulates on a counter, never sleeps
        LatencyModel::virtual_only(Duration::from_millis(2), Duration::from_micros(10)),
        LatencyModel::virtual_only(Duration::from_millis(2), Duration::from_micros(10)),
    )
    .expect("federation");
    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());
    (session, fed)
}

const LOCI22: &str = r#"{[locus_symbol = x, genbank_ref = y] |
    [locus_symbol = \x, locus_id = \a, ...] <- GDB-Tab("locus"),
    [genbank_ref = \y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
    [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}"#;

#[test]
fn e7_pushdown_collapses_requests_and_virtual_latency() {
    let (mut session, fed) = federation(200);

    session.reset_metrics();
    fed.gdb.latency().reset();
    let full = session.query(LOCI22).expect("full");
    let full_requests = session.driver_metrics("GDB").unwrap().requests;
    let full_latency = fed.gdb.latency().virtual_elapsed();

    session.set_opt_config(OptConfig {
        enable_pushdown: false,
        ..OptConfig::default()
    });
    session.reset_metrics();
    fed.gdb.latency().reset();
    let local = session.query(LOCI22).expect("local");
    let local_requests = session.driver_metrics("GDB").unwrap().requests;
    let local_latency = fed.gdb.latency().virtual_elapsed();

    assert_eq!(full, local, "same answer");
    assert_eq!(full_requests, 1);
    assert_eq!(local_requests, 3);
    assert!(
        full_latency < local_latency,
        "pushdown must reduce simulated network time: {full_latency:?} vs {local_latency:?}"
    );
}

#[test]
fn e7_pushdown_ships_fewer_rows_and_bytes() {
    let (mut session, _fed) = federation(200);
    session.reset_metrics();
    let _ = session.query(LOCI22).expect("full");
    let with = session.driver_metrics("GDB").unwrap();

    session.set_opt_config(OptConfig {
        enable_pushdown: false,
        ..OptConfig::default()
    });
    session.reset_metrics();
    let _ = session.query(LOCI22).expect("local");
    let without = session.driver_metrics("GDB").unwrap();

    assert!(
        with.rows_shipped < without.rows_shipped / 5,
        "pushdown ships only matching rows: {} vs {}",
        with.rows_shipped,
        without.rows_shipped
    );
    assert!(with.bytes_shipped < without.bytes_shipped);
}

#[test]
fn e9_cache_fetches_inner_subquery_once() {
    let (mut session, _fed) = federation(50);
    let q = r#"{[s = l.locus_symbol,
                 n = count({e | \e <- GDB-Tab("object_genbank_eref"), e.object_class_key = 1})] |
                \l <- GDB-Tab("locus")}"#;
    let base = OptConfig {
        enable_pushdown: false,
        enable_joins: false,
        enable_parallel: false,
        ..OptConfig::default()
    };

    session.set_opt_config(OptConfig {
        enable_cache: true,
        ..base.clone()
    });
    session.reset_metrics();
    let cached = session.query(q).expect("cached");
    let with_cache = session.driver_metrics("GDB").unwrap().requests;

    session.set_opt_config(OptConfig {
        enable_cache: false,
        ..base
    });
    session.reset_metrics();
    let uncached = session.query(q).expect("uncached");
    let without_cache = session.driver_metrics("GDB").unwrap().requests;

    assert_eq!(cached, uncached, "same answer");
    assert_eq!(with_cache, 2, "outer scan + one cached inner fetch");
    assert_eq!(
        without_cache,
        1 + 50,
        "without the cache the inner subquery re-fetches per locus"
    );
}

#[test]
fn e11_parallel_gather_is_bounded_and_correct() {
    let (mut session, _fed) = federation(60);
    let q = r#"{[u = uid, n = count(GenBank([db = "na", link = uid]))] |
        \e <- GenBank([db = "na", select = "organism \"Homo sapiens\""]),
        \uid <- {g | <giim = \g> <- e.seq.id}}"#;

    let compiled = session.compile(q).expect("compile");
    let mut widths = Vec::new();
    compiled.optimized.visit(&mut |e| {
        if let nrc::Expr::ParExt { max_in_flight, .. } = e {
            widths.push(*max_in_flight);
        }
    });
    assert!(!widths.is_empty(), "loops over remote calls must parallelize");
    assert!(
        widths.iter().all(|w| *w == 5),
        "GenBank tolerates 5 concurrent requests, got {widths:?}"
    );

    // parallel result equals sequential result
    let parallel = session.run_compiled(&compiled).expect("parallel");
    session.set_opt_config(OptConfig {
        enable_parallel: false,
        ..OptConfig::default()
    });
    let sequential = session.query(q).expect("sequential");
    assert_eq!(parallel, sequential);
}

#[test]
fn e10_first_n_ships_a_fraction_of_the_rows() {
    let (session, _fed) = federation(3000);
    session.reset_metrics();
    let rows = session
        .query_first_n(r#"{[s = l.locus_symbol] | \l <- GDB-Tab("locus")}"#, 7)
        .expect("first_n");
    assert_eq!(rows.len(), 7);
    let m = session.driver_metrics("GDB").unwrap();
    // This federation's latency is virtual-only (an accounting tool), so
    // GDB advertises `prefetch_rows: 0` and laziness stays strict —
    // prefetch only engages for *real* (slept) per-row latency, where
    // the bound loosens to prefix + prefetch buffer.
    assert!(
        m.rows_shipped < 20,
        "{} rows shipped for 7 results",
        m.rows_shipped
    );
    assert_eq!(m.rows_prefetched, 0, "instant rows must not be prefetched");
}

#[test]
fn e8_join_strategies_choose_by_condition_shape() {
    let (session, _fed) = federation(50);
    // equality condition → indexed join
    let eq_query = r#"{[a = l.locus_symbol, b = e.genbank_ref] |
        \l <- GDB-Tab("locus"), \e <- GDB-Tab("object_genbank_eref"),
        l.locus_id = e.object_id}"#;
    // force local planning by disabling pushdown
    let mut s2 = session;
    s2.set_opt_config(OptConfig {
        enable_pushdown: false,
        ..OptConfig::default()
    });
    let compiled = s2.compile(eq_query).expect("compile");
    let mut indexed = 0;
    compiled.optimized.visit(&mut |e| {
        if let nrc::Expr::Join { strategy, .. } = e {
            if *strategy == nrc::JoinStrategy::IndexedNl {
                indexed += 1;
            }
        }
    });
    assert_eq!(indexed, 1, "equality predicates become index keys: {}", compiled.optimized);
}
