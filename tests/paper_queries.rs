//! Experiment E12: every query printed in Section 2 of the paper, run
//! through the full session pipeline (parse → typecheck → optimize →
//! execute), with the equivalences the paper states checked exactly.

use kleisli::Session;
use kleisli_core::Value;

fn session() -> Session {
    let mut s = Session::new();
    s.bind_value("DB", bio_data::publications(60, 1995));
    s
}

#[test]
fn projection_and_its_pattern_form_agree() {
    let s = session();
    // "the example below, which is equivalent to the one above"
    let a = s
        .query(r"{[title = p.title, authors = p.authors] | \p <- DB}")
        .unwrap();
    let b = s
        .query(r"{[title = t, authors = a] | [title = \t, authors = \a, ...] <- DB}")
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), Some(60));
}

#[test]
fn filter_and_literal_pattern_forms_agree() {
    let s = session();
    // "Also, the following queries are equivalent:"
    let a = s
        .query(
            r"{[title = t, authors = a] |
               [title = \t, authors = \a, year = \y, ...] <- DB, y = 1988}",
        )
        .unwrap();
    let b = s
        .query(
            r"{[title = t, authors = a] |
               [title = \t, authors = \a, year = 1988, ...] <- DB}",
        )
        .unwrap();
    assert_eq!(a, b);
    assert!(!a.is_empty_coll(), "the generator places papers in 1988");
}

#[test]
fn flatten_produces_title_keyword_pairs() {
    let s = session();
    let flat = s
        .query(r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}")
        .unwrap();
    // row count equals the number of distinct (title, keyword) pairs
    let mut expected = 0;
    let db = s.query(r"{p | \p <- DB}").unwrap();
    for p in db.elements().unwrap() {
        expected += p.project("keywd").unwrap().len().unwrap();
    }
    assert_eq!(flat.len(), Some(expected));
}

#[test]
fn keyword_inversion_covers_every_keyword_and_title() {
    let s = session();
    let inverted = s
        .query(
            r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] |
               \y <- DB, \k <- y.keywd}",
        )
        .unwrap();
    // every keyword of every publication appears, with its title listed
    let db = s.query(r"{p | \p <- DB}").unwrap();
    for p in db.elements().unwrap() {
        let title = p.project("title").unwrap();
        for k in p.project("keywd").unwrap().elements().unwrap() {
            let row = inverted
                .elements()
                .unwrap()
                .iter()
                .find(|r| r.project("keyword") == Some(k))
                .unwrap_or_else(|| panic!("keyword {k} missing"));
            let titles = row.project("titles").unwrap().elements().unwrap();
            assert!(titles.contains(title), "{title} missing under {k}");
        }
    }
}

#[test]
fn jname_collapses_every_journal_variant() {
    let mut s = session();
    s.run(
        r"define jname ==
              <uncontrolled = \s> => s
            | <controlled = <medline-jta = \s>> => s
            | <controlled = <iso-jta = \s>> => s
            | <controlled = <journal-title = \s>> => s
            | <controlled = <issn = \s>> => s;",
    )
    .unwrap();
    let v = s
        .query(r"{[title = t, name = jname(v)] | [title = \t, journal = \v, ...] <- DB}")
        .unwrap();
    assert_eq!(v.len(), Some(60), "every publication gets a journal name");
    for row in v.elements().unwrap() {
        assert!(matches!(row.project("name"), Some(Value::Str(_))));
    }
}

#[test]
fn tag_preserving_transformation() {
    // "A more sophisticated transformation could preserve the tag
    // information from the variant structure in an additional attribute."
    let mut s = session();
    s.run(
        r#"define jtag == <uncontrolled = \s> => "uncontrolled"
                        | <controlled = \c> => "controlled";"#,
    )
    .unwrap();
    let v = s
        .query(r"{[tag = jtag(p.journal)] | \p <- DB}")
        .unwrap();
    let tags: Vec<&Value> = v.elements().unwrap().iter().collect();
    assert!(tags.len() <= 2);
    assert!(tags
        .iter()
        .all(|t| t.project("tag") == Some(&Value::str("controlled"))
            || t.project("tag") == Some(&Value::str("uncontrolled"))));
}

#[test]
fn papers_of_uses_list_membership() {
    let mut s = session();
    s.run(r"define papers-of == \x => {p | \p <- DB, x <- p.authors};")
        .unwrap();
    // pick an actual author from the data, then query by it
    let db = s.query(r"{p | \p <- DB}").unwrap();
    let some_author = db.elements().unwrap()[0]
        .project("authors")
        .unwrap()
        .elements()
        .unwrap()[0]
        .clone();
    s.bind_value("A", some_author.clone());
    let found = s.query(r"papers-of(A)").unwrap();
    assert!(!found.is_empty_coll());
    for p in found.elements().unwrap() {
        let authors = p.project("authors").unwrap().elements().unwrap();
        assert!(authors.contains(&some_author));
    }
}

#[test]
fn nested_result_types_are_inferred() {
    let s = session();
    let compiled = s
        .compile(r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] | \y <- DB, \k <- y.keywd}")
        .unwrap();
    let t = compiled.ty.to_string();
    assert!(
        t.contains("titles: {string}"),
        "nested relation type inferred: {t}"
    );
}
