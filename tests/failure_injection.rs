//! Failure injection: errors from drivers, malformed native data, bad
//! queries, and mid-stream failures must surface as clean `KError`s, never
//! panics or wrong answers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kleisli::Session;
use kleisli_core::{
    blocks_of_rows, BlockStream, Capabilities, Driver, DriverRequest, KError, KResult, Value,
};

/// A driver that fails in configurable ways.
struct FlakyDriver {
    name: String,
    /// fail the whole request
    refuse: bool,
    /// yield this many rows, then fail mid-stream
    fail_after: Option<usize>,
    calls: AtomicU64,
}

impl Driver for FlakyDriver {
    fn name(&self) -> &str {
        &self.name
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }
    fn perform(&self, _req: &DriverRequest) -> KResult<BlockStream> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.refuse {
            return Err(KError::driver(&self.name, "connection refused"));
        }
        let fail_after = self.fail_after;
        let name = self.name.clone();
        Ok(blocks_of_rows(Box::new((0..10).map(move |i| {
            if let Some(n) = fail_after {
                if i >= n as i64 {
                    return Err(KError::driver(&name, "stream interrupted"));
                }
            }
            Ok(Value::record_from(vec![("n", Value::Int(i))]))
        }))))
    }
}

fn session_with(driver: FlakyDriver) -> Session {
    let mut s = Session::new();
    s.register_driver(Arc::new(driver));
    s
}

#[test]
fn refused_connection_is_a_driver_error() {
    let s = session_with(FlakyDriver {
        name: "DOWN".into(),
        refuse: true,
        fail_after: None,
        calls: AtomicU64::new(0),
    });
    let err = s
        .query(r#"{x.n | \x <- DOWN([class = "anything"])}"#)
        .unwrap_err();
    assert!(
        matches!(err, KError::Driver { ref driver, .. } if driver == "DOWN"),
        "{err}"
    );
}

#[test]
fn mid_stream_failure_propagates() {
    let s = session_with(FlakyDriver {
        name: "FLAKY".into(),
        refuse: false,
        fail_after: Some(4),
        calls: AtomicU64::new(0),
    });
    let err = s
        .query(r#"{x.n | \x <- FLAKY([class = "c"])}"#)
        .unwrap_err();
    assert!(matches!(err, KError::Driver { .. }), "{err}");
    // but a lazy consumer that stops before row 4 succeeds
    let ok = s
        .query_first_n(r#"{x.n | \x <- FLAKY([class = "c"])}"#, 3)
        .expect("lazy prefix");
    assert_eq!(ok.len(), 3);
}

#[test]
fn bad_sql_is_reported_not_panicked() {
    let mut db = sybase_sim::Database::new();
    db.create_table("t", &["a"]).unwrap();
    let server = Arc::new(sybase_sim::SybaseServer::new(
        "GDB",
        db,
        kleisli_core::LatencyModel::instant(),
    ));
    let mut s = Session::new();
    s.register_driver(server);
    // ship raw SQL with a syntax error
    let err = s
        .query(r#"GDB([query = "selekt a from t"])"#)
        .unwrap_err();
    assert!(matches!(err, KError::Format { ref format, .. } if format == "sql"), "{err}");
    // unknown table
    let err = s
        .query(r#"GDB([query = "select a from missing"])"#)
        .unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

#[test]
fn malformed_driver_requests_are_eval_errors() {
    let s = session_with(FlakyDriver {
        name: "D".into(),
        refuse: false,
        fail_after: None,
        calls: AtomicU64::new(0),
    });
    // not a record
    assert!(s.query(r#"D(42)"#).is_err());
    // unrecognized request shape
    assert!(s.query(r#"D([nonsense = 1])"#).is_err());
}

#[test]
fn inexhaustive_pattern_alternatives_fail_at_runtime_with_message() {
    let mut s = Session::new();
    s.bind_value(
        "V",
        Value::set(vec![Value::variant("unexpected-tag", Value::Int(1))]),
    );
    s.run(r"define get == <known = \x> => x;").unwrap();
    let err = s.query(r"{get(v) | \v <- V}").unwrap_err();
    assert!(
        err.to_string().contains("no pattern alternative"),
        "{err}"
    );
}

#[test]
fn division_by_zero_inside_comprehension() {
    let mut s = Session::new();
    s.bind_value("S", Value::set(vec![Value::Int(0), Value::Int(1)]));
    let err = s.query(r"{10 / x | \x <- S}").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

#[test]
fn dangling_ace_reference_errors_cleanly() {
    let mut s = Session::new();
    s.bind_value(
        "R",
        Value::set(vec![Value::Ref(kleisli_core::Oid {
            class: Arc::from("Clone"),
            id: 404,
        })]),
    );
    let err = s.query(r"{deref(r) | \r <- R}").unwrap_err();
    assert!(err.to_string().contains("dangling"), "{err}");
}

#[test]
fn malformed_formats_error_with_format_name() {
    assert!(matches!(
        bio_formats::parse_fasta("no header"),
        Err(KError::Format { format, .. }) if format == "fasta"
    ));
    assert!(matches!(
        entrez_sim::asn1::parse_value("{ broken"),
        Err(KError::Format { format, .. }) if format == "asn1"
    ));
    assert!(matches!(
        ace_sim::parse_ace("NotAHeader\nTag 1\n"),
        Err(KError::Format { format, .. }) if format == "ace"
    ));
}

// ---------------------------------------------------------------------------
// Resilience: deadlines, retries, and circuit breakers, end to end through
// the session layer against an instrumented fault-injecting driver.
// ---------------------------------------------------------------------------

use std::time::{Duration, Instant};

use kleisli::{BreakerPolicy, BreakerState, ResiliencePolicy, RetryPolicy};
use kleisli_core::testutil::{Fault, SlowDriver};

/// A whole-set scan against the [`SlowDriver`] (which ignores the request
/// shape and yields its configured rows).
const SCAN: &str = r#"{x.n | \x <- SRC([class = "any"])}"#;

fn resilient_session(driver: &Arc<SlowDriver>) -> Session {
    let mut s = Session::new();
    s.register_driver(driver.clone());
    s
}

/// Spin (bounded) until `cond` holds — for effects that happen on a pool
/// or query worker thread shortly after the main thread's trigger.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn a_mid_stream_stall_resolves_as_a_timeout_at_the_row_boundary() {
    // Rows trickle at 5ms each; a 60ms budget runs out mid-stream and the
    // executor's row-boundary budget check turns it into a clean Timeout
    // instead of an unbounded hang.
    let drv = SlowDriver::pipelined(
        "SRC",
        1000,
        Duration::from_millis(1),
        Duration::from_millis(5),
        2,
        0,
    );
    let s = resilient_session(&drv);
    let t0 = Instant::now();
    let err = s
        .submit_with_deadline(SCAN, Duration::from_millis(60))
        .expect("submit")
        .wait()
        .unwrap_err();
    assert!(err.is_timeout(), "expected a timeout, got: {err}");
    assert!(
        t0.elapsed() < Duration::from_millis(1000),
        "a 60ms budget must not take {:?} to resolve",
        t0.elapsed()
    );
}

#[test]
fn a_never_responding_driver_times_out_and_releases_its_ticket() {
    let drv = SlowDriver::new("SRC", 5, Duration::from_millis(1), 2);
    drv.set_fault(Fault::NeverRespond);
    let s = resilient_session(&drv);
    let deadline = Duration::from_millis(50);
    let t0 = Instant::now();
    let err = s
        .submit_with_deadline(SCAN, deadline)
        .expect("submit")
        .wait()
        .unwrap_err();
    let elapsed = t0.elapsed();
    assert!(err.is_timeout(), "expected a timeout, got: {err}");
    assert!(
        elapsed < deadline * 3,
        "a {deadline:?} deadline resolved only after {elapsed:?}"
    );
    // The wedged round-trip was abandoned: its admission ticket is stolen
    // back so the gate's full width is available again immediately.
    wait_until("the admission ticket to be released", || {
        drv.gate.in_flight() == 0
    });
    let m = s.driver_metrics("SRC").expect("metrics");
    assert!(m.timeouts >= 1, "timeout not counted: {m:?}");
    // Let the wedged worker finish, notice its stolen ticket, and retire.
    drv.release_wedged();
    wait_until("abandoned workers to retire", || drv.pool.orphans() == 0);
}

#[test]
fn transport_failures_are_retried_and_rows_arrive_exactly_once() {
    let drv = SlowDriver::new("SRC", 4, Duration::from_millis(1), 2);
    drv.set_resilience(ResiliencePolicy {
        retry: Some(RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        }),
        ..ResiliencePolicy::default()
    });
    let s = resilient_session(&drv);
    drv.set_fault(Fault::FailRequests(2));
    let rows = s.query(SCAN).expect("retried to success");
    assert_eq!(rows, Value::set((0..4).map(Value::Int).collect()));
    assert_eq!(
        drv.performs.load(Ordering::SeqCst),
        3,
        "two failures plus one success"
    );
    let m = s.driver_metrics("SRC").expect("metrics");
    assert_eq!(m.retries, 2, "both failures retried: {m:?}");
}

#[test]
fn the_breaker_opens_fails_fast_and_closes_after_a_good_probe() {
    let drv = SlowDriver::new("SRC", 3, Duration::from_millis(1), 2);
    drv.set_resilience(ResiliencePolicy {
        breaker: Some(BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(200),
        }),
        ..ResiliencePolicy::default()
    });
    let s = resilient_session(&drv);
    drv.set_fault(Fault::FailRequests(u32::MAX));

    for i in 0..3 {
        let err = s.query(SCAN).unwrap_err();
        assert!(
            matches!(err, KError::Transport { .. }),
            "failure {i}: expected a transport error, got: {err}"
        );
    }
    assert_eq!(s.breaker_state("SRC"), Some(BreakerState::Open));
    let m = s.driver_metrics("SRC").expect("metrics");
    assert_eq!(m.breaker_opens, 1, "{m:?}");

    // Open breaker: fail fast without touching the wire.
    let before = drv.performs.load(Ordering::SeqCst);
    let err = s.query(SCAN).unwrap_err();
    assert!(
        matches!(err, KError::CircuitOpen { .. }),
        "expected fail-fast, got: {err}"
    );
    assert_eq!(
        drv.performs.load(Ordering::SeqCst),
        before,
        "an open breaker must not ship requests"
    );

    // Cooldown elapses: half-open admits one probe, and its success
    // closes the breaker again.
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(s.breaker_state("SRC"), Some(BreakerState::HalfOpen));
    drv.set_fault(Fault::None);
    let rows = s.query(SCAN).expect("probe succeeds");
    assert_eq!(rows.len(), Some(3));
    assert_eq!(s.breaker_state("SRC"), Some(BreakerState::Closed));
}

#[test]
fn dropping_a_query_over_a_wedged_driver_neither_blocks_nor_leaks_the_ticket() {
    let drv = SlowDriver::new("SRC", 5, Duration::from_millis(1), 1);
    drv.set_fault(Fault::NeverRespond);
    let s = resilient_session(&drv);
    let handle = s.submit(SCAN).expect("submit");
    wait_until("the request to wedge on the wire", || {
        drv.gate.in_flight() == 1
    });

    let t0 = Instant::now();
    drop(handle);
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "dropping the handle blocked for {:?}",
        t0.elapsed()
    );

    // Drop cancels; the cancel token interrupts the in-flight wait, which
    // abandons the wedged round-trip and steals the admission ticket back.
    wait_until("the admission ticket to be released", || {
        drv.gate.in_flight() == 0
    });
    drv.release_wedged();
    wait_until("abandoned workers to retire", || drv.pool.orphans() == 0);
}

// ---------------------------------------------------------------------------
// Batched and coalesced flights under failure: a failing wire request is
// charged to the breaker once per attempt — never once per attached
// waiter — and every waiter resolves with the shared error.
// ---------------------------------------------------------------------------

use kleisli_core::{BatchPolicy, DriverRef, DriverResilience};

#[test]
fn a_failing_batched_wire_request_fails_every_key_and_charges_the_breaker_once_per_attempt() {
    let drv = SlowDriver::new("SRC", 3, Duration::from_millis(1), 2);
    drv.set_fault(Fault::FailRequests(u32::MAX));
    let dref: DriverRef = drv.clone();
    let res = Arc::new(DriverResilience::with_batching(
        "SRC",
        ResiliencePolicy {
            retry: Some(RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            }),
            breaker: Some(BreakerPolicy {
                failure_threshold: 3,
                cooldown: Duration::from_secs(60),
            }),
            ..ResiliencePolicy::default()
        },
        Some(BatchPolicy {
            max_keys: 16,
            coalesce_window: Duration::ZERO,
        }),
    ));
    let reqs: Vec<kleisli_core::DriverRequest> = (0..8)
        .map(|uid| kleisli_core::DriverRequest::EntrezLinks {
            db: "na".into(),
            uid,
        })
        .collect();
    let seeds = res.submit_batch(&dref, &reqs).expect("batching advertised");
    assert_eq!(seeds.len(), 8, "one flight per distinct key");

    // Two independent waiters per key — sixteen consumers share the one
    // doomed wire request, and every single one must see its error.
    for flight in &seeds {
        for _ in 0..2 {
            let err = match res.attach_seeded(flight, None, None).wait() {
                Err(e) => e,
                Ok(_) => panic!("the batch must fail"),
            };
            assert!(
                matches!(err, KError::Transport { .. })
                    && err.to_string().contains("injected transport failure"),
                "waiter got the wrong error: {err}"
            );
        }
    }

    // The wire saw exactly 1 + max_retries batched attempts, no per-key
    // round-trips, and the three failures were charged to the breaker at
    // the wire level: it trips exactly at its threshold of 3. Sixteen
    // per-waiter charges would have tripped it long before the retry
    // budget ran out.
    assert_eq!(drv.batch_performs.load(Ordering::SeqCst), 3);
    assert_eq!(drv.performs.load(Ordering::SeqCst), 0);
    let m = res.metrics_snapshot();
    assert_eq!(m.retries, 2, "{m:?}");
    assert_eq!(m.breaker_opens, 1, "{m:?}");
    assert_eq!(m.batch_requests, 1, "8 keys fit one wire request: {m:?}");
    assert_eq!(m.batched_keys, 8, "{m:?}");
    assert_eq!(res.breaker_state(), Some(BreakerState::Open));
}

#[test]
fn a_coalesced_timeout_charges_the_breaker_once_not_per_waiter() {
    let drv = SlowDriver::new("SRC", 3, Duration::from_millis(1), 2);
    drv.set_fault(Fault::NeverRespond);
    let dref: DriverRef = drv.clone();
    let res = Arc::new(DriverResilience::with_batching(
        "SRC",
        ResiliencePolicy {
            deadline: Some(Duration::from_millis(50)),
            breaker: Some(BreakerPolicy {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
            }),
            ..ResiliencePolicy::default()
        },
        Some(BatchPolicy {
            max_keys: 16,
            coalesce_window: Duration::from_millis(500),
        }),
    ));
    let req = kleisli_core::DriverRequest::EntrezLinks {
        db: "na".into(),
        uid: 7,
    };
    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let res = Arc::clone(&res);
            let dref = Arc::clone(&dref);
            let req = req.clone();
            std::thread::spawn(move || {
                let h = res.submit(&dref, &req, None, None).expect("submit");
                match h.wait() {
                    Err(e) => e,
                    Ok(_) => panic!("the wedged wire must time out"),
                }
            })
        })
        .collect();
    for w in waiters {
        let err = w.join().expect("waiter thread");
        assert!(err.is_timeout(), "expected a timeout, got: {err}");
    }
    // One wire request timed out once; four waiter-level timeouts must
    // not each count as a breaker failure. With a threshold of 2, a
    // per-waiter charge would have tripped the breaker — the single
    // wire-level charge leaves it closed.
    assert_eq!(drv.performs.load(Ordering::SeqCst), 1, "one shared wire request");
    let m = res.metrics_snapshot();
    assert_eq!(m.breaker_opens, 0, "per-waiter breaker charges: {m:?}");
    assert_eq!(res.breaker_state(), Some(BreakerState::Closed));
    assert!(m.timeouts >= 1, "{m:?}");
    assert_eq!(m.coalesced, 3, "three of four submissions attached: {m:?}");
    drv.release_wedged();
    wait_until("abandoned workers to retire", || drv.pool.orphans() == 0);
}
