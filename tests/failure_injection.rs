//! Failure injection: errors from drivers, malformed native data, bad
//! queries, and mid-stream failures must surface as clean `KError`s, never
//! panics or wrong answers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kleisli::Session;
use kleisli_core::{
    Capabilities, Driver, DriverRequest, KError, KResult, Value, ValueStream,
};

/// A driver that fails in configurable ways.
struct FlakyDriver {
    name: String,
    /// fail the whole request
    refuse: bool,
    /// yield this many rows, then fail mid-stream
    fail_after: Option<usize>,
    calls: AtomicU64,
}

impl Driver for FlakyDriver {
    fn name(&self) -> &str {
        &self.name
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }
    fn perform(&self, _req: &DriverRequest) -> KResult<ValueStream> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.refuse {
            return Err(KError::driver(&self.name, "connection refused"));
        }
        let fail_after = self.fail_after;
        let name = self.name.clone();
        Ok(Box::new((0..10).map(move |i| {
            if let Some(n) = fail_after {
                if i >= n as i64 {
                    return Err(KError::driver(&name, "stream interrupted"));
                }
            }
            Ok(Value::record_from(vec![("n", Value::Int(i))]))
        })))
    }
}

fn session_with(driver: FlakyDriver) -> Session {
    let mut s = Session::new();
    s.register_driver(Arc::new(driver));
    s
}

#[test]
fn refused_connection_is_a_driver_error() {
    let s = session_with(FlakyDriver {
        name: "DOWN".into(),
        refuse: true,
        fail_after: None,
        calls: AtomicU64::new(0),
    });
    let err = s
        .query(r#"{x.n | \x <- DOWN([class = "anything"])}"#)
        .unwrap_err();
    assert!(
        matches!(err, KError::Driver { ref driver, .. } if driver == "DOWN"),
        "{err}"
    );
}

#[test]
fn mid_stream_failure_propagates() {
    let s = session_with(FlakyDriver {
        name: "FLAKY".into(),
        refuse: false,
        fail_after: Some(4),
        calls: AtomicU64::new(0),
    });
    let err = s
        .query(r#"{x.n | \x <- FLAKY([class = "c"])}"#)
        .unwrap_err();
    assert!(matches!(err, KError::Driver { .. }), "{err}");
    // but a lazy consumer that stops before row 4 succeeds
    let ok = s
        .query_first_n(r#"{x.n | \x <- FLAKY([class = "c"])}"#, 3)
        .expect("lazy prefix");
    assert_eq!(ok.len(), 3);
}

#[test]
fn bad_sql_is_reported_not_panicked() {
    let mut db = sybase_sim::Database::new();
    db.create_table("t", &["a"]).unwrap();
    let server = Arc::new(sybase_sim::SybaseServer::new(
        "GDB",
        db,
        kleisli_core::LatencyModel::instant(),
    ));
    let mut s = Session::new();
    s.register_driver(server);
    // ship raw SQL with a syntax error
    let err = s
        .query(r#"GDB([query = "selekt a from t"])"#)
        .unwrap_err();
    assert!(matches!(err, KError::Format { ref format, .. } if format == "sql"), "{err}");
    // unknown table
    let err = s
        .query(r#"GDB([query = "select a from missing"])"#)
        .unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

#[test]
fn malformed_driver_requests_are_eval_errors() {
    let s = session_with(FlakyDriver {
        name: "D".into(),
        refuse: false,
        fail_after: None,
        calls: AtomicU64::new(0),
    });
    // not a record
    assert!(s.query(r#"D(42)"#).is_err());
    // unrecognized request shape
    assert!(s.query(r#"D([nonsense = 1])"#).is_err());
}

#[test]
fn inexhaustive_pattern_alternatives_fail_at_runtime_with_message() {
    let mut s = Session::new();
    s.bind_value(
        "V",
        Value::set(vec![Value::variant("unexpected-tag", Value::Int(1))]),
    );
    s.run(r"define get == <known = \x> => x;").unwrap();
    let err = s.query(r"{get(v) | \v <- V}").unwrap_err();
    assert!(
        err.to_string().contains("no pattern alternative"),
        "{err}"
    );
}

#[test]
fn division_by_zero_inside_comprehension() {
    let mut s = Session::new();
    s.bind_value("S", Value::set(vec![Value::Int(0), Value::Int(1)]));
    let err = s.query(r"{10 / x | \x <- S}").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

#[test]
fn dangling_ace_reference_errors_cleanly() {
    let mut s = Session::new();
    s.bind_value(
        "R",
        Value::set(vec![Value::Ref(kleisli_core::Oid {
            class: Arc::from("Clone"),
            id: 404,
        })]),
    );
    let err = s.query(r"{deref(r) | \r <- R}").unwrap_err();
    assert!(err.to_string().contains("dangling"), "{err}");
}

#[test]
fn malformed_formats_error_with_format_name() {
    assert!(matches!(
        bio_formats::parse_fasta("no header"),
        Err(KError::Format { format, .. }) if format == "fasta"
    ));
    assert!(matches!(
        entrez_sim::asn1::parse_value("{ broken"),
        Err(KError::Format { format, .. }) if format == "asn1"
    ));
    assert!(matches!(
        ace_sim::parse_ace("NotAHeader\nTag 1\n"),
        Err(KError::Format { format, .. }) if format == "ace"
    ));
}
