//! Semantics-equivalence harness for batched driver round-trips: a plan
//! executed with the optimizer's IN-list / multi-uid batching mark must
//! be indistinguishable — values, printed form, error messages, and
//! order-sensitive observables (`first_n`, list order, set dedup) —
//! from the same plan executed per element with batching disabled.
//!
//! Batching is *advisory* by construction (warm-up pre-seeds shared
//! flights; the loop body is unchanged and merely attaches to them), so
//! any divergence here is a real defect in the coalescing window, the
//! batched reply splitting, or the warm-up's sharing discipline.

use std::time::Duration;

use bench_harness::latency_federation;
use kleisli::Session;
use kleisli_core::Value;
use proptest::prelude::*;

/// Set comprehension (dedup observable): per-uid link counts.
const LINK_SET: &str =
    r#"{[u = uid, n = count(GenBank([db = "na", link = uid]))] | \uid <- UIDS}"#;

/// List comprehension (order + duplicate observable) over `UIDL`.
const LINK_LIST: &str = r#"[| count(GenBank([db = "na", link = uid])) | \uid <- UIDL |]"#;

/// Nested comprehension: the batched request feeds an inner loop.
const NESTED: &str =
    r#"{[u = uid, hits = {l.uid | \l <- GenBank([db = "na", link = uid])}] | \uid <- UIDS}"#;

/// A fresh federation session plus every valid GenBank uid.
fn fed_session() -> (Session, Vec<i64>) {
    let (session, fed) = latency_federation(12, Duration::ZERO);
    let uids = fed.genbank_data.entries.iter().map(|e| e.uid).collect();
    (session, uids)
}

/// Bind the generated key list both as a set (`UIDS`) and, preserving
/// duplicates and order, as a list (`UIDL`).
fn bind_keys(session: &mut Session, keys: &[i64]) {
    let vals: Vec<Value> = keys.iter().copied().map(Value::Int).collect();
    session.bind_value("UIDS", Value::set(vals.clone()));
    session.bind_value("UIDL", Value::list(vals));
}

/// Run `query` with batching off then on; both outcomes stringified so
/// error messages participate in the equivalence check too.
fn both_ways(session: &mut Session, query: &str) -> (Result<String, String>, Result<String, String>) {
    session.set_batching(false);
    let plain = session.query(query).map(|v| v.to_string()).map_err(|e| e.to_string());
    session.set_batching(true);
    let batched = session.query(query).map(|v| v.to_string()).map_err(|e| e.to_string());
    (plain, batched)
}

/// Keys sampled (with repetition) from the valid uid pool — duplicate,
/// empty, and singleton key sets all arise from the size range.
fn key_picks() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..1000, 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn set_comprehension_matches_unbatched(picks in key_picks()) {
        let (mut s, pool) = fed_session();
        let keys: Vec<i64> = picks.iter().map(|i| pool[i % pool.len()]).collect();
        bind_keys(&mut s, &keys);
        let (plain, batched) = both_ways(&mut s, LINK_SET);
        prop_assert_eq!(plain, batched);
    }

    #[test]
    fn list_comprehension_preserves_order_and_duplicates(picks in key_picks()) {
        let (mut s, pool) = fed_session();
        let keys: Vec<i64> = picks.iter().map(|i| pool[i % pool.len()]).collect();
        bind_keys(&mut s, &keys);
        let (plain, batched) = both_ways(&mut s, LINK_LIST);
        prop_assert_eq!(plain, batched);
    }

    #[test]
    fn nested_comprehension_matches_unbatched(picks in key_picks()) {
        let (mut s, pool) = fed_session();
        let keys: Vec<i64> = picks.iter().map(|i| pool[i % pool.len()]).collect();
        bind_keys(&mut s, &keys);
        let (plain, batched) = both_ways(&mut s, NESTED);
        prop_assert_eq!(plain, batched);
    }

    #[test]
    fn first_n_sees_the_same_prefix(picks in key_picks(), n in 0usize..12) {
        let (mut s, pool) = fed_session();
        let keys: Vec<i64> = picks.iter().map(|i| pool[i % pool.len()]).collect();
        bind_keys(&mut s, &keys);
        s.set_batching(false);
        let plain = s.query_first_n(LINK_LIST, n).map_err(|e| e.to_string());
        s.set_batching(true);
        let batched = s.query_first_n(LINK_LIST, n).map_err(|e| e.to_string());
        prop_assert_eq!(plain, batched);
    }
}

#[test]
fn empty_and_singleton_key_sets() {
    let (mut s, pool) = fed_session();
    for keys in [vec![], vec![pool[0]]] {
        bind_keys(&mut s, &keys);
        for q in [LINK_SET, LINK_LIST, NESTED] {
            let (plain, batched) = both_ways(&mut s, q);
            assert_eq!(plain, batched, "query {q} diverged on keys {keys:?}");
            assert!(plain.is_ok(), "query {q} failed on keys {keys:?}: {plain:?}");
        }
    }
}

#[test]
fn duplicate_keys_share_one_flight_per_distinct_key() {
    let (mut s, pool) = fed_session();
    // 16 logical keys (one warm-up chunk), 6 distinct: well past
    // min_keys, and the batch must fold to the distinct set (one 6-key
    // wire request), while the list result still answers all 16
    // positions.
    let keys: Vec<i64> = (0..16).map(|i| pool[i % 6]).collect();
    bind_keys(&mut s, &keys);
    s.reset_metrics();
    let (plain, batched) = both_ways(&mut s, LINK_LIST);
    assert_eq!(plain, batched);
    let m = s.driver_metrics("GenBank").expect("metrics");
    assert_eq!(m.batched_keys, 6, "duplicates must not inflate the batch: {m:?}");
    assert_eq!(m.batch_requests, 1, "6 distinct keys fit one wire request: {m:?}");
}

#[test]
fn a_bad_key_fails_identically_in_both_modes() {
    let (mut s, pool) = fed_session();
    // One unknown uid among valid ones: the per-key error must surface
    // with the same message whether the request rode a batch or not.
    let keys = vec![pool[0], -7777, pool[1], pool[2], pool[3]];
    bind_keys(&mut s, &keys);
    let (plain, batched) = both_ways(&mut s, LINK_SET);
    assert_eq!(plain, batched);
    let err = plain.expect_err("an unknown uid must fail the query");
    assert!(
        err.contains("no entry with uid -7777"),
        "unexpected error shape: {err}"
    );
}

#[test]
fn batched_run_actually_batches() {
    // Guard against the harness silently testing nothing: on a 32-key
    // workload the batched path must issue multi-key wire requests.
    let (mut s, pool) = fed_session();
    let keys: Vec<i64> = (0..32).map(|i| pool[i % pool.len()]).collect();
    bind_keys(&mut s, &keys);
    s.set_batching(true);
    s.reset_metrics();
    s.query(LINK_SET).expect("query");
    let m = s.driver_metrics("GenBank").expect("metrics");
    assert!(
        m.batch_requests >= 1 && m.batched_keys >= 16,
        "batching never engaged: {m:?}"
    );
}
