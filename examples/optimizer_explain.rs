//! A tour of the optimizer (Section 4): shows the desugared NRC, the
//! rewrite rules firing, and the final plans for the paper's motivating
//! queries — including what changes when individual optimizations are
//! disabled (the ablations measured in EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --example optimizer_explain
//! ```

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, Session};
use kleisli_core::LatencyModel;
use kleisli_opt::OptConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fed = bio_federation(
        &GdbConfig {
            loci: 200,
            seed: 2,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 20,
            seed: 2,
            ..Default::default()
        },
        LatencyModel::instant(),
        LatencyModel::instant(),
    )?;
    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());
    session.bind_value("PUBS", bio_data::publications(20, 3));

    // 1. Loci22: joins migrate to the server.
    let loci22 = r#"{[locus_symbol = x, genbank_ref = y] |
        [locus_symbol = \x, locus_id = \a, ...] <- GDB-Tab("locus"),
        [genbank_ref = \y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
        [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}"#;
    println!("########## Loci22: SQL migration ##########\n");
    println!("{}", session.explain(loci22)?);

    // Ablation: how many server requests does each configuration ship?
    for (label, config) in [
        ("full optimizer", OptConfig::default()),
        (
            "no pushdown",
            OptConfig {
                enable_pushdown: false,
                ..OptConfig::default()
            },
        ),
        ("no optimization at all", OptConfig::none()),
    ] {
        session.set_opt_config(config);
        session.reset_metrics();
        let v = session.query(loci22)?;
        let m = session.driver_metrics("GDB")?;
        println!(
            "{label:>24}: {} request(s), {} rows shipped, result {} rows",
            m.requests,
            m.rows_shipped,
            v.len().unwrap_or(0)
        );
    }
    session.set_opt_config(OptConfig::default());

    // 2. Vertical loop fusion (R1) on a producer/consumer pipeline.
    println!("\n########## R1 vertical fusion ##########\n");
    println!(
        "{}",
        session.explain(
            r"{[t = q.t, n = q.y + 1] |
               \q <- {[t = p.title, y = p.year] | \p <- PUBS}}"
        )?
    );

    // 3. Filter promotion (R3): a loop-invariant test hoists out.
    println!("########## R3 filter promotion ##########\n");
    println!(
        "{}",
        session.explain(r"\c => {p.title | \p <- PUBS, c = 22}")?
    );

    // 4. The Entrez path migration.
    println!("########## Entrez path migration ##########\n");
    println!(
        "{}",
        session.explain(
            r#"{x.seq.descr | \x <- GenBank([db = "na", select = "organism \"Homo sapiens\""])}"#
        )?
    );
    Ok(())
}
