//! The "impossible" DOE query (Section 3 of the paper):
//!
//! > Find information on the known DNA sequences on human chromosome 22,
//! > as well as information on homologous sequences from other organisms.
//!
//! This example reproduces the whole pipeline of Figure 2: a parameterized
//! multidatabase user-view (the Figure-1 form) over the simulated GDB
//! (Sybase) and GenBank (Entrez/ASN.1) sources, with the optimizer
//! migrating the relational part into one SQL query and the per-sequence
//! link lookups into a bounded-concurrency parallel loop.
//!
//! ```sh
//! cargo run --example doe_query [CHROMOSOME] [BAND-PREFIX]
//! cargo run --example doe_query 22 22q1
//! ```

use std::time::Duration;

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, Session};
use kleisli_core::print::to_table;
use kleisli_core::{LatencyModel, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let chromosome = args.next().unwrap_or_else(|| "22".to_string());
    let band_prefix = args.next();

    // Simulated wide-area sources: 2 ms per request, 20 µs per row.
    let fed = bio_federation(
        &GdbConfig {
            loci: 600,
            seed: 22,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 150,
            links_per_entry: 4,
            seed: 22,
            ..Default::default()
        },
        LatencyModel::virtual_only(Duration::from_millis(2), Duration::from_micros(20)),
        LatencyModel::virtual_only(Duration::from_millis(2), Duration::from_micros(20)),
    )?;

    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());

    // The parameterized user-view underlying the Figure-1 form. The band
    // interval is an optional refinement on the cytogenetic location.
    let band_filter = match &band_prefix {
        Some(b) => format!(r#", strstartswith(band, "{b}")"#),
        None => String::new(),
    };
    session.run(&format!(
        r#"define Loci == {{[locus_symbol = x, genbank_ref = y] |
            [locus_symbol = \x, locus_id = \a, ...] <- GDB-Tab("locus"),
            [genbank_ref = \y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
            [loc_cyto_chrom_num = "{chromosome}", locus_cyto_location_id = a, loc_cyto_band = \band, ...]
                <- GDB-Tab("locus_cyto_location"){band_filter}}};"#
    ))?;

    // ASN-IDs: accession number -> ASN.1 sequence ids, with the path
    // expression pruning applied at the driver (Section 3).
    session.run(
        r#"define ASN-IDs == \accession =>
               flatten(GenBank([db = "na",
                                select = "accession " ^ accession,
                                path = "Seq-entry.seq.id..giim"]));"#,
    )?;

    // NA-Links: precomputed similarity links for one sequence id.
    session.run(r#"define NA-Links == \uid => GenBank([db = "na", link = uid]);"#)?;

    // The final solution, as in the paper — a nested relation pairing each
    // locus with its non-human homologs.
    let doe = r#"{[locus = locus, homologs =
                     {l | \l <- NA-Links(uid), not (l.organism = "Homo sapiens")}] |
                  \locus <- Loci, \uid <- ASN-IDs(locus.genbank_ref)}"#;

    println!("{}", session.explain(doe)?);

    session.reset_metrics();
    fed.gdb.latency().reset();
    fed.genbank.latency().reset();
    let t0 = std::time::Instant::now();
    let result = session.query(doe)?;
    let elapsed = t0.elapsed();

    let rows = result.elements().unwrap_or(&[]);
    println!(
        "chromosome {chromosome}{}: {} loci with sequence entries",
        band_prefix
            .as_deref()
            .map(|b| format!(", band {b}*"))
            .unwrap_or_default(),
        rows.len()
    );
    for row in rows.iter().take(5) {
        let locus = row.project("locus").expect("locus field");
        let homologs = row.project("homologs").expect("homologs field");
        println!(
            "  {} -> {} non-human homolog(s)",
            locus
                .project("locus_symbol")
                .unwrap_or(&Value::str("?")),
            homologs.len().unwrap_or(0)
        );
        if let Some(hs) = homologs.elements() {
            if !hs.is_empty() {
                println!("{}", indent(&to_table(homologs), 6));
            }
        }
    }
    if rows.len() > 5 {
        println!("  ... and {} more", rows.len() - 5);
    }

    let gdb_m = session.driver_metrics("GDB")?;
    let gb_m = session.driver_metrics("GenBank")?;
    println!("\n— driver traffic —");
    println!(
        "GDB:     {} request(s), {} rows, {} bytes",
        gdb_m.requests, gdb_m.rows_shipped, gdb_m.bytes_shipped
    );
    println!(
        "GenBank: {} request(s), {} rows, {} bytes",
        gb_m.requests, gb_m.rows_shipped, gb_m.bytes_shipped
    );
    println!(
        "simulated network time: GDB {:?} + GenBank {:?}; local wall clock {:?}",
        fed.gdb.latency().virtual_elapsed(),
        fed.genbank.latency().virtual_elapsed(),
        elapsed
    );
    Ok(())
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
