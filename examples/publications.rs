//! The restructuring queries of Section 2 (experiment E12): flattening a
//! nested relation, inverting it into a keyword index, exploiting variants
//! with `jname`, and the membership-pattern `papers-of` function.
//!
//! ```sh
//! cargo run --example publications
//! ```

use kleisli::Session;
use kleisli_core::print::to_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    session.bind_value("DB", bio_data::publications(30, 7));

    // "The first query flattens the nested relation" —
    let flat = session.query(
        r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}",
    )?;
    println!(
        "— flattened (title, keyword), {} rows —",
        flat.len().unwrap_or(0)
    );
    print_some(&flat, 6);

    // "the second restructures it so that the database becomes a database
    // of keywords with associated titles."
    let inverted = session.query(
        r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] |
           \y <- DB, \k <- y.keywd}",
    )?;
    println!(
        "\n— inverted: keyword -> titles, {} keywords —",
        inverted.len().unwrap_or(0)
    );
    for row in inverted.elements().unwrap().iter().take(4) {
        println!(
            "{}: {} title(s)",
            row.project("keyword").unwrap(),
            row.project("titles").unwrap().len().unwrap_or(0)
        );
    }

    // Variant patterns: uncontrolled journals only.
    let uncontrolled = session.query(
        r"{[name = n, title = t] |
           [title = \t, journal = <uncontrolled = \n>, ...] <- DB}",
    )?;
    println!(
        "\n— uncontrolled journals ({} found) —",
        uncontrolled.len().unwrap_or(0)
    );
    print_some(&uncontrolled, 4);

    // jname: collapse the variant structure "at the risk of some
    // confusion and loss of information".
    session.run(
        r"define jname ==
              <uncontrolled = \s> => s
            | <controlled = <medline-jta = \s>> => s
            | <controlled = <iso-jta = \s>> => s
            | <controlled = <journal-title = \s>> => s
            | <controlled = <issn = \s>> => s;",
    )?;
    let relational = session.query(
        r"{[title = t, name = jname(v)] | [title = \t, journal = \v, ...] <- DB}",
    )?;
    println!("\n— relational view via jname —");
    print_some(&relational, 6);

    // A more sophisticated transformation "could preserve the tag
    // information from the variant structure in an additional attribute".
    session.run(
        r#"define jsource ==
              <uncontrolled = \s> => "uncontrolled"
            | <controlled = \c> => "controlled";"#,
    )?;
    let tagged = session.query(
        r"{[title = t, name = jname(v), source = jsource(v)] |
           [title = \t, journal = \v, ...] <- DB}",
    )?;
    println!("\n— with the tag preserved as an attribute —");
    print_some(&tagged, 6);

    // papers-of: pattern matching on list membership. The paper's version
    // takes a full author record; the pattern-generator version below
    // matches any Smith regardless of initial.
    session.run(r"define papers-of == \x => {p.title | \p <- DB, x <- p.authors};")?;
    let smiths = session.query(r#"{p.title | \p <- DB, [name = "Smith", ...] <- p.authors}"#)?;
    println!(
        "\n— titles with a Smith among the authors: {} —",
        smiths.len().unwrap_or(0)
    );
    print_some(&smiths, 4);
    Ok(())
}

fn print_some(v: &kleisli_core::Value, n: usize) {
    let elems = v.elements().unwrap_or(&[]);
    let shown = kleisli_core::Value::list(elems.iter().take(n).cloned().collect());
    print!("{}", to_table(&shown));
    if elems.len() > n {
        println!("... and {} more", elems.len() - n);
    }
}
