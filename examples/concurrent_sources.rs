//! Concurrent sources: the non-blocking `Session::submit` → `QueryHandle`
//! API over two simulated remote servers with real per-request latency.
//!
//! ```sh
//! cargo run --example concurrent_sources
//! ```
//!
//! Demonstrates the Section-4 story end to end: requests to GDB (Sybase)
//! and GenBank (Entrez) are *submitted* rather than executed, each
//! driver keeps up to its tolerated number of requests in flight
//! (enforced admission: GDB 8, GenBank 5), and the session exposes the
//! same two-phase shape publicly — submit, poll, stream a prefix,
//! cancel, or wait.

use std::time::{Duration, Instant};

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, Session};
use kleisli_core::{LatencyModel, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two sources, each charging a real 3 ms per request.
    let latency = Duration::from_millis(3);
    let fed = bio_federation(
        &GdbConfig {
            loci: 40,
            seed: 11,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 30,
            links_per_entry: 3,
            seed: 11,
            ..Default::default()
        },
        LatencyModel::real(latency, Duration::ZERO),
        LatencyModel::real(latency, Duration::ZERO),
    )?;
    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());
    let uids: Vec<Value> = fed
        .genbank_data
        .entries
        .iter()
        .take(15)
        .map(|e| Value::Int(e.uid))
        .collect();
    session.bind_value("UIDS", Value::set(uids));

    // Per-uid requests to both sources: the optimizer parallelizes the
    // loop up to GenBank's budget of 5, and the executor overlaps the
    // round-trips.
    let two_source = r#"{[u = uid,
           links = count(GenBank([db = "na", link = uid])),
           loci = count({l | \l <- GDB-Tab("locus"), l.locus_id = uid})] |
        \uid <- UIDS}"#;

    // 1. Submit without blocking, poll while it runs, then wait.
    let t0 = Instant::now();
    let mut handle = session.submit(two_source)?;
    println!("submitted; status = {:?}", handle.status());
    let result = loop {
        match handle.try_wait() {
            Some(r) => break r?,
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    };
    println!(
        "two-source query: {} rows in {:?} (30 requests at 3 ms each, overlapped)",
        result.len().unwrap_or(0),
        t0.elapsed()
    );

    // 2. Two independent queries in flight on one session.
    let t0 = Instant::now();
    let h_gdb = session.submit(r#"count(GDB-Tab("locus"))"#)?;
    let h_gb = session.submit(r#"count(GenBank([db = "na", select = "organism \"Homo sapiens\""]))"#)?;
    let (n_gdb, n_gb) = (h_gdb.wait()?, h_gb.wait()?);
    println!(
        "both sources answered in {:?} (each costs one {latency:?} round-trip): \
         GDB {n_gdb}, GenBank {n_gb}",
        t0.elapsed()
    );

    // 3. Stream a prefix and cancel the rest: first_n redeems as soon as
    //    three rows have arrived, then stops the evaluation.
    let t0 = Instant::now();
    let prefix = session.submit(two_source)?.first_n(3)?;
    println!(
        "first 3 rows in {:?} (remaining requests cancelled): {} rows",
        t0.elapsed(),
        prefix.len()
    );

    // 4. Explicit cancellation: submit and abandon.
    let handle = session.submit(two_source)?;
    handle.cancel();
    match handle.wait() {
        Err(e) => println!("cancelled query reports: {e}"),
        Ok(_) => println!("query finished before the cancel landed (also fine)"),
    }

    // 5. Admission budgets held: the drivers report their traffic.
    println!(
        "driver traffic — GDB: {:?}, GenBank: {:?}",
        session.driver_metrics("GDB")?,
        session.driver_metrics("GenBank")?
    );
    Ok(())
}
