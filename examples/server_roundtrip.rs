//! Server round-trip: start a `kleislid` server in-process on an
//! ephemeral port, run the paper's locus query through two client
//! connections over real loopback TCP, and read the server's STATS
//! frame.
//!
//! ```sh
//! cargo run --example server_roundtrip
//! ```
//!
//! The second connection's query is served from the **process-wide
//! shared result cache** populated by the first: the sharing is keyed by
//! the plan's structural hash, so it crosses session (and connection)
//! boundaries. This is the multi-user deployment the paper describes —
//! one Kleisli server fronting the remote sources for many CPL clients
//! — with the caches turning N identical queries into one compile and
//! one federated evaluation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, Session};
use kleisli_core::LatencyModel;
use kleisli_server::{serve_ephemeral, Client, Registrar, ServedFrom, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The federation the server fronts: GDB + GenBank with a real 5 ms
    // per-request latency, as in the paper's deployment.
    let latency = Duration::from_millis(5);
    let fed = bio_federation(
        &GdbConfig {
            loci: 60,
            seed: 23,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 20,
            links_per_entry: 2,
            seed: 23,
            ..Default::default()
        },
        LatencyModel::real(latency, Duration::ZERO),
        LatencyModel::real(latency, Duration::ZERO),
    )?;

    // The registrar prepares every connection's session; the driver
    // `Arc`s it captures are shared, so admission and resilience
    // policies are process-wide.
    let gdb = fed.gdb.clone();
    let genbank = fed.genbank.clone();
    let registrar: Arc<Registrar> = Arc::new(move |session: &mut Session| {
        session.register_driver(gdb.clone());
        session.register_driver(genbank.clone());
    });

    let server = serve_ephemeral(ServerConfig::default(), registrar)?;
    println!("kleislid listening on {}", server.addr());

    let query = r#"{[s = l.locus_symbol] | \l <- GDB-Tab("locus")}"#;

    // Client A pays the full price: compile + federated evaluation.
    let mut a = Client::connect(server.addr())?;
    let t0 = Instant::now();
    let (value, served) = a.query(query)?.into_value()?;
    println!(
        "client A: {:?} in {:.1} ms ({} loci)",
        served,
        t0.elapsed().as_secs_f64() * 1e3,
        match &value {
            kleisli_core::Value::Set(rows) => rows.len(),
            _ => 0,
        }
    );
    assert_eq!(served, ServedFrom::Fresh);

    // Client B is a different connection — a different session — but the
    // caches are process-wide: same plan hash, same cached result.
    let mut b = Client::connect(server.addr())?;
    let t1 = Instant::now();
    let (value_b, served) = b.query(query)?.into_value()?;
    println!(
        "client B: {:?} in {:.2} ms",
        served,
        t1.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(served, ServedFrom::SharedCache);
    assert_eq!(value_b, value, "cache serves the same value");

    // The STATS frame: shared-cache and admission counters as JSON.
    println!("stats: {}", b.stats()?);

    server.shutdown();
    Ok(())
}
