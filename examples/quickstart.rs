//! Quickstart: create a session, bind a publication database, and run the
//! queries from Section 2 of the paper.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kleisli::Session;
use kleisli_core::print::{to_html, to_table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();

    // A small publication database with the paper's Publication type.
    session.bind_value("DB", bio_data::publications(12, 1995));

    // 1. Simple projection: titles and years.
    let flat = session.query(r"{[title = p.title, year = p.year] | \p <- DB}")?;
    println!("— titles and years —\n{}", to_table(&flat));

    // 2. Pattern matching with ellipsis and a literal year.
    let in_1989 = session.query(r"{t | [title = \t, year = 1989, ...] <- DB}")?;
    println!("— published in 1989 —\n{}", to_table(&in_1989));

    // 3. Variant pattern: names of "uncontrolled" journals.
    let uncontrolled = session.query(
        r"{[name = n, title = t] |
           [title = \t, journal = <uncontrolled = \n>, ...] <- DB}",
    )?;
    println!("— uncontrolled journals —\n{}", to_table(&uncontrolled));

    // 4. A function with pattern alternatives (the paper's jname).
    session.run(
        r"define jname ==
              <uncontrolled = \s> => s
            | <controlled = <medline-jta = \s>> => s
            | <controlled = <iso-jta = \s>> => s
            | <controlled = <journal-title = \s>> => s
            | <controlled = <issn = \s>> => s;",
    )?;
    let names = session.query(
        r"{[title = t, name = jname(v)] | [title = \t, journal = \v, ...] <- DB}",
    )?;
    println!("— journal ids via jname —\n{}", to_table(&names));

    // 5. Aggregates and HTML output for the Mosaic-era web view.
    let per_year = session.query(
        r"{[year = y, n = count({p | \p <- DB, p.year = y})] | \p2 <- DB, \y2 <- {p2.year}, \y <- {y2}}",
    )?;
    println!("— publications per year —\n{}", to_table(&per_year));
    let html = to_html(&in_1989);
    println!("— the 1989 titles as HTML —\n{html}\n");

    // 6. Explain a query: the desugared NRC, the optimized plan, and the
    //    rewrite rules that fired.
    println!(
        "{}",
        session.explain(r"{t | [title = \t, year = 1989, ...] <- DB}")?
    );
    Ok(())
}
