//! Data transformation across formats — the paper's core use case: pull
//! GenBank entries out of the ASN.1 source with CPL, transform them, and
//! emit FASTA (for BLAST-style packages), EMBL, GCG, ASN.1 value notation,
//! and an ACE bulk-load file.
//!
//! ```sh
//! cargo run --example format_roundtrip
//! ```

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, Session};
use kleisli_core::{LatencyModel, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fed = bio_federation(
        &GdbConfig {
            loci: 40,
            seed: 9,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 5,
            seq_len: 80,
            seed: 9,
            ..Default::default()
        },
        LatencyModel::instant(),
        LatencyModel::instant(),
    )?;
    let mut session = Session::new();
    session.register_driver(fed.genbank.clone());

    // Fetch some human entries and reshape them with CPL into the record
    // shape the FASTA printer expects.
    let fasta_shaped = session.query(
        r#"{[id = {a | <accession = \a> <- e.seq.id},
             description = e.seq.descr,
             sequence = e.seq.inst.seq-data] |
            \e <- GenBank([db = "na", select = "organism \"Homo sapiens\""])}"#,
    )?;
    // `id` came out as a singleton set; flatten it to the string.
    let records: Vec<Value> = fasta_shaped
        .elements()
        .unwrap()
        .iter()
        .take(3)
        .map(|r| {
            let id = match r.project("id") {
                Some(s) => match s.elements() {
                    Some([Value::Str(one)]) => Value::Str(one.clone()),
                    _ => s.clone(),
                },
                None => Value::str("?"),
            };
            Value::record_from(vec![
                ("id", id),
                ("description", r.project("description").cloned().unwrap()),
                ("sequence", r.project("sequence").cloned().unwrap()),
            ])
        })
        .collect();
    let shaped = Value::list(records);

    // FASTA
    let fasta = bio_formats::print_fasta(&shaped)?;
    println!("— FASTA —\n{fasta}");
    assert_eq!(bio_formats::parse_fasta(&fasta)?.len(), shaped.len());

    // EMBL (needs organism and keywords fields)
    let embl_shaped = Value::list(
        shaped
            .elements()
            .unwrap()
            .iter()
            .map(|r| {
                Value::record_from(vec![
                    ("id", r.project("id").cloned().unwrap()),
                    (
                        "description",
                        r.project("description").cloned().unwrap(),
                    ),
                    ("organism", Value::str("Homo sapiens")),
                    ("keywords", Value::set(vec![Value::str("Chromosome 22")])),
                    ("sequence", r.project("sequence").cloned().unwrap()),
                ])
            })
            .collect(),
    );
    let embl = bio_formats::print_embl(&embl_shaped)?;
    println!("— EMBL —\n{embl}");
    assert_eq!(bio_formats::parse_embl(&embl)?.len(), embl_shaped.len());

    // GCG (single sequence)
    let first = &shaped.elements().unwrap()[0];
    let gcg = bio_formats::print_gcg(first)?;
    println!("— GCG —\n{gcg}");
    let back = bio_formats::parse_gcg(&gcg)?;
    assert_eq!(back.project("sequence"), first.project("sequence"));

    // ASN.1 value notation round-trip
    let entry = &fed.genbank_data.entries[0].value;
    let asn1 = entrez_sim::asn1::print_entry("Seq-entry", entry);
    println!("— ASN.1 value notation (first entry) —\n{asn1}");
    let (name, reparsed) = entrez_sim::asn1::parse_entry(&asn1)?;
    assert_eq!(name, "Seq-entry");
    // ASN.1 value notation is schema-directed; without the schema, SET OF
    // and SEQUENCE OF are indistinguishable, so collections reparse as
    // lists. Scalars and structure are preserved exactly:
    assert_eq!(reparsed.project("organism"), entry.project("organism"));
    assert_eq!(
        reparsed.project("seq").and_then(|s| s.project("descr")),
        entry.project("seq").and_then(|s| s.project("descr")),
    );

    // ACE bulk-load: "we can generate such files with the existing
    // machinery of CPL by applying the appropriate output reformatting
    // routines."
    let mut ace = ace_sim::AceStore::new();
    for r in shaped.elements().unwrap() {
        let id = match r.project("id") {
            Some(Value::Str(s)) => s.to_string(),
            _ => continue,
        };
        let tags = vec![
            (
                "DNA".to_string(),
                vec![r.project("sequence").cloned().unwrap()],
            ),
            (
                "Title".to_string(),
                vec![r.project("description").cloned().unwrap()],
            ),
        ];
        ace.insert("Sequence", &id, tags)?;
    }
    let ace_text = ace_sim::print_ace(&ace);
    println!("— .ace bulk-load —\n{ace_text}");
    let reloaded = ace_sim::parse_ace(&ace_text)?;
    assert_eq!(reloaded.object_count(), ace.object_count());

    println!("all format round-trips verified");
    Ok(())
}
