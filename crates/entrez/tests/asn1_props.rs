//! Property test: ASN.1 value notation round-trips exactly for the
//! schema-less decodable fragment (collections as SEQUENCE OF / lists).

use entrez_sim::asn1::{parse_entry, parse_value, print_entry, print_value_string};
use kleisli_core::Value;
use proptest::prelude::*;

/// Values whose collections are lists (what schema-less ASN.1 notation can
/// represent losslessly) and whose records are non-empty.
fn asn_value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        (-10_000i64..10_000).prop_map(Value::Int),
        "[a-zA-Z0-9 .,;:()-]{0,16}".prop_map(Value::str),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = asn_value(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
        1 => proptest::collection::vec(("[a-z][a-z0-9-]{0,6}", inner.clone()), 1..4)
            .prop_map(Value::record_from),
        1 => ("[a-z][a-z0-9-]{0,6}", inner).prop_map(|(t, v)| Value::variant(t, v)),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_notation_roundtrip(v in asn_value(4)) {
        let text = print_value_string(&v);
        let back = parse_value(&text)
            .unwrap_or_else(|e| panic!("parse failed on {text}: {e}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn entry_roundtrip_keeps_the_type_name(v in asn_value(3)) {
        let text = print_entry("Seq-entry", &v);
        let (name, back) = parse_entry(&text).expect("entry parse");
        prop_assert_eq!(name, "Seq-entry");
        prop_assert_eq!(back, v);
    }
}
