//! Path extraction (Section 3 of the paper): "a terse description of
//! successive record projections, variant selections, and extractions of
//! elements from collections", applied **during the parse** of an ASN.1
//! value so that only the pruned result is shipped.
//!
//! Grammar: `[RootType] ('.' field | '..' tag)*`
//!
//! * `.field` projects a record field; applied to a collection it maps
//!   over the elements.
//! * `..tag` selects the payloads of variant elements carrying `tag`,
//!   dropping other tags — "a variant extraction for each element in the
//!   resulting set".
//!
//! The example from the paper: `Seq-entry.seq.id..giim`.

use kleisli_core::{KError, KResult, Value};

/// One path step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `.field`
    Field(String),
    /// `..tag`
    Tag(String),
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Path {
    pub steps: Vec<Step>,
}

impl Path {
    /// Parse a path expression. A leading bare identifier (no dot) names
    /// the root type and is ignored for navigation.
    pub fn parse(text: &str) -> KResult<Path> {
        let mut rest = text.trim();
        if rest.is_empty() {
            return Ok(Path::default());
        }
        // strip optional root type name
        if !rest.starts_with('.') {
            match rest.find('.') {
                Some(i) => rest = &rest[i..],
                None => return Ok(Path::default()), // just a root name
            }
        }
        let mut steps = Vec::new();
        let b = rest.as_bytes();
        let mut i = 0;
        while i < b.len() {
            if b[i] != b'.' {
                return Err(KError::format(
                    "path",
                    format!("expected '.' at byte {i} of '{text}'"),
                ));
            }
            let tag = b.get(i + 1) == Some(&b'.');
            i += if tag { 2 } else { 1 };
            let start = i;
            while i < b.len() && b[i] != b'.' {
                i += 1;
            }
            if start == i {
                return Err(KError::format(
                    "path",
                    format!("empty segment in '{text}'"),
                ));
            }
            let name = rest[start..i].to_string();
            steps.push(if tag { Step::Tag(name) } else { Step::Field(name) });
        }
        Ok(Path { steps })
    }

    /// Apply the path to a value. Collections are mapped over; `..tag`
    /// additionally filters to matching variants. Mapping over a
    /// collection flattens one level per step applied, matching the
    /// Entrez driver's behaviour of returning the set of extracted
    /// values.
    pub fn apply(&self, v: &Value) -> KResult<Value> {
        let mut cur = v.clone();
        for step in &self.steps {
            cur = apply_step(&cur, step)?;
        }
        Ok(cur)
    }
}

fn apply_step(v: &Value, step: &Step) -> KResult<Value> {
    match v {
        Value::Set(_) | Value::Bag(_) | Value::List(_) => {
            // map over elements, collecting into a set
            let mut out = Vec::new();
            for e in v.elements().expect("collection") {
                match apply_step(e, step) {
                    Ok(Value::Unit) => {} // dropped by a ..tag mismatch
                    Ok(r) => out.push(r),
                    Err(e) => return Err(e),
                }
            }
            Ok(Value::set(out))
        }
        Value::Record(r) => match step {
            Step::Field(f) => r.get(f).cloned().ok_or_else(|| {
                KError::format("path", format!("record has no field '{f}'"))
            }),
            Step::Tag(t) => Err(KError::format(
                "path",
                format!("'..{t}' applied to a record, expected a variant"),
            )),
        },
        Value::Variant(tag, inner) => match step {
            Step::Tag(t) if &**tag == t => Ok((**inner).clone()),
            Step::Tag(_) => Ok(Value::Unit), // dropped when inside a collection
            Step::Field(f) => Err(KError::format(
                "path",
                format!("'.{f}' applied to a variant, expected a record"),
            )),
        },
        other => Err(KError::format(
            "path",
            format!("path step applied to {}", other.kind_name()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Value {
        Value::record_from(vec![(
            "seq",
            Value::record_from(vec![(
                "id",
                Value::set(vec![
                    Value::variant("giim", Value::Int(117_246)),
                    Value::variant("accession", Value::str("M81409")),
                    Value::variant("giim", Value::Int(999)),
                ]),
            )]),
        )])
    }

    #[test]
    fn parses_the_papers_path() {
        let p = Path::parse("Seq-entry.seq.id..giim").unwrap();
        assert_eq!(
            p.steps,
            vec![
                Step::Field("seq".into()),
                Step::Field("id".into()),
                Step::Tag("giim".into())
            ]
        );
    }

    #[test]
    fn root_name_alone_is_identity() {
        let p = Path::parse("Seq-entry").unwrap();
        assert!(p.steps.is_empty());
        assert_eq!(p.apply(&entry()).unwrap(), entry());
    }

    #[test]
    fn applies_projections_and_variant_extraction() {
        let p = Path::parse("Seq-entry.seq.id..giim").unwrap();
        let got = p.apply(&entry()).unwrap();
        assert_eq!(got, Value::set(vec![Value::Int(117_246), Value::Int(999)]));
    }

    #[test]
    fn variant_mismatch_drops_elements() {
        let p = Path::parse(".seq.id..accession").unwrap();
        let got = p.apply(&entry()).unwrap();
        assert_eq!(got, Value::set(vec![Value::str("M81409")]));
    }

    #[test]
    fn missing_field_is_an_error() {
        let p = Path::parse(".nope").unwrap();
        assert!(p.apply(&entry()).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse(".seq..").is_err());
        assert!(Path::parse(".se q").is_ok()); // spaces allowed inside segment? no:
        // the above parses 'se q' as one segment name; navigation would just fail.
        assert!(Path::parse("...x").is_err());
    }

    #[test]
    fn pruning_reduces_size() {
        let p = Path::parse("Seq-entry.seq.id..giim").unwrap();
        let pruned = p.apply(&entry()).unwrap();
        assert!(pruned.approx_size() < entry().approx_size());
    }
}
