//! The Entrez boolean index-query language: "a simple syntax that uses
//! boolean combinations of index-value pairs" (Section 3).
//!
//! ```text
//! query := clause { ("AND" | "OR") clause }     (left-associative)
//! clause := "NOT" clause | "(" query ")" | field term
//! term  := word | "quoted string"
//! ```

use kleisli_core::{KError, KResult};

/// A parsed boolean query over index fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolQuery {
    Term { field: String, term: String },
    And(Box<BoolQuery>, Box<BoolQuery>),
    Or(Box<BoolQuery>, Box<BoolQuery>),
    Not(Box<BoolQuery>),
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    And,
    Or,
    Not,
    LParen,
    RParen,
    Eof,
}

fn lex(src: &str) -> KResult<Vec<Tok>> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'"' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(KError::format("entrez-query", "unterminated quote"));
                }
                out.push(Tok::Word(
                    String::from_utf8_lossy(&b[start..i]).into_owned(),
                ));
                i += 1;
            }
            _ => {
                let start = i;
                while i < b.len() && !b" \t\r\n()\"".contains(&b[i]) {
                    i += 1;
                }
                let w = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.push(match w.as_str() {
                    "AND" => Tok::And,
                    "OR" => Tok::Or,
                    "NOT" => Tok::Not,
                    _ => Tok::Word(w),
                });
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

/// Parse an Entrez boolean query.
pub fn parse(src: &str) -> KResult<BoolQuery> {
    let toks = lex(src)?;
    let mut pos = 0;
    let q = parse_query(&toks, &mut pos)?;
    if toks[pos] != Tok::Eof {
        return Err(KError::format(
            "entrez-query",
            format!("trailing input: {:?}", toks[pos]),
        ));
    }
    Ok(q)
}

fn parse_query(toks: &[Tok], pos: &mut usize) -> KResult<BoolQuery> {
    let mut lhs = parse_clause(toks, pos)?;
    loop {
        match &toks[*pos] {
            Tok::And => {
                *pos += 1;
                let rhs = parse_clause(toks, pos)?;
                lhs = BoolQuery::And(Box::new(lhs), Box::new(rhs));
            }
            Tok::Or => {
                *pos += 1;
                let rhs = parse_clause(toks, pos)?;
                lhs = BoolQuery::Or(Box::new(lhs), Box::new(rhs));
            }
            _ => return Ok(lhs),
        }
    }
}

fn parse_clause(toks: &[Tok], pos: &mut usize) -> KResult<BoolQuery> {
    match &toks[*pos] {
        Tok::Not => {
            *pos += 1;
            let inner = parse_clause(toks, pos)?;
            Ok(BoolQuery::Not(Box::new(inner)))
        }
        Tok::LParen => {
            *pos += 1;
            let q = parse_query(toks, pos)?;
            if toks[*pos] != Tok::RParen {
                return Err(KError::format("entrez-query", "expected ')'"));
            }
            *pos += 1;
            Ok(q)
        }
        Tok::Word(field) => {
            let field = field.clone();
            *pos += 1;
            match &toks[*pos] {
                Tok::Word(term) => {
                    let term = term.clone();
                    *pos += 1;
                    Ok(BoolQuery::Term { field, term })
                }
                other => Err(KError::format(
                    "entrez-query",
                    format!("expected a term after field '{field}', found {other:?}"),
                )),
            }
        }
        other => Err(KError::format(
            "entrez-query",
            format!("expected a clause, found {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_term() {
        assert_eq!(
            parse("accession M81409").unwrap(),
            BoolQuery::Term {
                field: "accession".into(),
                term: "M81409".into()
            }
        );
    }

    #[test]
    fn boolean_combinations_left_assoc() {
        let q = parse("organism human AND chromosome 22 OR organism mouse").unwrap();
        assert!(matches!(q, BoolQuery::Or(..)));
    }

    #[test]
    fn parens_and_not() {
        let q = parse("NOT (organism human OR organism mouse)").unwrap();
        assert!(matches!(q, BoolQuery::Not(inner) if matches!(*inner, BoolQuery::Or(..))));
    }

    #[test]
    fn quoted_terms() {
        let q = parse("title \"perforin gene\"").unwrap();
        assert_eq!(
            q,
            BoolQuery::Term {
                field: "title".into(),
                term: "perforin gene".into()
            }
        );
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("accession").is_err());
        assert!(parse("(a b").is_err());
        assert!(parse("a b extra AND").is_err());
        assert!(parse("title \"unterminated").is_err());
    }
}
