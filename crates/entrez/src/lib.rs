//! # entrez-sim
//!
//! A simulation of NCBI's Entrez retrieval system over GenBank, the ASN.1
//! data source of the paper:
//!
//! * [`asn1`] — ASN.1 value notation (print/parse) for the complex-object
//!   model;
//! * [`query`] — the boolean index-query language ("boolean combinations
//!   of index-value pairs");
//! * [`path`] — path extraction (`Seq-entry.seq.id..giim`) applied during
//!   the parse, the driver-side pruning of Section 3;
//! * [`server`] — the `Driver` with precomputed indexes, homology links
//!   (`NA-Links`), latency and traffic accounting.

pub mod asn1;
pub mod path;
pub mod query;
pub mod server;

pub use path::{Path, Step};
pub use query::BoolQuery;
pub use server::{Division, EntrezServer, Entry, Link};
