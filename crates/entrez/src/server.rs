//! The simulated Entrez information-retrieval server.
//!
//! Entrez circa 1995 offered exactly two operations, both reproduced here:
//! selection of whole ASN.1 values through **pre-computed indexes** ("a
//! simple syntax that uses boolean combinations of index-value pairs"), and
//! **pre-computed neighbor links** to similar sequences (`NA-Links` in the
//! paper). There is no server-side pruning — except the path extraction
//! the Penn group built into their driver, which this server applies
//! during the parse of each hit so only the pruned value crosses the wire.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use kleisli_core::driver::{BatchCompletion, BatchReply};
use kleisli_core::{
    blocks_of_rows, charged_blocks, BatchPolicy, BlockStream, Capabilities, Driver, DriverMetrics,
    DriverRequest, KError, KResult, LatencyModel, MetricsSnapshot, RequestHandle,
    ResiliencePolicy, SharedReply, Value, WorkerPool,
};

use crate::path::Path;
use crate::query::{self, BoolQuery};

/// One stored entry: a uid plus its ASN.1 value.
#[derive(Debug, Clone)]
pub struct Entry {
    pub uid: i64,
    pub value: Value,
}

/// A precomputed similarity link.
#[derive(Debug, Clone)]
pub struct Link {
    pub uid: i64,
    pub score: f64,
    pub organism: String,
}

/// One "division" (database) of the server, e.g. `na` for nucleic acids.
#[derive(Debug, Default)]
pub struct Division {
    entries: Vec<Entry>,
    by_uid: HashMap<i64, usize>,
    /// index field → term → entry positions
    indexes: HashMap<String, HashMap<String, BTreeSet<usize>>>,
    links: HashMap<i64, Vec<Link>>,
}

impl Division {
    /// Add an entry with its index terms: `(field, term)` pairs.
    pub fn add_entry(
        &mut self,
        uid: i64,
        value: Value,
        terms: impl IntoIterator<Item = (String, String)>,
    ) -> KResult<()> {
        if self.by_uid.contains_key(&uid) {
            return Err(KError::format("entrez", format!("duplicate uid {uid}")));
        }
        let pos = self.entries.len();
        self.entries.push(Entry { uid, value });
        self.by_uid.insert(uid, pos);
        for (field, term) in terms {
            self.indexes
                .entry(field)
                .or_default()
                .entry(term.to_lowercase())
                .or_default()
                .insert(pos);
        }
        Ok(())
    }

    pub fn add_link(&mut self, from: i64, link: Link) {
        self.links.entry(from).or_default().push(link);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn eval_query(&self, q: &BoolQuery) -> BTreeSet<usize> {
        match q {
            BoolQuery::Term { field, term } => self
                .indexes
                .get(field)
                .and_then(|ix| ix.get(&term.to_lowercase()))
                .cloned()
                .unwrap_or_default(),
            BoolQuery::And(a, b) => {
                let sa = self.eval_query(a);
                let sb = self.eval_query(b);
                sa.intersection(&sb).copied().collect()
            }
            BoolQuery::Or(a, b) => {
                let sa = self.eval_query(a);
                let sb = self.eval_query(b);
                sa.union(&sb).copied().collect()
            }
            BoolQuery::Not(a) => {
                let sa = self.eval_query(a);
                (0..self.entries.len()).filter(|i| !sa.contains(i)).collect()
            }
        }
    }
}

/// The Entrez server: named divisions plus latency/traffic accounting.
///
/// Two-phase driver: `submit` never blocks on the latency model, and the
/// paper's "say five" tolerated concurrent requests is enforced by the
/// server's worker pool (at most five request threads, reused across
/// requests). The worker that performed a request also prefetches up to
/// [`ENTREZ_PREFETCH_ROWS`] rows ahead of the consumer, pipelining the
/// per-row transfer latency.
pub struct EntrezServer {
    core: Arc<EntrezCore>,
    pool: WorkerPool,
}

/// Shared server state, `Arc`'d for the request workers.
struct EntrezCore {
    name: String,
    divisions: RwLock<HashMap<String, Division>>,
    latency: Arc<LatencyModel>,
    metrics: Arc<DriverMetrics>,
    /// Reachability knob: `false` simulates the wide-area link being
    /// down — requests fail with a retryable `KError::Transport` rather
    /// than a semantic driver error, so the resilience layer can retry
    /// them and the circuit breaker counts them against the source.
    available: AtomicBool,
}

/// The paper's example: an Entrez server tolerating ~5 requests at once.
const ENTREZ_CONCURRENT_REQUESTS: usize = 5;

/// The *ceiling* on rows a pool worker pulls ahead of the consumer per
/// request; the buffer's effective depth adapts between 0 and this to
/// the consumer's drain rate (`kleisli_core::pool`, "Adaptive depth").
/// ASN.1 entries are chunky; keep the ceiling small. Advertised only
/// when the server's latency model charges a per-row transfer cost —
/// with instant rows there is no latency to hide.
pub const ENTREZ_PREFETCH_ROWS: usize = 16;

/// Keys per batched wire round-trip: the multi-uid fetch ceiling the
/// server advertises in [`Capabilities::batching`]. A 32-uid link
/// workload costs two wire requests instead of thirty-two.
pub const ENTREZ_BATCH_KEYS: usize = 16;

impl EntrezServer {
    pub fn new(name: impl Into<String>, latency: LatencyModel) -> EntrezServer {
        let core = Arc::new(EntrezCore {
            name: name.into(),
            divisions: RwLock::new(HashMap::new()),
            latency: Arc::new(latency),
            metrics: Arc::new(DriverMetrics::default()),
            available: AtomicBool::new(true),
        });
        let pool = WorkerPool::new(
            "entrez",
            ENTREZ_CONCURRENT_REQUESTS,
            Some(Arc::clone(&core.metrics)),
        );
        EntrezServer { core, pool }
    }

    pub fn latency(&self) -> &Arc<LatencyModel> {
        &self.core.latency
    }

    /// Mutable access to a division for loading data.
    pub fn with_division<R>(&self, db: &str, f: impl FnOnce(&mut Division) -> R) -> R {
        let mut divs = self.core.divisions.write();
        f(divs.entry(db.to_string()).or_default())
    }

    /// Simulate the server (un)reachable: while `false`, every request
    /// fails with a retryable transport error. Fault injection for the
    /// resilience tests and benchmarks.
    pub fn set_available(&self, up: bool) {
        self.core.available.store(up, Ordering::Release);
    }
}

impl EntrezCore {
    fn perform(&self, req: &DriverRequest) -> KResult<BlockStream> {
        self.metrics.record_request();
        if !self.available.load(Ordering::Acquire) {
            return Err(KError::transport(&self.name, "connection refused"));
        }
        self.latency.charge_request();
        let rows = match req {
            DriverRequest::EntrezFetch { db, query, path } => self.fetch(db, query, path)?,
            DriverRequest::EntrezLinks { db, uid } => self.links(db, *uid)?,
            other => {
                return Err(KError::driver(
                    &self.name,
                    format!("unsupported request: {}", other.describe()),
                ))
            }
        };
        Ok(charged_blocks(
            rows,
            Arc::clone(&self.latency),
            Arc::clone(&self.metrics),
        ))
    }

    /// Multi-uid / multi-query fetch: one wire round-trip — one request
    /// charge, one availability check — answering every key. A key whose
    /// lookup fails semantically (unknown uid, bad query) yields that
    /// key's `Err` without poisoning its neighbours, exactly as the same
    /// request would fail on the per-key path.
    fn perform_batch(&self, reqs: &[DriverRequest]) -> KResult<BatchReply> {
        self.metrics.record_request();
        if !self.available.load(Ordering::Acquire) {
            return Err(KError::transport(&self.name, "connection refused"));
        }
        self.latency.charge_request();
        Ok(reqs
            .iter()
            .map(|req| {
                let rows = match req {
                    DriverRequest::EntrezFetch { db, query, path } => self.fetch(db, query, path),
                    DriverRequest::EntrezLinks { db, uid } => self.links(db, *uid),
                    other => Err(KError::driver(
                        &self.name,
                        format!("unsupported request: {}", other.describe()),
                    )),
                }?;
                // Transfer cost and row traffic accrue on the worker's
                // clock, just as the per-key path charges while shipping.
                Ok(SharedReply::materialize(charged_blocks(
                    rows,
                    Arc::clone(&self.latency),
                    Arc::clone(&self.metrics),
                )))
            })
            .collect())
    }

    fn fetch(&self, db: &str, query: &str, path: &Option<String>) -> KResult<Vec<Value>> {
        let parsed = query::parse(query)?;
        let path = match path {
            Some(p) => Some(Path::parse(p)?),
            None => None,
        };
        let divs = self.divisions.read();
        let division = divs
            .get(db)
            .ok_or_else(|| KError::driver(&self.name, format!("no division '{db}'")))?;
        let hits = division.eval_query(&parsed);
        let mut out = Vec::with_capacity(hits.len());
        for pos in hits {
            let entry = &division.entries[pos];
            // Path extraction during the "parse" of the hit: only the
            // pruned value is shipped (and counted) downstream.
            let v = match &path {
                Some(p) => p.apply(&entry.value)?,
                None => entry.value.clone(),
            };
            out.push(v);
        }
        Ok(out)
    }

    fn links(&self, db: &str, uid: i64) -> KResult<Vec<Value>> {
        let divs = self.divisions.read();
        let division = divs
            .get(db)
            .ok_or_else(|| KError::driver(&self.name, format!("no division '{db}'")))?;
        if !division.by_uid.contains_key(&uid) {
            return Err(KError::driver(
                &self.name,
                format!("no entry with uid {uid} in '{db}'"),
            ));
        }
        Ok(division
            .links
            .get(&uid)
            .map(|ls| {
                ls.iter()
                    .map(|l| {
                        Value::record_from(vec![
                            ("uid", Value::Int(l.uid)),
                            ("score", Value::Float(l.score)),
                            ("organism", Value::str(&l.organism)),
                        ])
                    })
                    .collect()
            })
            .unwrap_or_default())
    }
}

impl Driver for EntrezServer {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            sql: false,
            path_extraction: true,
            links: true,
            // the paper's example: a server tolerating ~5 requests at
            // once — enforced by this server's admission gate
            max_concurrent_requests: ENTREZ_CONCURRENT_REQUESTS,
            // 0 unless the latency model realizes a real per-row sleep:
            // prefetch pipelines wall-clock transfer latency only.
            prefetch_rows: self.core.latency.effective_prefetch(ENTREZ_PREFETCH_ROWS),
            // a remote source: advertise retry + circuit breaking
            resilience: ResiliencePolicy::standard(),
            // multi-uid fetch: the rewriter may fold a per-element link
            // loop into ceil(n/16) wire round-trips. The zero coalesce
            // window means sequential identical requests still pay their
            // own round-trips (concurrent ones share a flight).
            batching: Some(BatchPolicy {
                max_keys: ENTREZ_BATCH_KEYS,
                coalesce_window: Duration::ZERO,
            }),
        }
    }

    fn perform(&self, req: &DriverRequest) -> KResult<BlockStream> {
        self.core.perform(req)
    }

    fn submit(&self, req: &DriverRequest) -> KResult<RequestHandle> {
        let core = Arc::clone(&self.core);
        let req = req.clone();
        let prefetch = self.capabilities().prefetch_rows;
        Ok(self.pool.submit(prefetch, move || core.perform(&req)))
    }

    fn batch(&self, reqs: &[DriverRequest]) -> KResult<BatchReply> {
        self.core.perform_batch(reqs)
    }

    fn submit_batch(&self, reqs: Vec<DriverRequest>, complete: BatchCompletion) -> Option<RequestHandle> {
        let core = Arc::clone(&self.core);
        // One admission ticket for the whole wire request, regardless of
        // how many logical keys it answers.
        Some(self.pool.submit(0, move || {
            complete(core.perform_batch(&reqs));
            Ok(blocks_of_rows(Box::new(std::iter::empty())))
        }))
    }

    fn nonblocking_submit(&self) -> bool {
        true
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.core.metrics.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_value(acc: &str, giim: i64, org: &str) -> Value {
        Value::record_from(vec![
            (
                "seq",
                Value::record_from(vec![(
                    "id",
                    Value::set(vec![
                        Value::variant("giim", Value::Int(giim)),
                        Value::variant("accession", Value::str(acc)),
                    ]),
                )]),
            ),
            ("organism", Value::str(org)),
        ])
    }

    fn server() -> EntrezServer {
        let s = EntrezServer::new("GenBank", LatencyModel::instant());
        s.with_division("na", |d| {
            for (i, (acc, org)) in [
                ("M81409", "human"),
                ("X52127", "mouse"),
                ("U03862", "human"),
            ]
            .iter()
            .enumerate()
            {
                d.add_entry(
                    i as i64 + 100,
                    entry_value(acc, i as i64 + 100, org),
                    vec![
                        ("accession".to_string(), acc.to_string()),
                        ("organism".to_string(), org.to_string()),
                    ],
                )
                .unwrap();
            }
            d.add_link(
                100,
                Link {
                    uid: 101,
                    score: 0.92,
                    organism: "mouse".into(),
                },
            );
            d.add_link(
                100,
                Link {
                    uid: 102,
                    score: 0.88,
                    organism: "human".into(),
                },
            );
        });
        s
    }

    fn collect(s: &EntrezServer, req: &DriverRequest) -> Vec<Value> {
        // exercise the two-phase path: submit, then redeem the handle
        s.submit(req)
            .unwrap()
            .wait()
            .unwrap()
            .collect::<KResult<_>>()
            .unwrap()
    }

    #[test]
    fn index_lookup_by_accession() {
        let s = server();
        let rows = collect(
            &s,
            &DriverRequest::EntrezFetch {
                db: "na".into(),
                query: "accession M81409".into(),
                path: None,
            },
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].project("organism"), Some(&Value::str("human")));
    }

    #[test]
    fn boolean_queries() {
        let s = server();
        let fetch = |q: &str| {
            collect(
                &s,
                &DriverRequest::EntrezFetch {
                    db: "na".into(),
                    query: q.into(),
                    path: None,
                },
            )
            .len()
        };
        assert_eq!(fetch("organism human"), 2);
        assert_eq!(fetch("organism human AND accession M81409"), 1);
        assert_eq!(fetch("organism human OR organism mouse"), 3);
        assert_eq!(fetch("NOT organism human"), 1);
        assert_eq!(fetch("organism marsian"), 0);
    }

    #[test]
    fn path_extraction_prunes_shipped_bytes() {
        let s = server();
        let full = collect(
            &s,
            &DriverRequest::EntrezFetch {
                db: "na".into(),
                query: "accession M81409".into(),
                path: None,
            },
        );
        let full_bytes = s.metrics().bytes_shipped;
        s.reset_metrics();
        let pruned = collect(
            &s,
            &DriverRequest::EntrezFetch {
                db: "na".into(),
                query: "accession M81409".into(),
                path: Some("Seq-entry.seq.id..giim".into()),
            },
        );
        let pruned_bytes = s.metrics().bytes_shipped;
        assert_eq!(pruned, vec![Value::set(vec![Value::Int(100)])]);
        assert!(
            pruned_bytes < full_bytes / 2,
            "pruned {pruned_bytes} vs full {full_bytes}"
        );
        drop(full);
    }

    #[test]
    fn links_lookup() {
        let s = server();
        let links = collect(
            &s,
            &DriverRequest::EntrezLinks {
                db: "na".into(),
                uid: 100,
            },
        );
        assert_eq!(links.len(), 2);
        // entry with no links: empty, not an error
        let none = collect(
            &s,
            &DriverRequest::EntrezLinks {
                db: "na".into(),
                uid: 101,
            },
        );
        assert!(none.is_empty());
        // unknown uid: error (surfacing at wait, not at submission)
        assert!(s
            .submit(&DriverRequest::EntrezLinks {
                db: "na".into(),
                uid: 999
            })
            .unwrap()
            .wait()
            .is_err());
    }

    #[test]
    fn unknown_division_and_request_kind() {
        let s = server();
        assert!(s
            .perform(&DriverRequest::EntrezFetch {
                db: "protein".into(),
                query: "accession X".into(),
                path: None
            })
            .is_err());
        assert!(s
            .perform(&DriverRequest::TableScan {
                table: "t".into(),
                columns: None
            })
            .is_err());
    }
}
