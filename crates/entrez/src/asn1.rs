//! ASN.1 value notation, schema-less subset.
//!
//! NCBI's toolkit prints ASN.1 values in a text form like
//!
//! ```text
//! Seq-entry ::= {
//!   seq {
//!     id { giim : 117246, accession : "M81409" },
//!     descr "Human perforin gene",
//!     length 1200
//!   }
//! }
//! ```
//!
//! Real ASN.1 value notation is schema-directed (SET OF and SEQUENCE —
//! records — both print as braces); without the schema we disambiguate
//! syntactically: inside braces, `identifier <value>` pairs make a record,
//! `identifier : <value>` makes a CHOICE (variant), and bare values make a
//! SEQUENCE OF (decoded as a list). This matches how the simulator's data
//! is generated and round-trips exactly.

use std::sync::Arc;

use kleisli_core::{KError, KResult, Value};

/// Print a value in ASN.1 value notation with the given type name header.
pub fn print_entry(type_name: &str, v: &Value) -> String {
    let mut out = format!("{type_name} ::= ");
    print_value(&mut out, v);
    out.push('\n');
    out
}

/// Print a bare value (no `Type ::=` header).
pub fn print_value_string(v: &Value) -> String {
    let mut out = String::new();
    print_value(&mut out, v);
    out
}

fn print_value(out: &mut String, v: &Value) {
    match v {
        Value::Unit => out.push_str("NULL"),
        Value::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => out.push_str(&format!("{x:?}")),
        Value::Str(s) => {
            out.push('"');
            out.push_str(&s.replace('"', "\"\""));
            out.push('"');
        }
        Value::Record(r) => {
            out.push_str("{ ");
            for (i, (n, fv)) in r.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(n);
                out.push(' ');
                print_value(out, fv);
            }
            out.push_str(" }");
        }
        Value::Variant(tag, inner) => {
            out.push_str(tag);
            out.push_str(" : ");
            print_value(out, inner);
        }
        Value::Set(es) | Value::Bag(es) | Value::List(es) => {
            out.push_str("{ ");
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_value(out, e);
            }
            out.push_str(" }");
        }
        Value::Ref(o) => {
            out.push_str(&format!("ref {} {}", o.class, o.id));
        }
    }
}

/// Parse an entry of the form `TypeName ::= <value>`; returns the type
/// name and the value. Collections decode as **lists** (SEQUENCE OF).
pub fn parse_entry(text: &str) -> KResult<(String, Value)> {
    let mut p = P::new(text);
    p.ws();
    let name = p.type_name()?;
    p.ws();
    p.expect_str("::=")?;
    let v = p.value()?;
    p.ws();
    if !p.done() {
        return Err(p.err("trailing input after value"));
    }
    Ok((name, v))
}

/// Parse a bare ASN.1 value.
pub fn parse_value(text: &str) -> KResult<Value> {
    let mut p = P::new(text);
    let v = p.value()?;
    p.ws();
    if !p.done() {
        return Err(p.err("trailing input after value"));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn new(s: &'a str) -> P<'a> {
        P { b: s.as_bytes(), i: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> KError {
        KError::format("asn1", format!("{} (at byte {})", msg.into(), self.i))
    }

    fn done(&self) -> bool {
        self.i >= self.b.len()
    }

    fn ws(&mut self) {
        while self.i < self.b.len() {
            match self.b[self.i] {
                b' ' | b'\t' | b'\r' | b'\n' => self.i += 1,
                b'-' if self.b.get(self.i + 1) == Some(&b'-') => {
                    // ASN.1 comment: -- to end of line
                    while self.i < self.b.len() && self.b[self.i] != b'\n' {
                        self.i += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect_str(&mut self, s: &str) -> KResult<()> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn type_name(&mut self) -> KResult<String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'-' || c == b'_')
        {
            self.i += 1;
        }
        if start == self.i {
            return Err(self.err("expected a type name"));
        }
        Ok(std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| self.err("bad utf-8"))?
            .to_string())
    }

    fn ident(&mut self) -> Option<String> {
        let start = self.i;
        if !self
            .peek()
            .is_some_and(|c| c.is_ascii_lowercase() || c == b'_')
        {
            return None;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'-' || c == b'_')
        {
            self.i += 1;
        }
        Some(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    fn value(&mut self) -> KResult<Value> {
        self.ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'{') => self.braces(),
            Some(c) if c.is_ascii_digit() || c == b'-' => self.number(),
            Some(_) => {
                // keyword, variant, or (rejected) bare identifier
                let save = self.i;
                if self.b[self.i..].starts_with(b"TRUE") {
                    self.i += 4;
                    return Ok(Value::Bool(true));
                }
                if self.b[self.i..].starts_with(b"FALSE") {
                    self.i += 5;
                    return Ok(Value::Bool(false));
                }
                if self.b[self.i..].starts_with(b"NULL") {
                    self.i += 4;
                    return Ok(Value::Unit);
                }
                if self.b[self.i..].starts_with(b"ref ") {
                    self.i += 4;
                    self.ws();
                    let class = self.type_name()?;
                    self.ws();
                    let Value::Int(id) = self.number()? else {
                        return Err(self.err("expected object id"));
                    };
                    return Ok(Value::Ref(kleisli_core::Oid {
                        class: Arc::from(class.as_str()),
                        id: id as u64,
                    }));
                }
                match self.ident() {
                    Some(tag) => {
                        self.ws();
                        if self.peek() == Some(b':') {
                            self.i += 1;
                            let inner = self.value()?;
                            Ok(Value::Variant(Arc::from(tag.as_str()), Arc::new(inner)))
                        } else {
                            self.i = save;
                            Err(self.err(format!("bare identifier '{tag}'")))
                        }
                    }
                    None => Err(self.err("unexpected character")),
                }
            }
        }
    }

    fn string(&mut self) -> KResult<Arc<str>> {
        self.i += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') if self.b.get(self.i + 1) == Some(&b'"') => {
                    s.push('"');
                    self.i += 2;
                }
                Some(b'"') => {
                    self.i += 1;
                    return Ok(Arc::from(s.as_str()));
                }
                Some(c) => {
                    s.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    fn number(&mut self) -> KResult<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("utf-8"))?;
        if float {
            text.parse()
                .map(Value::Float)
                .map_err(|_| self.err(format!("bad float '{text}'")))
        } else {
            text.parse()
                .map(Value::Int)
                .map_err(|_| self.err(format!("bad int '{text}'")))
        }
    }

    /// `{ ... }` — record when entries look like `ident value`, variant
    /// payload lists otherwise (decoded as a list).
    fn braces(&mut self) -> KResult<Value> {
        self.i += 1; // {
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::list(vec![]));
        }
        // Lookahead: `ident <not-:>` starts a record field.
        let save = self.i;
        let is_record = match self.ident() {
            Some(_) => {
                self.ws();
                let c = self.peek();
                c != Some(b':') && c != Some(b',') && c != Some(b'}')
            }
            None => false,
        };
        self.i = save;
        if is_record {
            let mut fields = Vec::new();
            loop {
                self.ws();
                let name = self
                    .ident()
                    .ok_or_else(|| self.err("expected field name"))?;
                let v = self.value()?;
                fields.push((Arc::from(name.as_str()), v));
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Value::record(fields));
                    }
                    _ => return Err(self.err("expected ',' or '}' in record")),
                }
            }
        }
        let mut elems = Vec::new();
        loop {
            let v = self.value()?;
            elems.push(v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::list(elems));
                }
                _ => return Err(self.err("expected ',' or '}' in collection")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::record_from(vec![
            (
                "seq",
                Value::record_from(vec![
                    (
                        "id",
                        Value::list(vec![
                            Value::variant("giim", Value::Int(117_246)),
                            Value::variant("accession", Value::str("M81409")),
                        ]),
                    ),
                    ("descr", Value::str("Human perforin (PRF1) gene")),
                    ("length", Value::Int(1200)),
                ]),
            ),
            (
                "keywords",
                Value::list(vec![Value::str("Exons"), Value::str("Base Sequence")]),
            ),
        ])
    }

    #[test]
    fn roundtrip_entry() {
        let v = sample();
        let text = print_entry("Seq-entry", &v);
        let (name, back) = parse_entry(&text).unwrap();
        assert_eq!(name, "Seq-entry");
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Int(-5),
            Value::Bool(true),
            Value::Bool(false),
            Value::Unit,
            Value::str("with \"quotes\" inside"),
            Value::Float(2.5),
        ] {
            let text = print_value_string(&v);
            assert_eq!(parse_value(&text).unwrap(), v, "text: {text}");
        }
    }

    #[test]
    fn empty_braces_are_an_empty_list() {
        assert_eq!(parse_value("{ }").unwrap(), Value::list(vec![]));
    }

    #[test]
    fn variant_notation() {
        let v = Value::variant(
            "controlled",
            Value::variant("medline-jta", Value::str("J Immunol")),
        );
        let text = print_value_string(&v);
        assert_eq!(text, "controlled : medline-jta : \"J Immunol\"");
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn comments_are_skipped() {
        let v = parse_value("{ title \"x\", -- Medline journal title\n year 1989 }").unwrap();
        assert_eq!(v.project("year"), Some(&Value::Int(1989)));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_value("{ title }").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("{ 1, 2").is_err());
        assert!(parse_entry("Seq-entry = { }").is_err());
        assert!(parse_value("bare-ident").is_err());
    }

    #[test]
    fn object_references() {
        let v = Value::Ref(kleisli_core::Oid {
            class: Arc::from("Clone"),
            id: 9,
        });
        let text = print_value_string(&v);
        assert_eq!(parse_value(&text).unwrap(), v);
    }
}
