//! The eager evaluator for NRC.
//!
//! Kleisli's evaluation mechanism "is basically eager, with rules used to
//! introduce a limited amount of laziness in strategic places" (Section 4).
//! This module is the eager core; the strategic laziness lives in
//! [`crate::stream`], and the `ParExt` case below overlaps its
//! per-element driver round-trips by scheduling each chunk on the
//! context's shared [`kleisli_core::Executor`] — bounded by the plan's
//! `max_in_flight` on top of the executor's own worker limit, with no
//! per-chunk OS threads.

use std::collections::HashMap;
use std::sync::Arc;

use kleisli_core::{CollKind, KError, KResult, Value};
use nrc::{Expr, JoinStrategy, Prim};

use crate::context::{request_from_value, CacheLookup, Context};
use crate::env::{Env, Rt};
use crate::prims::apply_prim;

/// Evaluate a closed, collection- or value-producing expression.
pub fn eval(e: &Expr, env: &Env, ctx: &Context) -> KResult<Value> {
    eval_rt(e, env, ctx)?.into_value()
}

/// Evaluate, permitting a function result (used for `Apply` heads).
pub fn eval_rt(e: &Expr, env: &Env, ctx: &Context) -> KResult<Rt> {
    match e {
        Expr::Const(v) => Ok(Rt::Val(v.clone())),
        Expr::Var(n) => env
            .lookup(n)
            .cloned()
            .ok_or_else(|| KError::Unbound(n.to_string())),
        Expr::Let { var, def, body } => {
            let d = eval_rt(def, env, ctx)?;
            eval_rt(body, &env.bind(Arc::clone(var), d), ctx)
        }
        Expr::Lambda { var, body } => Ok(Rt::Closure {
            var: Arc::clone(var),
            body: Arc::clone(body),
            env: env.clone(),
        }),
        Expr::Apply(f, a) => {
            let fv = eval_rt(f, env, ctx)?;
            let av = eval_rt(a, env, ctx)?;
            match fv {
                Rt::Closure {
                    var,
                    body,
                    env: cenv,
                } => eval_rt(&body, &cenv.bind(var, av), ctx),
                Rt::Val(v) => Err(KError::eval(format!(
                    "cannot apply a non-function ({})",
                    v.kind_name()
                ))),
            }
        }
        Expr::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (n, fe) in fields {
                out.push((Arc::clone(n), eval(fe, env, ctx)?));
            }
            Ok(Rt::Val(Value::record(out)))
        }
        Expr::Proj(inner, field) => {
            let v = eval(inner, env, ctx)?;
            match &v {
                Value::Record(r) => r
                    .get(field)
                    .cloned()
                    .map(Rt::Val)
                    .ok_or_else(|| KError::eval(format!("record has no field '{field}': {v}"))),
                other => Err(KError::eval(format!(
                    "projection '.{field}' on non-record {}",
                    other.kind_name()
                ))),
            }
        }
        Expr::Inject(tag, inner) => Ok(Rt::Val(Value::Variant(
            Arc::clone(tag),
            Arc::new(eval(inner, env, ctx)?),
        ))),
        Expr::Case {
            scrutinee,
            arms,
            default,
        } => {
            let v = eval(scrutinee, env, ctx)?;
            let Value::Variant(tag, payload) = &v else {
                return Err(KError::eval(format!(
                    "case on non-variant {}",
                    v.kind_name()
                )));
            };
            for arm in arms {
                if arm.tag == *tag {
                    let env2 = env.bind(Arc::clone(&arm.var), Rt::Val((**payload).clone()));
                    return eval_rt(&arm.body, &env2, ctx);
                }
            }
            match default {
                Some(d) => eval_rt(d, env, ctx),
                None => Err(KError::eval(format!("no case arm for variant tag '{tag}'"))),
            }
        }
        Expr::Empty(kind) => Ok(Rt::Val(Value::empty(*kind))),
        Expr::Single(kind, inner) => Ok(Rt::Val(Value::collection(
            *kind,
            vec![eval(inner, env, ctx)?],
        ))),
        Expr::Union(kind, a, b) => {
            let va = eval(a, env, ctx)?;
            let vb = eval(b, env, ctx)?;
            union_values(*kind, va, vb)
        }
        Expr::Ext {
            kind,
            var,
            body,
            source,
        } => {
            let src = eval(source, env, ctx)?;
            let elems = any_coll_elems(&src, "comprehension generator")?;
            let mut out = Vec::new();
            for el in elems {
                let env2 = env.bind(Arc::clone(var), Rt::Val(el.clone()));
                let piece = eval(body, &env2, ctx)?;
                extend_from_piece(&mut out, &piece, *kind)?;
            }
            Ok(Rt::Val(Value::collection(*kind, out)))
        }
        Expr::If(c, t, f) => {
            let cv = eval(c, env, ctx)?;
            match cv {
                Value::Bool(true) => eval_rt(t, env, ctx),
                Value::Bool(false) => eval_rt(f, env, ctx),
                other => Err(KError::eval(format!(
                    "if condition must be bool, got {}",
                    other.kind_name()
                ))),
            }
        }
        Expr::Prim(p, args) => {
            // `and`/`or` short-circuit like the paper's examples expect.
            if *p == Prim::And || *p == Prim::Or {
                let a = eval(&args[0], env, ctx)?;
                if let Value::Bool(b) = a {
                    if (*p == Prim::And && !b) || (*p == Prim::Or && b) {
                        return Ok(Rt::Val(Value::Bool(b)));
                    }
                    return eval_rt(&args[1], env, ctx);
                }
                return Err(KError::eval(format!(
                    "'{p}' expects bool operands, got {}",
                    a.kind_name()
                )));
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env, ctx)?);
            }
            apply_prim(*p, &vals, ctx).map(Rt::Val)
        }
        Expr::RemoteApp { driver, arg } => {
            let argv = eval(arg, env, ctx)?;
            let req = request_from_value(&argv)?;
            run_remote(driver, &req, ctx)
        }
        Expr::Remote { driver, request } => run_remote(driver, request, ctx),
        Expr::Join {
            kind,
            strategy,
            left,
            right,
            lvar,
            rvar,
            left_key,
            right_key,
            cond,
            body,
        } => {
            let lv = eval(left, env, ctx)?;
            let rv = eval(right, env, ctx)?;
            let lelems = coll_elems(&lv, *kind, "join left")?;
            let relems = coll_elems(&rv, *kind, "join right")?;
            let mut out = Vec::new();
            match strategy {
                JoinStrategy::BlockedNl { block_size } => {
                    // Scan the inner relation once per block of outer
                    // elements (I/O pattern of [Kim 80]; in memory the
                    // result is identical to a nested loop). Equi-keys, if
                    // present, are folded into the condition.
                    let cond = match (left_key, right_key) {
                        (Some(lk), Some(rk)) => Expr::and_arc(
                            Arc::new(Expr::eq_arc(Arc::clone(lk), Arc::clone(rk))),
                            Arc::clone(cond),
                        ),
                        _ => (**cond).clone(),
                    };
                    let block = (*block_size).max(1);
                    for chunk in lelems.chunks(block) {
                        for r in relems {
                            for l in chunk {
                                emit_join_pair(
                                    l, r, lvar, rvar, &cond, body, *kind, env, ctx, &mut out,
                                )?;
                            }
                        }
                    }
                    if matches!(kind, CollKind::List) {
                        // Blocked scanning permutes list order; restore the
                        // nested-loop order for lists by sorting on the
                        // (outer, inner) indexes — cheap since we only use
                        // blocked joins on sets/bags in practice.
                        // (Handled by not blocking below.)
                    }
                }
                JoinStrategy::IndexedNl => {
                    // Build an index on the fly over the inner relation.
                    let rk = right_key
                        .as_ref()
                        .ok_or_else(|| KError::eval("indexed join without a right key"))?;
                    let lk = left_key
                        .as_ref()
                        .ok_or_else(|| KError::eval("indexed join without a left key"))?;
                    let mut index: HashMap<Value, Vec<&Value>> = HashMap::new();
                    for r in relems {
                        let env2 = env.bind(Arc::clone(rvar), Rt::Val(r.clone()));
                        let key = eval(rk, &env2, ctx)?;
                        index.entry(key).or_default().push(r);
                    }
                    for l in lelems {
                        let env2 = env.bind(Arc::clone(lvar), Rt::Val(l.clone()));
                        let key = eval(lk, &env2, ctx)?;
                        if let Some(matches) = index.get(&key) {
                            for r in matches {
                                emit_join_pair(
                                    l, r, lvar, rvar, cond, body, *kind, env, ctx, &mut out,
                                )?;
                            }
                        }
                    }
                }
            }
            Ok(Rt::Val(Value::collection(*kind, out)))
        }
        Expr::Cached { id, expr } => match ctx.cache_cell(*id).lookup_or_begin() {
            CacheLookup::Hit(v) => Ok(Rt::Val(v)),
            CacheLookup::Miss(ticket) => {
                // Single-flight: concurrent evaluators of the same id
                // block in lookup_or_begin until this commit (or until
                // the ticket is dropped by `?` on an Err, which aborts
                // and lets one of them retry).
                let v = eval(expr, env, ctx)?;
                ticket.commit(v.clone());
                Ok(Rt::Val(v))
            }
            // This thread is already populating this id higher up the
            // stack; evaluate without the cache to avoid self-deadlock.
            CacheLookup::Reentrant => Ok(Rt::Val(eval(expr, env, ctx)?)),
        },
        Expr::ParExt {
            kind,
            var,
            body,
            source,
            max_in_flight,
            batch,
        } => {
            let src = eval(source, env, ctx)?;
            let elems = any_coll_elems(&src, "parallel generator")?;
            // Fold the loop's per-element requests into batched wire
            // round-trips before the body runs; the guard keeps the
            // seeded flights answerable for the whole loop.
            let _seeds = batch
                .as_ref()
                .and_then(|spec| warm_up_batch(spec, elems, var, env, ctx));
            let pieces = eval_parallel(elems, var, body, env, ctx, *max_in_flight)?;
            let mut out = Vec::new();
            for piece in &pieces {
                extend_from_piece(&mut out, piece, *kind)?;
            }
            Ok(Rt::Val(Value::collection(*kind, out)))
        }
    }
}

/// The batching warm-up for a marked `ParExt`: evaluate the spec's
/// request argument for every source element (it is pure-local by the
/// optimizer's construction, so this duplicates no driver effects),
/// and ship the distinct requests as a few multi-key wire round-trips
/// via [`Context::submit_batch`]. Any surprise — an argument that fails
/// to evaluate, a non-request value, too few distinct keys, a driver
/// without batching — skips the warm-up entirely and returns `None`:
/// the per-element path then behaves exactly as unbatched, surfacing
/// its own errors in their usual place.
pub(crate) fn warm_up_batch(
    spec: &nrc::BatchSpec,
    elems: &[Value],
    var: &nrc::Name,
    env: &Env,
    ctx: &Context,
) -> Option<crate::context::BatchGuard> {
    if elems.len() < spec.min_keys.max(1) {
        return None;
    }
    let mut reqs = Vec::with_capacity(elems.len());
    for el in elems {
        let env2 = env.bind(Arc::clone(var), Rt::Val(el.clone()));
        let v = eval(&spec.arg, &env2, ctx).ok()?;
        reqs.push(request_from_value(&v).ok()?);
    }
    let mut distinct = 0usize;
    for (i, r) in reqs.iter().enumerate() {
        if !reqs[..i].contains(r) {
            distinct += 1;
        }
    }
    if distinct < spec.min_keys.max(1) {
        return None;
    }
    ctx.submit_batch(&spec.driver, &reqs).ok().flatten()
}

/// Evaluate `body` for every element of `elems`, at most `max_in_flight`
/// at a time, preserving element order in the result. This is the
/// parallel-retrieval primitive of Section 4 ("Laziness, Latency, and
/// Concurrency"): requests to remote servers overlap, but no more than the
/// server's tolerated number run at once.
///
/// Each chunk runs as a batch on the context's shared
/// [`kleisli_core::Executor`] — tasks own cheap clones of the body
/// `Arc`, the environment, and the context handle, so no OS thread is
/// ever created per element. The submitting thread helps drain its own
/// batch, which both caps in-flight work at `max_in_flight` and keeps
/// nested parallel loops deadlock-free on the bounded pool (see
/// `kleisli_core::executor`). A task that panics surfaces as an
/// evaluation error, and an error stops later chunks from being
/// submitted at all.
pub fn eval_parallel(
    elems: &[Value],
    var: &nrc::Name,
    body: &Arc<Expr>,
    env: &Env,
    ctx: &Context,
    max_in_flight: usize,
) -> KResult<Vec<Value>> {
    let width = max_in_flight.max(1);
    if width == 1 || elems.len() <= 1 {
        return elems
            .iter()
            .map(|el| eval(body, &env.bind(Arc::clone(var), Rt::Val(el.clone())), ctx))
            .collect();
    }
    let mut out = Vec::with_capacity(elems.len());
    for chunk in elems.chunks(width) {
        let tasks: Vec<Box<dyn FnOnce() -> KResult<Value> + Send>> = chunk
            .iter()
            .map(|el| {
                let env2 = env.bind(Arc::clone(var), Rt::Val(el.clone()));
                let body = Arc::clone(body);
                let ctx = ctx.clone();
                Box::new(move || eval(&body, &env2, &ctx))
                    as Box<dyn FnOnce() -> KResult<Value> + Send>
            })
            .collect();
        for r in ctx.executor().run_all(tasks) {
            out.push(r.unwrap_or_else(|| Err(KError::eval("worker thread panicked")))?);
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)] // one slot per join-clause binding
fn emit_join_pair(
    l: &Value,
    r: &Value,
    lvar: &nrc::Name,
    rvar: &nrc::Name,
    cond: &Expr,
    body: &Expr,
    kind: CollKind,
    env: &Env,
    ctx: &Context,
    out: &mut Vec<Value>,
) -> KResult<()> {
    let env2 = env
        .bind(Arc::clone(lvar), Rt::Val(l.clone()))
        .bind(Arc::clone(rvar), Rt::Val(r.clone()));
    match eval(cond, &env2, ctx)? {
        Value::Bool(true) => {
            let piece = eval(body, &env2, ctx)?;
            extend_from_piece(out, &piece, kind)
        }
        Value::Bool(false) => Ok(()),
        other => Err(KError::eval(format!(
            "join condition must be bool, got {}",
            other.kind_name()
        ))),
    }
}

fn run_remote(driver: &str, req: &kleisli_core::DriverRequest, ctx: &Context) -> KResult<Rt> {
    // Submit-then-wait: the eager evaluator is the blocking consumer of
    // the two-phase driver API (overlap lives in the streaming executor).
    // The wait enforces the driver's resilience policy and the query
    // deadline; the drain re-checks the budget at block boundaries so a
    // mid-stream stall resolves as Timeout, not a hang.
    let mut stream = ctx.submit_resilient(driver, req)?.wait()?;
    let mut out = Vec::new();
    while let Some(block) = stream.next_block(kleisli_core::DEFAULT_BLOCK_ROWS) {
        ctx.check_budget()?;
        for item in block.into_rows() {
            out.push(item?);
        }
    }
    Ok(Rt::Val(Value::set(out)))
}

/// Elements of *any* collection kind. CPL generators may draw from a
/// collection of a different kind than the comprehension produces (the
/// paper: "x <- p.authors matches elements of a list rather than elements
/// of a set").
fn any_coll_elems<'a>(v: &'a Value, what: &str) -> KResult<&'a [Value]> {
    v.elements().ok_or_else(|| {
        KError::eval(format!(
            "{what}: expected a collection, got {}",
            v.kind_name()
        ))
    })
}

fn coll_elems<'a>(v: &'a Value, kind: CollKind, what: &str) -> KResult<&'a [Value]> {
    match v.coll_kind() {
        Some(k) if k == kind => Ok(v.elements().expect("collection")),
        Some(k) => Err(KError::eval(format!(
            "{what}: expected a {}, got a {}",
            kind.name(),
            k.name()
        ))),
        None => Err(KError::eval(format!(
            "{what}: expected a {}, got {}",
            kind.name(),
            v.kind_name()
        ))),
    }
}

fn extend_from_piece(out: &mut Vec<Value>, piece: &Value, kind: CollKind) -> KResult<()> {
    match piece.coll_kind() {
        Some(k) if k == kind => {
            out.extend_from_slice(piece.elements().expect("collection"));
            Ok(())
        }
        _ => Err(KError::eval(format!(
            "comprehension body must produce a {}, got {}",
            kind.name(),
            piece.kind_name()
        ))),
    }
}

fn union_values(kind: CollKind, a: Value, b: Value) -> KResult<Rt> {
    let ea = coll_elems(&a, kind, "union")?;
    let eb = coll_elems(&b, kind, "union")?;
    let mut out = Vec::with_capacity(ea.len() + eb.len());
    out.extend_from_slice(ea);
    out.extend_from_slice(eb);
    Ok(Rt::Val(Value::collection(kind, out)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpl::{desugar, parse_expr, Definitions};

    fn run_with(src: &str, defs: &Definitions) -> KResult<Value> {
        let ast = parse_expr(src).expect("parse");
        let e = desugar(&ast, defs)?;
        eval(&e, &Env::empty(), &Context::new())
    }

    fn publications() -> Value {
        let p = |title: &str, year: i64, authors: Vec<&str>, journal: Value, kw: Vec<&str>| {
            Value::record_from(vec![
                ("title", Value::str(title)),
                ("year", Value::Int(year)),
                (
                    "authors",
                    Value::list(
                        authors
                            .into_iter()
                            .map(|a| {
                                Value::record_from(vec![
                                    ("name", Value::str(a)),
                                    ("initial", Value::str("X")),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("journal", journal),
                (
                    "keywd",
                    Value::set(kw.into_iter().map(Value::str).collect()),
                ),
            ])
        };
        Value::set(vec![
            p(
                "Structure of the human perforin gene",
                1989,
                vec!["Lichtenheld", "Podack"],
                Value::variant(
                    "controlled",
                    Value::variant("medline-jta", Value::str("J Immunol")),
                ),
                vec!["Exons", "Base Sequence"],
            ),
            p(
                "A second paper",
                1988,
                vec!["Smith"],
                Value::variant("uncontrolled", Value::str("Ad Hoc Reviews")),
                vec!["Exons"],
            ),
        ])
    }

    fn pub_defs() -> Definitions {
        let mut defs = Definitions::new();
        defs.insert_value("DB", publications());
        defs
    }

    #[test]
    fn paper_title_authors_projection() {
        let v = run_with(
            r"{[title = p.title, authors = p.authors] | \p <- DB}",
            &pub_defs(),
        )
        .unwrap();
        assert_eq!(v.len(), Some(2));
        let first = &v.elements().unwrap()[0];
        assert!(first.project("title").is_some());
        assert!(first.project("authors").is_some());
        assert!(first.project("year").is_none());
    }

    #[test]
    fn paper_pattern_and_filter_equivalence() {
        let a = run_with(
            r"{[title = t] | [title = \t, year = \y, ...] <- DB, y = 1988}",
            &pub_defs(),
        )
        .unwrap();
        let b = run_with(
            r"{[title = t] | [title = \t, year = 1988, ...] <- DB}",
            &pub_defs(),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), Some(1));
    }

    #[test]
    fn paper_flatten_keywords() {
        let v = run_with(
            r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}",
            &pub_defs(),
        )
        .unwrap();
        assert_eq!(v.len(), Some(3));
    }

    #[test]
    fn paper_keyword_inversion() {
        let v = run_with(
            r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] | \y <- DB, \k <- y.keywd}",
            &pub_defs(),
        )
        .unwrap();
        // keywords: Exons (2 titles), Base Sequence (1 title)
        assert_eq!(v.len(), Some(2));
        let exons = v
            .elements()
            .unwrap()
            .iter()
            .find(|e| e.project("keyword") == Some(&Value::str("Exons")))
            .unwrap();
        assert_eq!(exons.project("titles").unwrap().len(), Some(2));
    }

    #[test]
    fn paper_uncontrolled_journals() {
        let v = run_with(
            r"{[name = n, title = t] | [title = \t, journal = <uncontrolled = \n>, ...] <- DB}",
            &pub_defs(),
        )
        .unwrap();
        assert_eq!(v.len(), Some(1));
        assert_eq!(
            v.elements().unwrap()[0].project("name"),
            Some(&Value::str("Ad Hoc Reviews"))
        );
    }

    #[test]
    fn paper_jname_function() {
        let src = r#"
            define jname ==
                <uncontrolled = \s> => s
              | <controlled = <medline-jta = \s>> => s
              | <controlled = <iso-jta = \s>> => s
              | <controlled = <journal-title = \s>> => s
              | <controlled = <issn = \s>> => s;
            {[title = t, name = jname(v)] | [title = \t, journal = \v, ...] <- DB};
        "#;
        let stmts = cpl::parse_program(src).unwrap();
        let mut defs = pub_defs();
        let mut result = None;
        for s in &stmts {
            if let Some(e) = cpl::desugar_stmt(s, &mut defs).unwrap() {
                result = Some(eval(&e, &Env::empty(), &Context::new()).unwrap());
            }
        }
        let v = result.unwrap();
        assert_eq!(v.len(), Some(2));
        let names: Vec<_> = v
            .elements()
            .unwrap()
            .iter()
            .map(|e| e.project("name").unwrap().clone())
            .collect();
        assert!(names.contains(&Value::str("J Immunol")));
        assert!(names.contains(&Value::str("Ad Hoc Reviews")));
    }

    #[test]
    fn papers_of_membership() {
        let src = r#"
            define papers-of == \x => {p.title | \p <- DB, x <- p.authors};
            papers-of([name = "Smith", initial = "X"]);
        "#;
        let stmts = cpl::parse_program(src).unwrap();
        let mut defs = pub_defs();
        let mut result = None;
        for s in &stmts {
            if let Some(e) = cpl::desugar_stmt(s, &mut defs).unwrap() {
                result = Some(eval(&e, &Env::empty(), &Context::new()).unwrap());
            }
        }
        assert_eq!(
            result.unwrap(),
            Value::set(vec![Value::str("A second paper")])
        );
    }

    #[test]
    fn bag_comprehension_keeps_duplicates() {
        let mut defs = Definitions::new();
        defs.insert_value(
            "B",
            Value::bag(vec![Value::Int(1), Value::Int(1), Value::Int(2)]),
        );
        let v = run_with(r"{| x * 10 | \x <- B |}", &defs).unwrap();
        assert_eq!(
            v,
            Value::bag(vec![Value::Int(10), Value::Int(10), Value::Int(20)])
        );
    }

    #[test]
    fn list_comprehension_preserves_order() {
        let mut defs = Definitions::new();
        defs.insert_value(
            "L",
            Value::list(vec![Value::Int(3), Value::Int(1), Value::Int(2)]),
        );
        let v = run_with(r"[| x + 1 | \x <- L |]", &defs).unwrap();
        assert_eq!(
            v,
            Value::list(vec![Value::Int(4), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn aggregates_and_conditionals() {
        let defs = pub_defs();
        let v = run_with(r"sum({y | [year = \y, ...] <- DB})", &defs).unwrap();
        assert_eq!(v, Value::Int(1989 + 1988));
        let v = run_with(r#"if count(DB) = 2 then "two" else "other""#, &defs).unwrap();
        assert_eq!(v, Value::str("two"));
    }

    #[test]
    fn join_strategies_agree_with_nested_loops() {
        use nrc::name;
        let mk_set = |range: std::ops::Range<i64>, f: fn(i64) -> i64| {
            Value::set(
                range
                    .map(|i| {
                        Value::record_from(vec![("k", Value::Int(f(i))), ("v", Value::Int(i))])
                    })
                    .collect(),
            )
        };
        let left = mk_set(0..30, |i| i % 7);
        let right = mk_set(0..20, |i| i % 5);
        // reference: nested-loop comprehension
        let mut defs = Definitions::new();
        defs.insert_value("L", left.clone());
        defs.insert_value("R", right.clone());
        let reference =
            run_with(r"{[a = l.v, b = r.v] | \l <- L, \r <- R, l.k = r.k}", &defs).unwrap();

        let body = Expr::single(
            CollKind::Set,
            Expr::record(vec![
                ("a", Expr::proj(Expr::var("l"), "v")),
                ("b", Expr::proj(Expr::var("r"), "v")),
            ]),
        );
        for strategy in [
            JoinStrategy::BlockedNl { block_size: 4 },
            JoinStrategy::IndexedNl,
        ] {
            let e = Expr::Join {
                kind: CollKind::Set,
                strategy: strategy.clone(),
                left: Arc::new(Expr::Const(left.clone())),
                right: Arc::new(Expr::Const(right.clone())),
                lvar: name("l"),
                rvar: name("r"),
                left_key: Some(Arc::new(Expr::proj(Expr::var("l"), "k"))),
                right_key: Some(Arc::new(Expr::proj(Expr::var("r"), "k"))),
                cond: Arc::new(Expr::eq(
                    Expr::proj(Expr::var("l"), "k"),
                    Expr::proj(Expr::var("r"), "k"),
                )),
                body: Arc::new(body.clone()),
            };
            let got = eval(&e, &Env::empty(), &Context::new()).unwrap();
            assert_eq!(got, reference, "strategy {strategy:?}");
        }
    }

    #[test]
    fn cached_node_memoizes() {
        let ctx = Context::new();
        let inner = Expr::single(CollKind::Set, Expr::int(1));
        let e = Expr::Cached {
            id: 99,
            expr: Arc::new(inner),
        };
        let v1 = eval(&e, &Env::empty(), &ctx).unwrap();
        ctx.cache_put(99, Value::set(vec![Value::Int(42)])); // prove it reads the cache
        let v2 = eval(&e, &Env::empty(), &ctx).unwrap();
        assert_eq!(v1, Value::set(vec![Value::Int(1)]));
        assert_eq!(v2, Value::set(vec![Value::Int(42)]));
    }

    #[test]
    fn par_ext_matches_sequential() {
        use nrc::name;
        let src = Value::set((0..50).map(Value::Int).collect());
        let body = Expr::single(
            CollKind::Set,
            Expr::prim(Prim::Mul, vec![Expr::var("x"), Expr::int(3)]),
        );
        let seq = Expr::Ext {
            kind: CollKind::Set,
            var: name("x"),
            body: Arc::new(body.clone()),
            source: Arc::new(Expr::Const(src.clone())),
        };
        let par = Expr::ParExt {
            kind: CollKind::Set,
            var: name("x"),
            body: Arc::new(body),
            source: Arc::new(Expr::Const(src)),
            max_in_flight: 8,
            batch: None,
        };
        let ctx = Context::new();
        assert_eq!(
            eval(&seq, &Env::empty(), &ctx).unwrap(),
            eval(&par, &Env::empty(), &ctx).unwrap()
        );
    }

    #[test]
    fn par_ext_preserves_list_order() {
        use nrc::name;
        let src = Value::list((0..20).rev().map(Value::Int).collect());
        let body = Expr::single(CollKind::List, Expr::var("x"));
        let par = Expr::ParExt {
            kind: CollKind::List,
            var: name("x"),
            body: Arc::new(body),
            source: Arc::new(Expr::Const(src.clone())),
            max_in_flight: 4,
            batch: None,
        };
        let got = eval(&par, &Env::empty(), &Context::new()).unwrap();
        assert_eq!(got, src);
    }

    #[test]
    fn runtime_errors_are_reported() {
        let defs = Definitions::new();
        assert!(run_with("1 / 0", &defs).is_err());
        assert!(run_with("[a = 1].b", &defs).is_err());
        assert!(run_with("if 3 then 1 else 2", &defs).is_err());
    }

    #[test]
    fn mixed_kind_union_is_an_error() {
        let e = Expr::union(
            CollKind::Set,
            Expr::Const(Value::set(vec![])),
            Expr::Const(Value::list(vec![])),
        );
        assert!(eval(&e, &Env::empty(), &Context::new()).is_err());
    }
}
