//! Runtime environments and runtime results.
//!
//! Function values exist only transiently during evaluation (CPL data is
//! first-order), so the evaluator's result type [`Rt`] separates closures
//! from data values instead of extending [`Value`].

use std::sync::Arc;

use kleisli_core::{KError, KResult, Value};
use nrc::{Expr, Name};

/// A runtime result: a data value or a closure.
#[derive(Debug, Clone)]
pub enum Rt {
    Val(Value),
    Closure {
        var: Name,
        body: Arc<Expr>,
        env: Env,
    },
}

impl Rt {
    /// Extract a data value; closures are not first-class data.
    pub fn into_value(self) -> KResult<Value> {
        match self {
            Rt::Val(v) => Ok(v),
            Rt::Closure { .. } => Err(KError::eval(
                "a function escaped into a data position; functions are not data in CPL",
            )),
        }
    }
}

impl From<Value> for Rt {
    fn from(v: Value) -> Rt {
        Rt::Val(v)
    }
}

/// A persistent environment (linked list with cheap clones).
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Arc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Name,
    value: Rt,
    next: Env,
}

impl Env {
    pub fn empty() -> Env {
        Env(None)
    }

    /// A new environment with `name` bound to `value`.
    pub fn bind(&self, name: Name, value: Rt) -> Env {
        Env(Some(Arc::new(EnvNode {
            name,
            value,
            next: self.clone(),
        })))
    }

    /// Resolve a variable. After desugaring, a binder and its use sites
    /// share one `Name` allocation (`Arc<str>`), so the common case is the
    /// `Arc::ptr_eq` hit — one pointer comparison per frame, no character
    /// scan. The string comparison remains as the correctness fallback for
    /// names built independently (e.g. hand-assembled plans in tests).
    pub fn lookup(&self, name: &Name) -> Option<&Rt> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if Arc::ptr_eq(&node.name, name) || node.name == *name {
                return Some(&node.value);
            }
            cur = &node.next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_shadow() {
        let x: Name = Arc::from("x");
        let e = Env::empty();
        assert!(e.lookup(&x).is_none());
        let e1 = e.bind(Arc::clone(&x), Rt::Val(Value::Int(1)));
        let e2 = e1.bind(Arc::clone(&x), Rt::Val(Value::Int(2)));
        match e2.lookup(&x) {
            Some(Rt::Val(Value::Int(2))) => {}
            other => panic!("unexpected {other:?}"),
        }
        // the original env is unchanged
        match e1.lookup(&x) {
            Some(Rt::Val(Value::Int(1))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lookup_matches_by_content_even_without_shared_allocation() {
        // Two distinct `Arc<str>` allocations with equal contents must
        // still resolve — the ptr_eq fast path is an optimization only.
        let binder: Name = Arc::from("variable");
        let use_site: Name = Arc::from("variable");
        assert!(!Arc::ptr_eq(&binder, &use_site));
        let env = Env::empty().bind(binder, Rt::Val(Value::Int(7)));
        match env.lookup(&use_site) {
            Some(Rt::Val(Value::Int(7))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn closures_are_not_data() {
        let c = Rt::Closure {
            var: Arc::from("x"),
            body: Arc::new(Expr::var("x")),
            env: Env::empty(),
        };
        assert!(c.into_value().is_err());
        assert!(Rt::Val(Value::Unit).into_value().is_ok());
    }
}
