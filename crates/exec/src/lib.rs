//! # kleisli-exec
//!
//! Query execution for the Kleisli reproduction:
//!
//! * [`mod@eval`] — the eager recursive evaluator, including the two local
//!   join operators of Section 4 (blocked nested-loop and indexed blocked
//!   nested-loop with an on-the-fly index), subquery caching, and the
//!   bounded-concurrency parallel retrieval primitive.
//! * [`stream`] — the pipelined executor providing the paper's strategic
//!   laziness: `first_n` produces initial output without materializing
//!   the full result.
//! * [`context`] — the driver registry, object store, and subquery cache.
//! * [`result_cache`] — the process-wide memory-accounted single-flight
//!   result cache shared by multi-session deployments (`kleislid`).
//! * [`mod@env`] — runtime environments and closures.

pub mod context;
pub mod env;
pub mod eval;
pub mod prims;
pub mod result_cache;
pub mod stream;

pub use context::{
    request_from_value, BatchGuard, CacheCell, CacheLookup, Context, ObjectStore, PopulateTicket,
};
pub use env::{Env, Rt};
pub use eval::{eval, eval_rt};
pub use result_cache::{
    ResultCache, ResultCacheStats, ResultLookup, ResultTicket, DEFAULT_RESULT_CACHE_BUDGET,
};
pub use stream::{
    collect_blocks, collect_stream, eval_blocks, eval_stream, first_n, first_n_distinct, RowStream,
};
