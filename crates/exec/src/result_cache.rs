//! A process-wide, memory-accounted, single-flight result cache.
//!
//! [`ResultCache`] maps 64-bit keys — in practice `nrc::hash::plan_hash`
//! digests of optimized plans or subplans — to computed [`Value`]s. It is
//! the cross-*session* counterpart of the per-query [`CacheCell`] slots
//! in [`crate::context::Context`]: many sessions (for example, the
//! connections of a `kleislid` server) share one `Arc<ResultCache>`, so a
//! thousand clients issuing the same GenBank query evaluate it **once**
//! and everyone else is served from memory.
//!
//! Three properties, each load-bearing for the server deployment:
//!
//! * **Single-flight population.** Each entry is a [`CacheCell`]: the
//!   first looker-up becomes the populator and receives a
//!   [`ResultTicket`]; concurrent lookers-up for the same key block until
//!   the populator commits, then read the committed value. A populator
//!   that gives up (error, cancellation — its ticket dropped without
//!   commit) wakes the waiters and the *next* one becomes the populator:
//!   an abandoned flight never poisons the cell.
//! * **Memory accounting.** Committed values are sized with
//!   [`Value::approx_bytes`] and charged against a configurable byte
//!   budget. A commit that pushes the total over budget evicts
//!   least-recently-used *committed* entries until the total fits again
//!   (in-flight entries are never evicted — their size is unknown and
//!   evicting them would duplicate the very work the cache exists to
//!   share). A single value larger than the whole budget is served to its
//!   waiters but not retained.
//! * **Observability.** [`ResultCache::stats`] exposes hits, misses,
//!   evictions, entry count, resident bytes, and the high-water mark
//!   (`peak_bytes`) — the server's STATS frame and the `server_report`
//!   bench assert `peak_bytes <= budget` from it.
//!
//! Entries may additionally be **tagged with source names**
//! ([`ResultCache::lookup_or_begin_tagged`]): the drivers the cached
//! plan read from. [`ResultCache::flush_source`] then drops exactly the
//! entries derived from a refreshed source and bumps that source's
//! invalidation generation ([`ResultCache::generation`]) — the
//! result-side half of the wire-level FLUSH verb. An in-flight
//! population of a flushed key is detached rather than aborted: its
//! populator commits into the detached cell (waiters already parked
//! there still wake), while post-flush lookups of the same key start a
//! fresh flight against the refreshed source.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

use kleisli_core::Value;

use crate::context::{CacheCell, CacheLookup, PopulateTicket};

/// Default byte budget for a [`ResultCache`]: 64 MiB.
pub const DEFAULT_RESULT_CACHE_BUDGET: u64 = 64 * 1024 * 1024;

/// Observability counters for a [`ResultCache`]; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultCacheStats {
    /// Lookups served from a committed entry (including lookups that
    /// waited out another session's in-flight population).
    pub hits: u64,
    /// Lookups that found no committed entry and became the populator.
    pub misses: u64,
    /// Committed entries dropped to fit the byte budget.
    pub evictions: u64,
    /// Entries dropped by [`ResultCache::flush_source`] (deliberate
    /// invalidation — counted separately from `evictions`).
    pub flushes: u64,
    /// Committed entries currently resident (in-flight populations are
    /// not counted — an abandoned flight leaves nothing behind).
    pub entries: usize,
    /// Bytes currently charged by committed entries.
    pub bytes: u64,
    /// High-water mark of `bytes` over the cache's lifetime. The budget
    /// is enforced at commit time, so this never exceeds `budget` (the
    /// bench asserts it).
    pub peak_bytes: u64,
    /// The configured byte budget.
    pub budget: u64,
}

/// One cache slot plus its accounting metadata.
struct Entry {
    cell: Arc<CacheCell>,
    /// Bytes charged for the committed value; `None` while in flight.
    bytes: Option<u64>,
    /// Source names the cached plan reads from (empty for untagged
    /// entries); what [`ResultCache::flush_source`] matches against.
    deps: Vec<Arc<str>>,
    /// Monotone use tick for LRU eviction.
    last_used: u64,
    /// Commit sequence number (`0` while in flight): distinguishes one
    /// committed generation of this key from a later re-commit after
    /// eviction, so derived caches (e.g. the server's serialized-frame
    /// cache) can validate their copies without comparing values.
    seq: u64,
}

struct CacheMap {
    entries: HashMap<u64, Entry>,
    /// Total bytes of committed entries.
    bytes: u64,
    /// Monotone lookup counter feeding `Entry::last_used`.
    tick: u64,
    /// Monotone commit counter feeding `Entry::seq`.
    commits: u64,
    /// Per-source invalidation generations: bumped by `flush_source`,
    /// never reset. Sources never flushed are implicitly at generation 0.
    generations: HashMap<Arc<str>, u64>,
}

/// The shared cache; see the module docs. Construct with
/// [`ResultCache::new`] and share via `Arc`.
pub struct ResultCache {
    map: StdMutex<CacheMap>,
    budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushes: AtomicU64,
    peak_bytes: AtomicU64,
}

/// Outcome of [`ResultCache::lookup_or_begin`].
pub enum ResultLookup {
    /// A committed value (possibly after waiting out another populator).
    Hit(Value),
    /// The caller is the populator: compute the value and
    /// [`ResultTicket::commit`] it (dropping the ticket without
    /// committing aborts, waking waiters to retry).
    Miss(ResultTicket),
    /// The calling thread is already populating this key further up its
    /// own stack (see [`CacheLookup::Reentrant`]); compute without
    /// touching the cache.
    Reentrant,
}

/// Exclusive permission to populate one [`ResultCache`] entry. Commit
/// publishes the value to every waiter *and* charges it against the
/// cache's byte budget; dropping without commit releases the claim.
pub struct ResultTicket {
    cache: Arc<ResultCache>,
    key: u64,
    inner: PopulateTicket,
}

impl ResultCache {
    /// A cache enforcing the given byte budget (`0` disables retention:
    /// every commit is immediately evicted, so the cache degenerates to
    /// pure single-flight deduplication of concurrent identical work).
    pub fn new(budget: u64) -> Arc<ResultCache> {
        Arc::new(ResultCache {
            map: StdMutex::new(CacheMap {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
                commits: 0,
                generations: HashMap::new(),
            }),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        })
    }

    /// A cache with the [`DEFAULT_RESULT_CACHE_BUDGET`].
    pub fn with_default_budget() -> Arc<ResultCache> {
        ResultCache::new(DEFAULT_RESULT_CACHE_BUDGET)
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Read the committed value for `key`, or acquire the right to
    /// compute it. Blocks while another session's population of the same
    /// key is in flight (single-flight: the work runs once process-wide).
    pub fn lookup_or_begin(self: &Arc<Self>, key: u64) -> ResultLookup {
        self.lookup_or_begin_tagged(key, &[])
    }

    /// [`ResultCache::lookup_or_begin`] with source tags: `deps` names
    /// the drivers the plan behind `key` reads from, so a later
    /// [`ResultCache::flush_source`] of any of them invalidates this
    /// entry. Tags are recorded when the entry is created; identical
    /// keys are identical plans, so re-lookups carry the same tags.
    pub fn lookup_or_begin_tagged(self: &Arc<Self>, key: u64, deps: &[Arc<str>]) -> ResultLookup {
        let cell = {
            let mut map = self.lock_map();
            map.tick += 1;
            let tick = map.tick;
            let entry = map.entries.entry(key).or_insert_with(|| Entry {
                cell: Arc::new(CacheCell::default()),
                bytes: None,
                deps: deps.to_vec(),
                last_used: 0,
                seq: 0,
            });
            entry.last_used = tick;
            Arc::clone(&entry.cell)
        };
        // The map lock is released before the (potentially blocking)
        // cell lookup: a waiter parked on one key must not hold up
        // lookups of every other key.
        match cell.lookup_or_begin() {
            CacheLookup::Hit(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ResultLookup::Hit(v)
            }
            CacheLookup::Miss(inner) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                ResultLookup::Miss(ResultTicket {
                    cache: Arc::clone(self),
                    key,
                    inner,
                })
            }
            CacheLookup::Reentrant => ResultLookup::Reentrant,
        }
    }

    /// Non-blocking read of a committed value: counts a hit and
    /// refreshes the entry's LRU position on success, returns `None`
    /// (counting nothing) when the key is absent or still in flight.
    /// The server's warm fast path serves from this without claiming a
    /// populate ticket.
    pub fn get(&self, key: u64) -> Option<Value> {
        let cell = {
            let mut map = self.lock_map();
            map.tick += 1;
            let tick = map.tick;
            let entry = map.entries.get_mut(&key)?;
            entry.last_used = tick;
            Arc::clone(&entry.cell)
        };
        let v = cell.peek()?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(v)
    }

    /// Like [`ResultCache::get`] but returning only the entry's commit
    /// sequence — enough for a derived cache holding its own copy (the
    /// server's serialized-response cache) to validate that copy without
    /// cloning the value. Counts a hit and refreshes the LRU position;
    /// `None` while absent or in flight.
    pub fn get_seq(&self, key: u64) -> Option<u64> {
        let mut map = self.lock_map();
        map.tick += 1;
        let tick = map.tick;
        let entry = map.entries.get_mut(&key)?;
        if entry.seq == 0 {
            return None;
        }
        entry.last_used = tick;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.seq)
    }

    /// The committed value for `key`, if any, without claiming
    /// population (non-blocking; testing/inspection — no counters or
    /// LRU refresh; see [`ResultCache::get`] for the counted variant).
    pub fn peek(&self, key: u64) -> Option<Value> {
        let cell = {
            let map = self.lock_map();
            map.entries.get(&key).map(|e| Arc::clone(&e.cell))?
        };
        cell.peek()
    }

    /// Point-in-time counters; see [`ResultCacheStats`].
    pub fn stats(&self) -> ResultCacheStats {
        let map = self.lock_map();
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            entries: map.entries.values().filter(|e| e.bytes.is_some()).count(),
            bytes: map.bytes,
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            budget: self.budget,
        }
    }

    /// Drop every entry (counters are kept). In-flight populations keep
    /// their cells alive through their own `Arc`s and commit into the
    /// detached cell — waiters already parked on it still wake — but the
    /// committed value is no longer reachable from the cache.
    pub fn clear(&self) {
        let mut map = self.lock_map();
        map.entries.clear();
        map.bytes = 0;
    }

    /// Drop every entry tagged with `source` and bump that source's
    /// invalidation generation. Returns the keys of the dropped entries
    /// so a derived cache (the server's serialized-response cache) can
    /// prune its copies. Committed entries release their bytes and count
    /// toward the `flushes` stat; in-flight entries are detached like
    /// [`ResultCache::clear`] does — the populator commits into the
    /// detached cell, post-flush lookups start fresh.
    pub fn flush_source(&self, source: &str) -> Vec<u64> {
        let mut map = self.lock_map();
        let keys: Vec<u64> = map
            .entries
            .iter()
            .filter(|(_, e)| e.deps.iter().any(|d| &**d == source))
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            if let Some(e) = map.entries.remove(k) {
                map.bytes -= e.bytes.unwrap_or(0);
            }
        }
        self.flushes.fetch_add(keys.len() as u64, Ordering::Relaxed);
        *map.generations.entry(Arc::from(source)).or_insert(0) += 1;
        keys
    }

    /// The invalidation generation of `source`: 0 until the first
    /// [`ResultCache::flush_source`], then +1 per flush.
    pub fn generation(&self, source: &str) -> u64 {
        self.lock_map()
            .generations
            .get(source)
            .copied()
            .unwrap_or(0)
    }

    fn lock_map(&self) -> std::sync::MutexGuard<'_, CacheMap> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Charge a freshly committed value and evict LRU committed entries
    /// until the budget holds again. Called *after* the value is
    /// published to the cell, so waiters are never delayed by eviction.
    /// `cell` is the cell the commit actually populated: if a `clear` or
    /// `flush_source` detached that flight and a new entry was since
    /// created under the same key, the identities differ and nothing is
    /// charged — the stale value lives only in the detached cell.
    fn account_commit(&self, key: u64, bytes: u64, cell: &Arc<CacheCell>) {
        let mut map = self.lock_map();
        map.commits += 1;
        let seq = map.commits;
        if let Some(entry) = map.entries.get_mut(&key) {
            if !Arc::ptr_eq(&entry.cell, cell) {
                return;
            }
            entry.bytes = Some(bytes);
            entry.seq = seq;
            map.bytes += bytes;
        } else {
            // A racing `clear`/`flush_source` detached the entry; there
            // is nothing to charge.
            return;
        }
        // Evict oldest committed entries (never the one just committed —
        // its waiters are being served from it right now) until we fit.
        while map.bytes > self.budget {
            let victim = map
                .entries
                .iter()
                .filter(|(k, e)| **k != key && e.bytes.is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = map.entries.remove(&k) {
                        map.bytes -= e.bytes.unwrap_or(0);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => {
                    // Only the fresh entry remains and it alone exceeds
                    // the budget: serve it, do not retain it.
                    if let Some(e) = map.entries.remove(&key) {
                        map.bytes -= e.bytes.unwrap_or(0);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
            }
        }
        // The high-water mark is taken after eviction: the budget is a
        // cap on *resident* bytes, and eviction runs under the same lock
        // as the charge, so no reader ever observes an over-budget total.
        self.peak_bytes.fetch_max(map.bytes, Ordering::Relaxed);
    }
}

impl ResultTicket {
    /// Publish `v` to every waiter and charge it against the budget.
    pub fn commit(self, v: Value) {
        let bytes = v.approx_bytes();
        let cache = Arc::clone(&self.cache);
        let key = self.key;
        let cell = Arc::clone(self.inner.cell());
        // Publish first (wakes waiters), account second (may evict).
        self.inner.commit(v);
        cache.account_commit(key, bytes, &cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn vint(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn hit_after_commit() {
        let cache = ResultCache::new(1 << 20);
        match cache.lookup_or_begin(1) {
            ResultLookup::Miss(t) => t.commit(vint(42)),
            _ => panic!("fresh key must miss"),
        }
        match cache.lookup_or_begin(1) {
            ResultLookup::Hit(v) => assert_eq!(v, vint(42)),
            _ => panic!("committed key must hit"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.bytes > 0 && s.bytes <= s.budget);
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let cache = ResultCache::new(1 << 20);
        let populators = std::sync::atomic::AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match cache.lookup_or_begin(7) {
                    ResultLookup::Miss(t) => {
                        populators.fetch_add(1, Ordering::SeqCst);
                        thread::sleep(Duration::from_millis(10));
                        t.commit(vint(7));
                    }
                    ResultLookup::Hit(v) => assert_eq!(v, vint(7)),
                    ResultLookup::Reentrant => panic!("distinct threads"),
                });
            }
        });
        assert_eq!(populators.load(Ordering::SeqCst), 1, "exactly one flight");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn abandoned_flight_does_not_poison() {
        let cache = ResultCache::new(1 << 20);
        match cache.lookup_or_begin(3) {
            ResultLookup::Miss(t) => drop(t), // populator gives up
            _ => panic!("fresh key must miss"),
        }
        // The next looker-up becomes the populator and can commit.
        match cache.lookup_or_begin(3) {
            ResultLookup::Miss(t) => t.commit(vint(3)),
            _ => panic!("abandoned key must miss again, not hang or hit"),
        }
        assert_eq!(cache.peek(3), Some(vint(3)));
    }

    #[test]
    fn budget_evicts_lru_and_caps_resident_bytes() {
        let one_entry = vint(0).approx_bytes();
        // Room for exactly two committed scalars.
        let cache = ResultCache::new(one_entry * 2);
        for key in 0..5u64 {
            match cache.lookup_or_begin(key) {
                ResultLookup::Miss(t) => t.commit(vint(key as i64)),
                _ => panic!("fresh keys must miss"),
            }
            let s = cache.stats();
            assert!(
                s.bytes <= s.budget,
                "resident bytes {} exceed budget {}",
                s.bytes,
                s.budget
            );
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 3, "three LRU victims");
        assert!(s.peak_bytes <= s.budget);
        // The most recent entries survive; the oldest are gone.
        assert_eq!(cache.peek(4), Some(vint(4)));
        assert_eq!(cache.peek(0), None);
    }

    #[test]
    fn oversize_value_is_served_but_not_retained() {
        let cache = ResultCache::new(8); // smaller than any Value node
        match cache.lookup_or_begin(9) {
            ResultLookup::Miss(t) => t.commit(vint(9)),
            _ => panic!("fresh key must miss"),
        }
        assert_eq!(cache.peek(9), None, "oversize entry not retained");
        let s = cache.stats();
        assert_eq!(s.bytes, 0);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn lru_is_refreshed_by_hits() {
        let one_entry = vint(0).approx_bytes();
        let cache = ResultCache::new(one_entry * 2);
        for key in [1u64, 2] {
            match cache.lookup_or_begin(key) {
                ResultLookup::Miss(t) => t.commit(vint(key as i64)),
                _ => panic!("miss expected"),
            }
        }
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(matches!(cache.lookup_or_begin(1), ResultLookup::Hit(_)));
        match cache.lookup_or_begin(3) {
            ResultLookup::Miss(t) => t.commit(vint(3)),
            _ => panic!("miss expected"),
        }
        assert_eq!(cache.peek(1), Some(vint(1)), "recently used survives");
        assert_eq!(cache.peek(2), None, "LRU evicted");
    }

    fn tag(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn flush_source_drops_exactly_tagged_entries() {
        let cache = ResultCache::new(1 << 20);
        for (key, deps) in [(1u64, vec![tag("A")]), (2, vec![tag("A"), tag("B")]), (3, vec![tag("B")])] {
            match cache.lookup_or_begin_tagged(key, &deps) {
                ResultLookup::Miss(t) => t.commit(vint(key as i64)),
                _ => panic!("fresh keys must miss"),
            }
        }
        let before = cache.stats().bytes;
        assert_eq!(cache.generation("A"), 0);

        let mut flushed = cache.flush_source("A");
        flushed.sort_unstable();
        assert_eq!(flushed, vec![1, 2], "exactly the A-tagged keys");
        assert_eq!(cache.generation("A"), 1);
        assert_eq!(cache.generation("B"), 0);
        assert_eq!(cache.peek(1), None);
        assert_eq!(cache.peek(2), None);
        assert_eq!(cache.peek(3), Some(vint(3)), "B-only entry survives");
        let s = cache.stats();
        assert_eq!(s.flushes, 2);
        assert_eq!(s.evictions, 0, "flushes are not evictions");
        assert!(s.bytes < before, "flushed bytes released");
    }

    #[test]
    fn inflight_flush_detaches_without_poisoning_or_double_charging() {
        let cache = ResultCache::new(1 << 20);
        let deps = [tag("A")];
        let stale = match cache.lookup_or_begin_tagged(4, &deps) {
            ResultLookup::Miss(t) => t,
            _ => panic!("fresh key must miss"),
        };
        cache.flush_source("A");
        // A post-flush lookup starts a fresh flight against the
        // refreshed source...
        let fresh = match cache.lookup_or_begin_tagged(4, &deps) {
            ResultLookup::Miss(t) => t,
            _ => panic!("flushed key must miss again"),
        };
        // ...and the stale populator's late commit lands in the
        // detached cell: it must not charge bytes against (or publish
        // into) the fresh entry.
        stale.commit(vint(-1));
        assert_eq!(cache.peek(4), None, "stale value not reachable");
        assert_eq!(cache.stats().bytes, 0, "stale commit not charged");
        fresh.commit(vint(44));
        assert_eq!(cache.peek(4), Some(vint(44)));
    }

    #[test]
    fn zero_budget_still_deduplicates_in_flight() {
        let cache = ResultCache::new(0);
        match cache.lookup_or_begin(5) {
            ResultLookup::Miss(t) => t.commit(vint(5)),
            _ => panic!("miss expected"),
        }
        // Nothing retained, so the next lookup misses again.
        assert!(matches!(cache.lookup_or_begin(5), ResultLookup::Miss(_)));
        assert_eq!(cache.stats().bytes, 0);
    }
}
