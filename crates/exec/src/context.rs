//! Execution context: the driver registry, the object store used by
//! `deref`, the subquery cache, and the compute executor query
//! evaluation runs on.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, ThreadId};
use std::time::Instant;

use parking_lot::Mutex;

use kleisli_core::batch::{request_key, Flight};
use kleisli_core::resilience::{CancelToken, DriverResilience, ResiliencePolicy, ResilientHandle};
use kleisli_core::{
    DriverRef, DriverRequest, Executor, KError, KResult, MetricsSnapshot, Oid, Value,
};

/// A memoization slot for one `Cached { id }` subquery, with *single-
/// flight* population: the first evaluator to find the slot empty becomes
/// the populator (it receives a [`PopulateTicket`]); everyone else blocks
/// until the populator commits a value or gives up, then re-checks. This
/// is what makes a cached subquery under a parallel generator (`ParExt`)
/// run exactly once, no matter how many worker threads race to it.
///
/// Unlike the previous `Mutex<Option<Value>>` design, the slot is *not*
/// held locked while the value is computed — the populator owns a ticket
/// it can carry into a lazy stream, so the streaming executor can yield
/// cached rows as they arrive and commit the canonical collection only
/// when the stream is exhausted. An abandoned ticket (dropped without
/// commit — the consumer stopped early, or evaluation failed) wakes the
/// waiters and leaves the slot empty for the next evaluator to retry.
///
/// Built on `std::sync` (the vendored `parking_lot` stub has no condvar).
#[derive(Default)]
pub struct CacheCell {
    state: StdMutex<CellState>,
    cv: Condvar,
}

#[derive(Default)]
struct CellState {
    value: Option<Value>,
    /// The thread currently populating, if any.
    populating: Option<ThreadId>,
}

/// Outcome of [`CacheCell::lookup_or_begin`].
pub enum CacheLookup {
    /// The slot is populated; here is the value.
    Hit(Value),
    /// The slot is empty and the caller is now the populator: evaluate the
    /// subquery and [`PopulateTicket::commit`] the result (dropping the
    /// ticket without committing aborts and lets someone else retry).
    Miss(PopulateTicket),
    /// The calling thread is *already* populating this very cell further
    /// up its own evaluation (a re-entrant lookup through the same cached
    /// subquery). Waiting would self-deadlock; the caller must evaluate
    /// the subquery directly without touching the cache.
    Reentrant,
}

/// Exclusive permission to populate a [`CacheCell`]; see there.
pub struct PopulateTicket {
    cell: Arc<CacheCell>,
    committed: bool,
}

impl CacheCell {
    /// Read the value or acquire the right to compute it; blocks while
    /// another thread is populating. See [`CacheLookup`].
    pub fn lookup_or_begin(self: &Arc<Self>) -> CacheLookup {
        let me = thread::current().id();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = &st.value {
                return CacheLookup::Hit(v.clone());
            }
            match st.populating {
                None => {
                    st.populating = Some(me);
                    return CacheLookup::Miss(PopulateTicket {
                        cell: Arc::clone(self),
                        committed: false,
                    });
                }
                Some(owner) if owner == me => return CacheLookup::Reentrant,
                Some(_) => {
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// The current value, if populated (non-blocking; testing/inspection).
    pub fn peek(&self) -> Option<Value> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .value
            .clone()
    }

    /// Store a value directly, releasing any in-flight population claim.
    pub fn put(&self, v: Value) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.value = Some(v);
        st.populating = None;
        drop(st);
        self.cv.notify_all();
    }
}

impl PopulateTicket {
    /// Publish the computed value and wake every waiter.
    pub fn commit(mut self, v: Value) {
        self.committed = true;
        self.cell.put(v);
    }

    /// The cell this ticket populates — the result cache compares it by
    /// identity at commit time to avoid charging a detached flight's
    /// bytes against a newer entry under the same key.
    pub(crate) fn cell(&self) -> &Arc<CacheCell> {
        &self.cell
    }
}

impl Drop for PopulateTicket {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        // Abort: release the claim so a waiter (or a later evaluator)
        // can try again; the slot stays empty.
        let mut st = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        st.populating = None;
        drop(st);
        self.cell.cv.notify_all();
    }
}

/// Resolves object references for sources with object identity (ACE).
/// CPL can dereference but never create or update references.
pub trait ObjectStore: Send + Sync {
    fn deref(&self, oid: &Oid) -> KResult<Value>;
}

/// Everything the evaluators need besides the expression itself.
///
/// A `Context` is a cheap handle (one `Arc` bump to clone) over shared
/// registry state, so the parallel evaluators can hand owned copies to
/// executor tasks. Registration (`register_driver` /
/// `register_object_store`) requires the handle to be *uniquely* owned
/// — register every source before cloning the context or sharing it
/// with in-flight queries, exactly the discipline `kleisli::Session`
/// already enforces at its own `Arc<Context>` layer.
#[derive(Clone)]
pub struct Context {
    inner: Arc<CtxInner>,
    /// Per-query latency budget: remote waits and row-boundary checks
    /// resolve `KError::Timeout` past this instant. Carried *outside*
    /// the shared inner so one query's deadline never leaks into
    /// another's clone of the same registry.
    deadline: Option<Instant>,
    /// Per-query cooperative cancellation; see [`CancelToken`].
    cancel: Option<Arc<CancelToken>>,
}

struct CtxInner {
    drivers: HashMap<String, DriverRef>,
    /// Per-driver resilience state (policy, breaker, RTT estimator,
    /// resilience counters), built at registration from the driver's
    /// advertised `Capabilities::resilience` and replaced wholesale by
    /// [`Context::set_resilience_policy`].
    resilience: HashMap<String, Arc<DriverResilience>>,
    object_stores: Vec<Arc<dyn ObjectStore>>,
    cache: Mutex<HashMap<u64, Arc<CacheCell>>>,
    /// Flights pre-seeded by [`Context::submit_batch`] (the `ParExt`
    /// warm-up), keyed by request hash. [`Context::submit_resilient`]
    /// answers a matching request by attaching to the seeded flight —
    /// even after it resolved, which is what guarantees the per-element
    /// loop body observes the batched reply instead of issuing its own
    /// round-trip. Entries live exactly as long as their
    /// [`BatchGuard`].
    batch_seeds: Mutex<HashMap<u64, Vec<Arc<Flight>>>>,
    /// The compute pool `ParExt` chunks (and the session's query
    /// workers) run on.
    executor: Arc<Executor>,
}

impl Default for Context {
    fn default() -> Context {
        Context::new()
    }
}

impl Context {
    /// A context running its compute tasks on the process-wide
    /// [`Executor::shared`] pool.
    pub fn new() -> Context {
        Context::with_executor(Executor::shared())
    }

    /// A context running its compute tasks on a caller-supplied
    /// executor — for embedders that want their own sizing, and for
    /// tests that assert on worker counts in isolation.
    pub fn with_executor(executor: Arc<Executor>) -> Context {
        Context {
            inner: Arc::new(CtxInner {
                drivers: HashMap::new(),
                resilience: HashMap::new(),
                object_stores: Vec::new(),
                cache: Mutex::new(HashMap::new()),
                batch_seeds: Mutex::new(HashMap::new()),
                executor,
            }),
            deadline: None,
            cancel: None,
        }
    }

    /// The compute executor query evaluation and `ParExt` chunks are
    /// scheduled on.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.inner.executor
    }

    fn inner_mut(&mut self) -> &mut CtxInner {
        Arc::get_mut(&mut self.inner)
            .expect("context must be uniquely owned while registering sources")
    }

    /// Register a driver under its own name. Its advertised
    /// `Capabilities::resilience` becomes the driver's effective policy
    /// until [`Context::set_resilience_policy`] overrides it.
    pub fn register_driver(&mut self, driver: DriverRef) {
        let name = driver.name().to_string();
        let caps = driver.capabilities();
        let inner = self.inner_mut();
        inner.resilience.insert(
            name.clone(),
            Arc::new(DriverResilience::with_batching(
                &name,
                caps.resilience,
                caps.batching,
            )),
        );
        inner.drivers.insert(name, driver);
    }

    /// Replace a registered driver's resilience policy (session-level
    /// override of the driver's advertisement). Resets that driver's
    /// breaker, RTT estimate, and resilience counters. Requires the
    /// context to be uniquely owned, like registration.
    pub fn set_resilience_policy(&mut self, name: &str, policy: ResiliencePolicy) -> KResult<()> {
        let inner = self.inner_mut();
        let Some(driver) = inner.drivers.get(name) else {
            return Err(KError::driver(name, "no such driver registered"));
        };
        // Keep the driver's advertised batching window across policy
        // swaps — the override replaces *resilience*, not coalescing.
        let batching = driver.capabilities().batching;
        inner.resilience.insert(
            name.to_string(),
            Arc::new(DriverResilience::with_batching(name, policy, batching)),
        );
        Ok(())
    }

    /// Register an object store consulted by `deref`.
    pub fn register_object_store(&mut self, store: Arc<dyn ObjectStore>) {
        self.inner_mut().object_stores.push(store);
    }

    /// Look up a registered driver by name.
    pub fn driver(&self, name: &str) -> KResult<&DriverRef> {
        self.inner
            .drivers
            .get(name)
            .ok_or_else(|| KError::driver(name, "no such driver registered"))
    }

    /// Every registered driver, in no particular order.
    pub fn drivers(&self) -> impl Iterator<Item = &DriverRef> {
        self.inner.drivers.values()
    }

    /// A clone of this context whose remote waits and row-boundary
    /// checks observe `deadline` (an existing tighter deadline wins).
    pub fn with_deadline(&self, deadline: Instant) -> Context {
        let mut c = self.clone();
        c.deadline = Some(match c.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        c
    }

    /// A clone of this context whose remote waits abort promptly when
    /// `token` is cancelled.
    pub fn with_cancel_token(&self, token: Arc<CancelToken>) -> Context {
        let mut c = self.clone();
        c.cancel = Some(token);
        c
    }

    /// The query deadline this clone carries, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The cancellation token this clone carries, if any.
    pub fn cancel_token(&self) -> Option<&Arc<CancelToken>> {
        self.cancel.as_ref()
    }

    /// The row-boundary budget check: `Err(KError::Cancelled)` once the
    /// token fires, `Err(KError::Timeout)` once the deadline passes.
    /// Evaluators call this between rows so a query over a stalled
    /// stream resolves at the next row boundary instead of hanging.
    pub fn check_budget(&self) -> KResult<()> {
        if let Some(t) = &self.cancel {
            if t.is_cancelled() {
                return Err(KError::cancelled("query cancelled"));
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(KError::timeout("query", "deadline exceeded at row boundary"));
            }
        }
        Ok(())
    }

    /// The resilience state for a registered driver.
    pub fn resilience(&self, name: &str) -> Option<&Arc<DriverResilience>> {
        self.inner.resilience.get(name)
    }

    /// Submit a request through the driver's resilience layer: breaker
    /// admission, the context's deadline (tightened by the policy's own),
    /// and the context's cancellation token all apply; retry and hedging
    /// run when the returned handle is redeemed.
    pub fn submit_resilient(&self, name: &str, req: &DriverRequest) -> KResult<ResilientHandle> {
        let driver = self.driver(name)?;
        let res = self
            .inner
            .resilience
            .get(name)
            .ok_or_else(|| KError::driver(name, "no resilience state registered"))?;
        // A flight pre-seeded by a batch warm-up answers this request
        // even if it already resolved (the seed table outlives the
        // coalescing window for exactly the span of the loop).
        if req.coalescable() {
            let seeds = self.inner.batch_seeds.lock();
            if !seeds.is_empty() {
                if let Some(flights) = seeds.get(&request_key(req)) {
                    if let Some(f) = flights
                        .iter()
                        .find(|f| f.driver() == name && f.request() == req)
                    {
                        return Ok(res.attach_seeded(f, self.deadline, self.cancel.clone()));
                    }
                }
            }
        }
        res.submit(driver, req, self.deadline, self.cancel.clone())
    }

    /// Fold a `ParExt` warm-up's per-element requests into batched wire
    /// round-trips (see [`kleisli_core::resilience::DriverResilience::submit_batch`])
    /// and seed the resulting flights so the loop body's own
    /// [`Context::submit_resilient`] calls attach to them instead of
    /// issuing per-key requests. Returns `Ok(None)` when the driver does
    /// not advertise batching (callers keep the latency-overlap path).
    /// The returned guard unseeds the flights when dropped — hold it for
    /// the duration of the loop.
    pub fn submit_batch(&self, name: &str, reqs: &[DriverRequest]) -> KResult<Option<BatchGuard>> {
        let driver = self.driver(name)?;
        let res = self
            .inner
            .resilience
            .get(name)
            .ok_or_else(|| KError::driver(name, "no resilience state registered"))?;
        let Some(flights) = res.submit_batch(driver, reqs) else {
            return Ok(None);
        };
        if flights.is_empty() {
            return Ok(None);
        }
        let mut seeds = self.inner.batch_seeds.lock();
        for f in &flights {
            seeds.entry(f.key()).or_default().push(Arc::clone(f));
        }
        drop(seeds);
        Ok(Some(BatchGuard {
            inner: Arc::clone(&self.inner),
            flights,
        }))
    }

    /// A driver's full metrics picture: its own traffic counters merged
    /// with the resilience-side counters (timeouts, retries, hedges,
    /// breaker opens) kept outside the driver.
    pub fn driver_metrics(&self, name: &str) -> KResult<MetricsSnapshot> {
        let traffic = self.driver(name)?.metrics();
        Ok(match self.inner.resilience.get(name) {
            Some(res) => traffic.merged(&res.metrics_snapshot()),
            None => traffic,
        })
    }

    /// Reset every driver's traffic *and* resilience counters.
    pub fn reset_metrics(&self) {
        for d in self.inner.drivers.values() {
            d.reset_metrics();
        }
        for r in self.inner.resilience.values() {
            r.reset_metrics();
        }
    }

    /// Resolve an object reference through the registered stores.
    pub fn deref(&self, oid: &Oid) -> KResult<Value> {
        for store in &self.inner.object_stores {
            match store.deref(oid) {
                Ok(v) => return Ok(v),
                Err(_) => continue,
            }
        }
        Err(KError::eval(format!("dangling object reference {oid}")))
    }

    /// The memoization cell for a cached subquery. Ids are the subplan's
    /// deterministic structural hash (assigned by the optimizer's cache
    /// rule), so recompiled plans address the same cells. Callers use
    /// [`CacheCell::lookup_or_begin`]: the first evaluator computes and
    /// commits, later ones read — even when racing inside a parallel loop
    /// (single-flight).
    pub fn cache_cell(&self, id: u64) -> Arc<CacheCell> {
        Arc::clone(self.inner.cache.lock().entry(id).or_default())
    }

    /// Look up a memoized subquery result (testing convenience).
    pub fn cache_get(&self, id: u64) -> Option<Value> {
        self.cache_cell(id).peek()
    }

    /// Store a memoized subquery result (testing convenience).
    pub fn cache_put(&self, id: u64, v: Value) {
        self.cache_cell(id).put(v);
    }

    /// Drop all memoized results (between queries).
    pub fn cache_clear(&self) {
        self.inner.cache.lock().clear();
    }
}

/// Keeps a batch warm-up's flights in the context's seed table for the
/// duration of a `ParExt` loop; dropping it removes exactly the flights
/// it seeded (concurrent loops over overlapping key sets each hold
/// their own guard — a flight seeded twice stays until its last guard
/// goes).
pub struct BatchGuard {
    inner: Arc<CtxInner>,
    flights: Vec<Arc<Flight>>,
}

impl Drop for BatchGuard {
    fn drop(&mut self) {
        let mut seeds = self.inner.batch_seeds.lock();
        for f in &self.flights {
            if let Some(list) = seeds.get_mut(&f.key()) {
                if let Some(at) = list.iter().position(|g| Arc::ptr_eq(g, f)) {
                    list.swap_remove(at);
                }
                if list.is_empty() {
                    seeds.remove(&f.key());
                }
            }
        }
    }
}

/// Build a [`DriverRequest`] from a CPL record value, implementing the
/// paper's driver-call convention:
///
/// * `[query = "..."]` — ship SQL (Sybase driver);
/// * `[table = "..."]` — scan a table (the `GDB-Tab` template);
/// * `[db = "...", select = "...", path = "...", ...]` — Entrez index
///   retrieval with optional path extraction;
/// * `[db = "...", link = uid]` — Entrez neighbor links;
/// * `[class = "...", name = "..."]` — ACE object fetch;
/// * `[function = "...", arg = v]` — generic driver call.
pub fn request_from_value(v: &Value) -> KResult<DriverRequest> {
    let Value::Record(r) = v else {
        return Err(KError::eval(format!(
            "driver argument must be a record, got {}",
            v.kind_name()
        )));
    };
    let get_str = |field: &str| -> KResult<Option<String>> {
        match r.get(field) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.to_string())),
            Some(other) => Err(KError::eval(format!(
                "driver argument field '{field}' must be a string, got {}",
                other.kind_name()
            ))),
        }
    };
    if let Some(query) = get_str("query")? {
        return Ok(DriverRequest::Sql { query });
    }
    if let Some(table) = get_str("table")? {
        let columns = match r.get("columns") {
            None => None,
            Some(cols) => Some(
                cols.elements()
                    .ok_or_else(|| KError::eval("'columns' must be a collection"))?
                    .iter()
                    .map(|c| match c {
                        Value::Str(s) => Ok(s.to_string()),
                        other => Err(KError::eval(format!(
                            "column names must be strings, got {}",
                            other.kind_name()
                        ))),
                    })
                    .collect::<KResult<Vec<_>>>()?,
            ),
        };
        return Ok(DriverRequest::TableScan { table, columns });
    }
    if let Some(db) = get_str("db")? {
        if let Some(Value::Int(uid)) = r.get("link") {
            return Ok(DriverRequest::EntrezLinks { db, uid: *uid });
        }
        if let Some(select) = get_str("select")? {
            return Ok(DriverRequest::EntrezFetch {
                db,
                query: select,
                path: get_str("path")?,
            });
        }
        return Err(KError::eval(
            "entrez request needs a 'select' or 'link' field",
        ));
    }
    if let Some(class) = get_str("class")? {
        return Ok(DriverRequest::AceFetch {
            class,
            name: get_str("name")?,
        });
    }
    if let Some(function) = get_str("function")? {
        let arg = r.get("arg").cloned().unwrap_or(Value::Unit);
        return Ok(DriverRequest::Call { function, arg });
    }
    Err(KError::eval(format!(
        "unrecognized driver request record: {v}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_and_table_requests() {
        let v = Value::record_from(vec![("query", Value::str("select 1"))]);
        assert_eq!(
            request_from_value(&v).unwrap(),
            DriverRequest::Sql {
                query: "select 1".into()
            }
        );
        let v = Value::record_from(vec![("table", Value::str("locus"))]);
        assert!(matches!(
            request_from_value(&v).unwrap(),
            DriverRequest::TableScan { table, columns: None } if table == "locus"
        ));
    }

    #[test]
    fn entrez_requests() {
        let v = Value::record_from(vec![
            ("db", Value::str("na")),
            ("select", Value::str("accession M81409")),
            ("path", Value::str("Seq-entry.seq.id..giim")),
        ]);
        match request_from_value(&v).unwrap() {
            DriverRequest::EntrezFetch { db, query, path } => {
                assert_eq!(db, "na");
                assert_eq!(query, "accession M81409");
                assert_eq!(path.as_deref(), Some("Seq-entry.seq.id..giim"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let v = Value::record_from(vec![("db", Value::str("na")), ("link", Value::Int(7))]);
        assert!(matches!(
            request_from_value(&v).unwrap(),
            DriverRequest::EntrezLinks { uid: 7, .. }
        ));
    }

    #[test]
    fn bad_requests_error() {
        assert!(request_from_value(&Value::Int(1)).is_err());
        let v = Value::record_from(vec![("nonsense", Value::Int(1))]);
        assert!(request_from_value(&v).is_err());
        let v = Value::record_from(vec![("db", Value::str("na"))]);
        assert!(request_from_value(&v).is_err());
    }

    #[test]
    fn cache_roundtrip() {
        let ctx = Context::new();
        assert_eq!(ctx.cache_get(1), None);
        ctx.cache_put(1, Value::Int(42));
        assert_eq!(ctx.cache_get(1), Some(Value::Int(42)));
        ctx.cache_clear();
        assert_eq!(ctx.cache_get(1), None);
    }

    #[test]
    fn missing_driver_is_an_error() {
        let ctx = Context::new();
        assert!(ctx.driver("GDB").is_err());
    }
}
