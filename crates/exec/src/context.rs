//! Execution context: the driver registry, the object store used by
//! `deref`, and the subquery cache.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// A memoization slot; its mutex serializes the first computation so that
/// concurrent evaluators (inside `ParExt`) fetch a cached subquery once.
pub type CacheSlot = Arc<Mutex<Option<Value>>>;

use kleisli_core::{DriverRef, DriverRequest, KError, KResult, Oid, Value};

/// Resolves object references for sources with object identity (ACE).
/// CPL can dereference but never create or update references.
pub trait ObjectStore: Send + Sync {
    fn deref(&self, oid: &Oid) -> KResult<Value>;
}

/// Everything the evaluators need besides the expression itself.
#[derive(Default)]
pub struct Context {
    drivers: HashMap<String, DriverRef>,
    object_stores: Vec<Arc<dyn ObjectStore>>,
    cache: Mutex<HashMap<u64, CacheSlot>>,
}

impl Context {
    pub fn new() -> Context {
        Context::default()
    }

    /// Register a driver under its own name.
    pub fn register_driver(&mut self, driver: DriverRef) {
        self.drivers.insert(driver.name().to_string(), driver);
    }

    /// Register an object store consulted by `deref`.
    pub fn register_object_store(&mut self, store: Arc<dyn ObjectStore>) {
        self.object_stores.push(store);
    }

    pub fn driver(&self, name: &str) -> KResult<&DriverRef> {
        self.drivers
            .get(name)
            .ok_or_else(|| KError::driver(name, "no such driver registered"))
    }

    pub fn drivers(&self) -> impl Iterator<Item = &DriverRef> {
        self.drivers.values()
    }

    pub fn deref(&self, oid: &Oid) -> KResult<Value> {
        for store in &self.object_stores {
            match store.deref(oid) {
                Ok(v) => return Ok(v),
                Err(_) => continue,
            }
        }
        Err(KError::eval(format!("dangling object reference {oid}")))
    }

    /// The memoization slot for a cached subquery. Callers lock the slot;
    /// the first computes and stores, later ones read — even when racing
    /// inside a parallel loop.
    pub fn cache_slot(&self, id: u64) -> CacheSlot {
        Arc::clone(self.cache.lock().entry(id).or_default())
    }

    /// Look up a memoized subquery result (testing convenience).
    pub fn cache_get(&self, id: u64) -> Option<Value> {
        let slot = self.cache_slot(id);
        let guard = slot.lock();
        guard.clone()
    }

    /// Store a memoized subquery result (testing convenience).
    pub fn cache_put(&self, id: u64, v: Value) {
        *self.cache_slot(id).lock() = Some(v);
    }

    /// Drop all memoized results (between queries).
    pub fn cache_clear(&self) {
        self.cache.lock().clear();
    }
}

/// Build a [`DriverRequest`] from a CPL record value, implementing the
/// paper's driver-call convention:
///
/// * `[query = "..."]` — ship SQL (Sybase driver);
/// * `[table = "..."]` — scan a table (the `GDB-Tab` template);
/// * `[db = "...", select = "...", path = "...", ...]` — Entrez index
///   retrieval with optional path extraction;
/// * `[db = "...", link = uid]` — Entrez neighbor links;
/// * `[class = "...", name = "..."]` — ACE object fetch;
/// * `[function = "...", arg = v]` — generic driver call.
pub fn request_from_value(v: &Value) -> KResult<DriverRequest> {
    let Value::Record(r) = v else {
        return Err(KError::eval(format!(
            "driver argument must be a record, got {}",
            v.kind_name()
        )));
    };
    let get_str = |field: &str| -> KResult<Option<String>> {
        match r.get(field) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.to_string())),
            Some(other) => Err(KError::eval(format!(
                "driver argument field '{field}' must be a string, got {}",
                other.kind_name()
            ))),
        }
    };
    if let Some(query) = get_str("query")? {
        return Ok(DriverRequest::Sql { query });
    }
    if let Some(table) = get_str("table")? {
        let columns = match r.get("columns") {
            None => None,
            Some(cols) => Some(
                cols.elements()
                    .ok_or_else(|| KError::eval("'columns' must be a collection"))?
                    .iter()
                    .map(|c| match c {
                        Value::Str(s) => Ok(s.to_string()),
                        other => Err(KError::eval(format!(
                            "column names must be strings, got {}",
                            other.kind_name()
                        ))),
                    })
                    .collect::<KResult<Vec<_>>>()?,
            ),
        };
        return Ok(DriverRequest::TableScan { table, columns });
    }
    if let Some(db) = get_str("db")? {
        if let Some(Value::Int(uid)) = r.get("link") {
            return Ok(DriverRequest::EntrezLinks { db, uid: *uid });
        }
        if let Some(select) = get_str("select")? {
            return Ok(DriverRequest::EntrezFetch {
                db,
                query: select,
                path: get_str("path")?,
            });
        }
        return Err(KError::eval(
            "entrez request needs a 'select' or 'link' field",
        ));
    }
    if let Some(class) = get_str("class")? {
        return Ok(DriverRequest::AceFetch {
            class,
            name: get_str("name")?,
        });
    }
    if let Some(function) = get_str("function")? {
        let arg = r.get("arg").cloned().unwrap_or(Value::Unit);
        return Ok(DriverRequest::Call { function, arg });
    }
    Err(KError::eval(format!(
        "unrecognized driver request record: {v}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_and_table_requests() {
        let v = Value::record_from(vec![("query", Value::str("select 1"))]);
        assert_eq!(
            request_from_value(&v).unwrap(),
            DriverRequest::Sql {
                query: "select 1".into()
            }
        );
        let v = Value::record_from(vec![("table", Value::str("locus"))]);
        assert!(matches!(
            request_from_value(&v).unwrap(),
            DriverRequest::TableScan { table, columns: None } if table == "locus"
        ));
    }

    #[test]
    fn entrez_requests() {
        let v = Value::record_from(vec![
            ("db", Value::str("na")),
            ("select", Value::str("accession M81409")),
            ("path", Value::str("Seq-entry.seq.id..giim")),
        ]);
        match request_from_value(&v).unwrap() {
            DriverRequest::EntrezFetch { db, query, path } => {
                assert_eq!(db, "na");
                assert_eq!(query, "accession M81409");
                assert_eq!(path.as_deref(), Some("Seq-entry.seq.id..giim"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let v = Value::record_from(vec![("db", Value::str("na")), ("link", Value::Int(7))]);
        assert!(matches!(
            request_from_value(&v).unwrap(),
            DriverRequest::EntrezLinks { uid: 7, .. }
        ));
    }

    #[test]
    fn bad_requests_error() {
        assert!(request_from_value(&Value::Int(1)).is_err());
        let v = Value::record_from(vec![("nonsense", Value::Int(1))]);
        assert!(request_from_value(&v).is_err());
        let v = Value::record_from(vec![("db", Value::str("na"))]);
        assert!(request_from_value(&v).is_err());
    }

    #[test]
    fn cache_roundtrip() {
        let ctx = Context::new();
        assert_eq!(ctx.cache_get(1), None);
        ctx.cache_put(1, Value::Int(42));
        assert_eq!(ctx.cache_get(1), Some(Value::Int(42)));
        ctx.cache_clear();
        assert_eq!(ctx.cache_get(1), None);
    }

    #[test]
    fn missing_driver_is_an_error() {
        let ctx = Context::new();
        assert!(ctx.driver("GDB").is_err());
    }
}
