//! Evaluation of NRC primitives over values.

use std::sync::Arc;

use kleisli_core::{KError, KResult, Value};
use nrc::Prim;

use crate::context::Context;

fn num2(p: Prim, a: &Value, b: &Value) -> KResult<Value> {
    use Value::{Float, Int};
    match (a, b) {
        (Int(x), Int(y)) => {
            let r = match p {
                Prim::Add => x.checked_add(*y),
                Prim::Sub => x.checked_sub(*y),
                Prim::Mul => x.checked_mul(*y),
                Prim::Div => {
                    if *y == 0 {
                        return Err(KError::eval("division by zero"));
                    }
                    x.checked_div(*y)
                }
                Prim::Mod => {
                    if *y == 0 {
                        return Err(KError::eval("modulo by zero"));
                    }
                    x.checked_rem(*y)
                }
                _ => unreachable!(),
            };
            r.map(Int)
                .ok_or_else(|| KError::eval("integer overflow in arithmetic"))
        }
        (Float(_), Float(_)) | (Int(_), Float(_)) | (Float(_), Int(_)) => {
            let fx = match a {
                Float(x) => *x,
                Int(x) => *x as f64,
                _ => unreachable!(),
            };
            let fy = match b {
                Float(y) => *y,
                Int(y) => *y as f64,
                _ => unreachable!(),
            };
            Ok(Float(match p {
                Prim::Add => fx + fy,
                Prim::Sub => fx - fy,
                Prim::Mul => fx * fy,
                Prim::Div => fx / fy,
                Prim::Mod => fx % fy,
                _ => unreachable!(),
            }))
        }
        _ => Err(KError::eval(format!(
            "arithmetic '{p}' on {} and {}",
            a.kind_name(),
            b.kind_name()
        ))),
    }
}

fn want_str(v: &Value, what: &str) -> KResult<Arc<str>> {
    match v {
        Value::Str(s) => Ok(Arc::clone(s)),
        other => Err(KError::eval(format!(
            "{what} expects a string, got {}",
            other.kind_name()
        ))),
    }
}

fn want_bool(v: &Value, what: &str) -> KResult<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(KError::eval(format!(
            "{what} expects a bool, got {}",
            other.kind_name()
        ))),
    }
}

fn want_int(v: &Value, what: &str) -> KResult<i64> {
    match v {
        Value::Int(i) => Ok(*i),
        other => Err(KError::eval(format!(
            "{what} expects an int, got {}",
            other.kind_name()
        ))),
    }
}

fn want_coll<'a>(v: &'a Value, what: &str) -> KResult<&'a [Value]> {
    v.elements().ok_or_else(|| {
        KError::eval(format!(
            "{what} expects a collection, got {}",
            v.kind_name()
        ))
    })
}

fn numeric_as_f64(v: &Value) -> KResult<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(x) => Ok(*x),
        other => Err(KError::eval(format!(
            "aggregate over non-numeric element {}",
            other.kind_name()
        ))),
    }
}

/// Apply a primitive to already-evaluated arguments.
pub fn apply_prim(p: Prim, args: &[Value], ctx: &Context) -> KResult<Value> {
    use Prim::*;
    debug_assert_eq!(args.len(), p.arity());
    Ok(match p {
        Add | Sub | Mul | Div | Mod => num2(p, &args[0], &args[1])?,
        Neg => match &args[0] {
            Value::Int(i) => Value::Int(i.checked_neg().ok_or_else(|| {
                KError::eval("integer overflow in negation")
            })?),
            Value::Float(x) => Value::Float(-x),
            other => {
                return Err(KError::eval(format!(
                    "'neg' on non-numeric {}",
                    other.kind_name()
                )))
            }
        },
        Eq => Value::Bool(args[0] == args[1]),
        Ne => Value::Bool(args[0] != args[1]),
        Lt => Value::Bool(args[0] < args[1]),
        Le => Value::Bool(args[0] <= args[1]),
        Gt => Value::Bool(args[0] > args[1]),
        Ge => Value::Bool(args[0] >= args[1]),
        And => Value::Bool(want_bool(&args[0], "'and'")? && want_bool(&args[1], "'and'")?),
        Or => Value::Bool(want_bool(&args[0], "'or'")? || want_bool(&args[1], "'or'")?),
        Not => Value::Bool(!want_bool(&args[0], "'not'")?),
        StrCat => {
            let a = want_str(&args[0], "'^'")?;
            let b = want_str(&args[1], "'^'")?;
            Value::Str(Arc::from(format!("{a}{b}").as_str()))
        }
        StrLen => Value::Int(want_str(&args[0], "strlen")?.chars().count() as i64),
        StrUpper => Value::str(want_str(&args[0], "strupper")?.to_uppercase()),
        StrLower => Value::str(want_str(&args[0], "strlower")?.to_lowercase()),
        StrContains => Value::Bool(
            want_str(&args[0], "strcontains")?
                .contains(&*want_str(&args[1], "strcontains")?),
        ),
        StrStartsWith => Value::Bool(
            want_str(&args[0], "strstartswith")?
                .starts_with(&*want_str(&args[1], "strstartswith")?),
        ),
        Substr => {
            let s = want_str(&args[0], "substr")?;
            let start = want_int(&args[1], "substr")?.max(0) as usize;
            let len = want_int(&args[2], "substr")?.max(0) as usize;
            let sub: String = s.chars().skip(start).take(len).collect();
            Value::str(sub)
        }
        ToString => Value::str(args[0].to_string()),
        IsEmpty => Value::Bool(want_coll(&args[0], "isempty")?.is_empty()),
        Member => {
            let es = want_coll(&args[1], "member")?;
            Value::Bool(es.contains(&args[0]))
        }
        Flatten => {
            let outer_kind = args[0]
                .coll_kind()
                .ok_or_else(|| KError::eval("flatten expects a collection"))?;
            let mut out = Vec::new();
            for inner in want_coll(&args[0], "flatten")? {
                out.extend_from_slice(want_coll(inner, "flatten element")?);
            }
            Value::collection(outer_kind, out)
        }
        Distinct | SetOf => Value::set(want_coll(&args[0], "setof")?.to_vec()),
        BagOf => Value::bag(want_coll(&args[0], "bagof")?.to_vec()),
        ListOf => Value::list(want_coll(&args[0], "listof")?.to_vec()),
        Append => {
            let a = want_coll(&args[0], "append")?;
            let b = want_coll(&args[1], "append")?;
            let mut out = Vec::with_capacity(a.len() + b.len());
            out.extend_from_slice(a);
            out.extend_from_slice(b);
            Value::list(out)
        }
        Nth => {
            let es = want_coll(&args[0], "nth")?;
            let i = want_int(&args[1], "nth")?;
            if i < 0 || i as usize >= es.len() {
                return Err(KError::eval(format!(
                    "nth index {i} out of range (length {})",
                    es.len()
                )));
            }
            es[i as usize].clone()
        }
        Range => {
            let a = want_int(&args[0], "range")?;
            let b = want_int(&args[1], "range")?;
            Value::list((a..b).map(Value::Int).collect())
        }
        Count => Value::Int(want_coll(&args[0], "count")?.len() as i64),
        Sum => {
            let es = want_coll(&args[0], "sum")?;
            if es.iter().all(|e| matches!(e, Value::Int(_))) {
                let mut acc: i64 = 0;
                for e in es {
                    if let Value::Int(i) = e {
                        acc = acc
                            .checked_add(*i)
                            .ok_or_else(|| KError::eval("integer overflow in sum"))?;
                    }
                }
                Value::Int(acc)
            } else {
                let mut acc = 0.0;
                for e in es {
                    acc += numeric_as_f64(e)?;
                }
                Value::Float(acc)
            }
        }
        Max => want_coll(&args[0], "max")?
            .iter()
            .max()
            .cloned()
            .ok_or_else(|| KError::eval("max of an empty collection"))?,
        Min => want_coll(&args[0], "min")?
            .iter()
            .min()
            .cloned()
            .ok_or_else(|| KError::eval("min of an empty collection"))?,
        Avg => {
            let es = want_coll(&args[0], "avg")?;
            if es.is_empty() {
                return Err(KError::eval("avg of an empty collection"));
            }
            let mut acc = 0.0;
            for e in es {
                acc += numeric_as_f64(e)?;
            }
            Value::Float(acc / es.len() as f64)
        }
        Deref => match &args[0] {
            Value::Ref(oid) => ctx.deref(oid)?,
            other => {
                return Err(KError::eval(format!(
                    "deref expects a reference, got {}",
                    other.kind_name()
                )))
            }
        },
        HasField => {
            let Value::Record(r) = &args[0] else {
                return Err(KError::eval(format!(
                    "hasfield expects a record, got {}",
                    args[0].kind_name()
                )));
            };
            Value::Bool(r.has_field(&want_str(&args[1], "hasfield")?))
        }
        RecordWidth => {
            let Value::Record(r) = &args[0] else {
                return Err(KError::eval(format!(
                    "recordwidth expects a record, got {}",
                    args[0].kind_name()
                )));
            };
            Value::Int(r.width() as i64)
        }
        Fail => {
            let msg = match &args[0] {
                Value::Str(s) => s.to_string(),
                other => other.to_string(),
            };
            return Err(KError::eval(msg));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap(p: Prim, args: &[Value]) -> KResult<Value> {
        apply_prim(p, args, &Context::new())
    }

    #[test]
    fn arithmetic_promotes_and_checks() {
        assert_eq!(ap(Prim::Add, &[Value::Int(2), Value::Int(3)]).unwrap(), Value::Int(5));
        assert_eq!(
            ap(Prim::Add, &[Value::Int(2), Value::Float(0.5)]).unwrap(),
            Value::Float(2.5)
        );
        assert!(ap(Prim::Div, &[Value::Int(1), Value::Int(0)]).is_err());
        assert!(ap(Prim::Add, &[Value::Int(i64::MAX), Value::Int(1)]).is_err());
        assert!(ap(Prim::Add, &[Value::str("a"), Value::Int(1)]).is_err());
    }

    #[test]
    fn string_ops() {
        assert_eq!(
            ap(Prim::StrCat, &[Value::str("ab"), Value::str("cd")]).unwrap(),
            Value::str("abcd")
        );
        assert_eq!(ap(Prim::StrLen, &[Value::str("héllo")]).unwrap(), Value::Int(5));
        assert_eq!(
            ap(
                Prim::Substr,
                &[Value::str("chromosome"), Value::Int(3), Value::Int(4)]
            )
            .unwrap(),
            Value::str("omos")
        );
        assert_eq!(
            ap(Prim::StrContains, &[Value::str("abc"), Value::str("b")]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn aggregates() {
        let s = Value::set(vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
        assert_eq!(ap(Prim::Count, std::slice::from_ref(&s)).unwrap(), Value::Int(3));
        assert_eq!(ap(Prim::Sum, std::slice::from_ref(&s)).unwrap(), Value::Int(6));
        assert_eq!(ap(Prim::Max, std::slice::from_ref(&s)).unwrap(), Value::Int(3));
        assert_eq!(ap(Prim::Min, std::slice::from_ref(&s)).unwrap(), Value::Int(1));
        assert_eq!(ap(Prim::Avg, &[s]).unwrap(), Value::Float(2.0));
        assert!(ap(Prim::Max, &[Value::set(vec![])]).is_err());
        assert_eq!(ap(Prim::Sum, &[Value::set(vec![])]).unwrap(), Value::Int(0));
    }

    #[test]
    fn mixed_sum_is_float() {
        let s = Value::list(vec![Value::Int(1), Value::Float(0.5)]);
        assert_eq!(ap(Prim::Sum, &[s]).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn collection_ops() {
        let l = Value::list(vec![Value::Int(2), Value::Int(2), Value::Int(1)]);
        assert_eq!(
            ap(Prim::SetOf, std::slice::from_ref(&l)).unwrap(),
            Value::set(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            ap(Prim::Nth, &[l.clone(), Value::Int(0)]).unwrap(),
            Value::Int(2)
        );
        assert!(ap(Prim::Nth, &[l.clone(), Value::Int(9)]).is_err());
        assert_eq!(
            ap(Prim::Member, &[Value::Int(1), l.clone()]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(ap(Prim::IsEmpty, &[Value::set(vec![])]).unwrap(), Value::Bool(true));
        let nested = Value::set(vec![
            Value::set(vec![Value::Int(1)]),
            Value::set(vec![Value::Int(2)]),
        ]);
        assert_eq!(
            ap(Prim::Flatten, &[nested]).unwrap(),
            Value::set(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            ap(Prim::Range, &[Value::Int(1), Value::Int(4)]).unwrap(),
            Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn record_introspection() {
        let r = Value::record_from(vec![("a", Value::Int(1))]);
        assert_eq!(
            ap(Prim::HasField, &[r.clone(), Value::str("a")]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ap(Prim::HasField, &[r.clone(), Value::str("b")]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(ap(Prim::RecordWidth, &[r]).unwrap(), Value::Int(1));
    }

    #[test]
    fn fail_raises() {
        assert!(ap(Prim::Fail, &[Value::str("boom")]).is_err());
    }
}
