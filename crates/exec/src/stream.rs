//! The pipelined (lazy) executor.
//!
//! Section 4 of the paper: "each (x, y) pair in the result can be assembled
//! by retrieving a single element x from DB and single element from the set
//! S(x). Where possible, the Kleisli optimizer will lazily retrieve elements
//! from DB and lazily evaluate the function S in order to generate initial
//! output quickly, and minimize storage of intermediate results."
//!
//! `eval_stream` compiles a collection-valued NRC expression into a
//! pull-based iterator: generators (`Ext`), unions, conditionals, remote
//! scans, joins and cached subqueries all stream; anything else falls
//! back to the eager evaluator. A stream yields elements *without* final
//! collection canonicalization (set deduplication happens only when the
//! stream is collected), which is what makes `first_n` cheap — the
//! intended use, as in the paper, is fast first response on queries whose
//! laziness the optimizer has identified as profitable. Consumers of a
//! set-typed prefix that must not see duplicates use [`first_n_distinct`].

use std::collections::HashSet;
use std::sync::Arc;

use kleisli_core::{CollKind, KError, KResult, Value};
use nrc::{Expr, JoinStrategy, Name};

use crate::context::{request_from_value, CacheLookup, Context, PopulateTicket};
use crate::env::{Env, Rt};
use crate::eval::{eval, eval_parallel};

/// A pull-based stream of collection elements.
pub type RowStream = Box<dyn Iterator<Item = KResult<Value>> + Send>;

/// Stream the elements of a collection-valued expression.
pub fn eval_stream(e: &Expr, env: &Env, ctx: &Arc<Context>) -> KResult<RowStream> {
    match e {
        Expr::Empty(_) => Ok(Box::new(std::iter::empty())),
        Expr::Single(_, inner) => {
            let v = eval(inner, env, ctx)?;
            Ok(Box::new(std::iter::once(Ok(v))))
        }
        Expr::Union(_, a, b) => {
            let sa = eval_stream(a, env, ctx)?;
            // When the right operand is a spine of remote scans on
            // drivers whose `submit` is genuinely non-blocking, building
            // its stream *now* puts those requests in flight, so the
            // right arm's round-trips overlap consumption of the left
            // arm — the paper's "keep several requests in flight" traded
            // against strict laziness. Rows stay lazy up to the driver's
            // advertised `prefetch_rows`: a prefetching driver's pool
            // worker pulls that many rows ahead once the request
            // completes (so the right arm's row transfer also overlaps
            // the left arm's consumption), while `prefetch_rows = 0`
            // drivers ship rows strictly on demand. Anything that would do
            // real work at construction time (locals, joins, cached
            // populations, or submission through a blocking default
            // adapter) stays fully lazy: a consumer that stops inside
            // the left operand never evaluates it. Cloning the Arc is
            // O(1) regardless of plan size.
            if prefetchable(b, ctx) {
                // A construction error (e.g. a malformed request record)
                // falls through to the lazy path below, preserving the
                // old guarantee that a left-arm-only consumer never sees
                // the right arm fail.
                if let Ok(sb) = eval_stream(b, env, ctx) {
                    return Ok(Box::new(sa.chain(sb)));
                }
            }
            let b = Arc::clone(b);
            let env2 = env.clone();
            let ctx2 = Arc::clone(ctx);
            let sb = LazyStream::new(move || eval_stream(&b, &env2, &ctx2));
            Ok(Box::new(sa.chain(sb)))
        }
        Expr::Ext {
            var, body, source, ..
        } => {
            let src = eval_stream(source, env, ctx)?;
            Ok(Box::new(ExtStream {
                source: src,
                current: None,
                var: Arc::clone(var),
                body: Arc::clone(body),
                env: env.clone(),
                ctx: Arc::clone(ctx),
                failed: false,
            }))
        }
        Expr::If(c, t, f) => match eval(c, env, ctx)? {
            Value::Bool(true) => eval_stream(t, env, ctx),
            Value::Bool(false) => eval_stream(f, env, ctx),
            other => Err(KError::eval(format!(
                "if condition must be bool, got {}",
                other.kind_name()
            ))),
        },
        Expr::Let { var, def, body } => {
            let d = crate::eval::eval_rt(def, env, ctx)?;
            eval_stream(body, &env.bind(Arc::clone(var), d), ctx)
        }
        Expr::Remote { driver, request } => {
            // Two-phase: the request is in flight from this moment; the
            // stream blocks only when the first row is actually pulled,
            // so independent scans submitted while assembling one pull
            // chain overlap their round-trips. Submission goes through
            // the driver's resilience layer: breaker admission here,
            // deadline/retry/hedging when the first pull redeems it.
            Ok(PendingStream::new(
                ctx.submit_resilient(driver, request)?,
                ctx,
            ))
        }
        Expr::RemoteApp { driver, arg } => {
            let argv = eval(arg, env, ctx)?;
            let req = request_from_value(&argv)?;
            Ok(PendingStream::new(ctx.submit_resilient(driver, &req)?, ctx))
        }
        Expr::Join {
            strategy,
            left,
            right,
            lvar,
            rvar,
            left_key,
            right_key,
            cond,
            body,
            ..
        } => {
            // Materialize the inner (right) relation, stream the outer —
            // but build the outer stream *first*: its driver request (if
            // any) is then already in flight while the inner relation is
            // being collected, overlapping the two sources' round-trips.
            let lstream = eval_stream(left, env, ctx)?;
            let rv: Vec<Value> = eval_stream(right, env, ctx)?.collect::<KResult<_>>()?;
            match strategy {
                JoinStrategy::IndexedNl => {
                    let (Some(lk), Some(rk)) = (left_key, right_key) else {
                        return Err(KError::eval("indexed join without keys"));
                    };
                    let mut index: std::collections::HashMap<Value, Vec<Value>> =
                        std::collections::HashMap::new();
                    for r in rv {
                        let env2 = env.bind(Arc::clone(rvar), Rt::Val(r.clone()));
                        let key = eval(rk, &env2, ctx)?;
                        index.entry(key).or_default().push(r);
                    }
                    Ok(Box::new(IndexedJoinStream {
                        left: lstream,
                        index,
                        pending: Vec::new(),
                        lvar: Arc::clone(lvar),
                        rvar: Arc::clone(rvar),
                        left_key: Arc::clone(lk),
                        cond: Arc::clone(cond),
                        body: Arc::clone(body),
                        env: env.clone(),
                        ctx: Arc::clone(ctx),
                        failed: false,
                    }))
                }
                JoinStrategy::BlockedNl { .. } => {
                    // Fold equi-keys into the condition; the two fresh
                    // nodes reference the existing key/cond subplans by
                    // Arc, so this is O(1) in plan size.
                    let cond = match (left_key, right_key) {
                        (Some(lk), Some(rk)) => Arc::new(Expr::and_arc(
                            Arc::new(Expr::eq_arc(Arc::clone(lk), Arc::clone(rk))),
                            Arc::clone(cond),
                        )),
                        _ => Arc::clone(cond),
                    };
                    Ok(Box::new(NlJoinStream {
                        left: lstream,
                        right: rv,
                        pending: Vec::new(),
                        lvar: Arc::clone(lvar),
                        rvar: Arc::clone(rvar),
                        cond,
                        body: Arc::clone(body),
                        env: env.clone(),
                        ctx: Arc::clone(ctx),
                        failed: false,
                    }))
                }
            }
        }
        Expr::Cached { id, expr } => match ctx.cache_cell(*id).lookup_or_begin() {
            // Hit: stream the memoized rows; no driver traffic at all.
            CacheLookup::Hit(v) => stream_of_value(&v),
            // Re-entrant lookup (this thread is populating the same id
            // higher up): stream the subquery directly, uncached.
            CacheLookup::Reentrant => eval_stream(expr, env, ctx),
            // Miss: this consumer is the populator. When the subplan's
            // collection kind is syntactically evident we stream the
            // subquery lazily, teeing rows aside, and commit the canonical
            // collection once the stream is exhausted — so `first_n` over
            // a cached remote scan still pulls only what it needs (an
            // abandoned prefix aborts the ticket and leaves the slot
            // empty). The ticket rides inside the stream, keeping the
            // single-flight guarantee of the eager path: racing
            // evaluators block until commit or abort.
            CacheLookup::Miss(ticket) => match expr.coll_kind_hint() {
                Some(kind) => {
                    // An Err here drops the ticket (abort) on the way out.
                    let inner = eval_stream(expr, env, ctx)?;
                    Ok(Box::new(CachingStream {
                        inner,
                        ticket: Some(ticket),
                        rows: Vec::new(),
                        kind,
                        done: false,
                    }))
                }
                None => {
                    // Kind unknowable from syntax: populate eagerly so the
                    // cached value is canonicalized exactly like the eager
                    // evaluator's, then stream it.
                    let v = eval(expr, env, ctx)?;
                    ticket.commit(v.clone());
                    stream_of_value(&v)
                }
            },
        },
        Expr::ParExt {
            var,
            body,
            source,
            max_in_flight,
            ..
        } => {
            let src = eval_stream(source, env, ctx)?;
            Ok(Box::new(ParChunkStream {
                source: src,
                buffer: Vec::new(),
                var: Arc::clone(var),
                body: Arc::clone(body),
                env: env.clone(),
                ctx: Arc::clone(ctx),
                width: (*max_in_flight).max(1),
                failed: false,
            }))
        }
        // Everything else: evaluate eagerly and iterate.
        other => {
            let v = eval(other, env, ctx)?;
            match v.elements() {
                Some(es) => Ok(Box::new(es.to_vec().into_iter().map(Ok))),
                None => Err(KError::eval(format!(
                    "cannot stream a non-collection ({})",
                    v.kind_name()
                ))),
            }
        }
    }
}

/// Stream the elements of an already-computed collection value without
/// copying it: the iterator shares the collection's element vector (one
/// `Arc` bump) and clones elements only as they are pulled — a `first_n`
/// over a huge cache hit touches `n` elements, not the whole collection.
fn stream_of_value(v: &Value) -> KResult<RowStream> {
    let elems: Arc<Vec<Value>> = match v {
        Value::Set(es) | Value::Bag(es) | Value::List(es) => Arc::clone(es),
        other => {
            return Err(KError::eval(format!(
                "cannot stream a non-collection ({})",
                other.kind_name()
            )))
        }
    };
    let mut i = 0;
    Ok(Box::new(std::iter::from_fn(move || {
        let out = elems.get(i).cloned().map(Ok);
        i += 1;
        out
    })))
}

/// Pull at most `n` elements from the stream of `e` — the "fast response"
/// path. Returns the elements in arrival order.
pub fn first_n(e: &Expr, n: usize, env: &Env, ctx: &Arc<Context>) -> KResult<Vec<Value>> {
    let mut out = Vec::with_capacity(n);
    for item in eval_stream(e, env, ctx)? {
        out.push(item?);
        if out.len() >= n {
            break;
        }
    }
    Ok(out)
}

/// [`first_n`] for *set*-typed plans: streams skip collection
/// canonicalization (see the module docs), so a set query can yield the
/// same element several times; here duplicates are dropped and do not
/// count toward `n`. First-arrival order is preserved.
pub fn first_n_distinct(e: &Expr, n: usize, env: &Env, ctx: &Arc<Context>) -> KResult<Vec<Value>> {
    let mut out = Vec::with_capacity(n);
    let mut seen: HashSet<Value> = HashSet::new();
    if n == 0 {
        return Ok(out);
    }
    for item in eval_stream(e, env, ctx)? {
        let v = item?;
        if seen.insert(v.clone()) {
            out.push(v);
            if out.len() >= n {
                break;
            }
        }
    }
    Ok(out)
}

/// Collect a stream into a canonical collection of the given kind.
pub fn collect_stream(stream: RowStream, kind: CollKind) -> KResult<Value> {
    let elems: Vec<Value> = stream.collect::<KResult<_>>()?;
    Ok(Value::collection(kind, elems))
}

/// Lazy population of a [`crate::context::CacheCell`]: passes the inner
/// stream's rows through while teeing them aside, and commits the
/// canonical collection (same canonicalization as the eager evaluator's
/// `Value::collection`) when the inner stream is exhausted. Dropping the
/// stream early drops the ticket uncommitted, releasing the single-flight
/// claim with the slot still empty.
struct CachingStream {
    inner: RowStream,
    ticket: Option<PopulateTicket>,
    rows: Vec<Value>,
    kind: CollKind,
    done: bool,
}

impl Iterator for CachingStream {
    type Item = KResult<Value>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.inner.next() {
            Some(Ok(v)) => {
                self.rows.push(v.clone());
                Some(Ok(v))
            }
            Some(Err(e)) => {
                self.done = true;
                self.ticket = None; // abort: do not cache a partial result
                Some(Err(e))
            }
            None => {
                self.done = true;
                if let Some(t) = self.ticket.take() {
                    t.commit(Value::collection(self.kind, std::mem::take(&mut self.rows)));
                }
                None
            }
        }
    }
}

/// Is building a stream for `e` effectively free of *blocking* work —
/// nothing beyond non-blocking driver submissions, environment lookups
/// and constant collections? For such expressions the union arm builds
/// the stream eagerly (prefetching the remote requests); everything else
/// (locals with side work, joins that materialize, cached populations,
/// or drivers whose `submit` runs the request inline) keeps the fully
/// lazy path. `RemoteApp` arguments are required to be remote-free
/// because they are evaluated at construction time.
fn prefetchable(e: &Expr, ctx: &Context) -> bool {
    let nonblocking = |driver: &str| {
        ctx.driver(driver)
            .map(|d| d.nonblocking_submit())
            .unwrap_or(false)
    };
    match e {
        Expr::Remote { driver, .. } => nonblocking(driver),
        Expr::RemoteApp { driver, arg } => !arg.touches_remote() && nonblocking(driver),
        Expr::Ext { source, .. } | Expr::ParExt { source, .. } => prefetchable(source, ctx),
        Expr::Union(_, a, b) => prefetchable(a, ctx) && prefetchable(b, ctx),
        _ => false,
    }
}

/// A driver request in flight: submission already happened (the source is
/// working, bounded by its admission gate); the first pull redeems the
/// handle and then streams rows as before. Dropping the stream unpulled
/// cancels the request, releasing the driver's admission ticket.
///
/// # Row prefetch (`Capabilities::prefetch_rows`)
///
/// On drivers advertising a positive `prefetch_rows`, the stream this
/// redeems is backed by the driver pool's bounded row-prefetch buffer:
/// the pool worker that performed the request keeps pulling up to
/// `prefetch_rows` rows ahead of whoever consumes this stream, so
/// per-row transfer latency overlaps consumer work (and other streams'
/// rows — union arms and join sides fill their buffers concurrently).
/// This is the Section-4 laziness trade at *row* granularity, and it
/// composes with `nonblocking_submit` the same way request prefetch
/// does: only pool-submitting drivers ever prefetch, so one-method
/// (default-adapter) drivers and `prefetch_rows = 0` drivers keep the
/// fully-lazy, byte-identical pull behavior — `first_n` over them ships
/// exactly the demanded prefix. Over a prefetching driver, `first_n`
/// may leave up to a buffer's worth of rows shipped-but-unread; dropping
/// this stream early closes that buffer (stopping refill work at the
/// next row boundary), drops the buffered rows, and cancels/releases the
/// request's admission ticket — nothing leaks. A join's inner collection
/// simply drains the buffer to exhaustion.
struct PendingStream {
    handle: Option<kleisli_core::resilience::ResilientHandle>,
    inner: Option<RowStream>,
    /// Query budget, checked at every row boundary so a mid-stream stall
    /// resolves as `Timeout`/`Cancelled` at the next pull instead of
    /// silently hanging the consumer forever.
    deadline: Option<std::time::Instant>,
    cancel: Option<Arc<kleisli_core::CancelToken>>,
    failed: bool,
}

impl PendingStream {
    fn new(handle: kleisli_core::resilience::ResilientHandle, ctx: &Context) -> RowStream {
        Box::new(PendingStream {
            deadline: handle.deadline(),
            cancel: ctx.cancel_token().cloned(),
            handle: Some(handle),
            inner: None,
            failed: false,
        })
    }

    fn over_budget(&self) -> Option<KError> {
        if let Some(t) = &self.cancel {
            if t.is_cancelled() {
                return Some(KError::cancelled("query cancelled"));
            }
        }
        if let Some(d) = self.deadline {
            if std::time::Instant::now() >= d {
                return Some(KError::timeout(
                    "query",
                    "deadline exceeded at row boundary",
                ));
            }
        }
        None
    }
}

impl Iterator for PendingStream {
    type Item = KResult<Value>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.inner.is_none() {
            match self.handle.take()?.wait() {
                Ok(s) => self.inner = Some(s),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        if let Some(e) = self.over_budget() {
            self.failed = true;
            // Drop the redeemed stream now: over a prefetching driver
            // this closes the row buffer and stops refill work.
            self.inner = None;
            return Some(Err(e));
        }
        self.inner.as_mut()?.next()
    }
}

/// A stream constructed on first pull (for the right side of unions).
struct LazyStream<F: FnOnce() -> KResult<RowStream>> {
    make: Option<F>,
    inner: Option<RowStream>,
    failed: bool,
}

impl<F: FnOnce() -> KResult<RowStream>> LazyStream<F> {
    fn new(make: F) -> Self {
        LazyStream {
            make: Some(make),
            inner: None,
            failed: false,
        }
    }
}

impl<F: FnOnce() -> KResult<RowStream>> Iterator for LazyStream<F> {
    type Item = KResult<Value>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.inner.is_none() {
            match (self.make.take()?)() {
                Ok(s) => self.inner = Some(s),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        self.inner.as_mut()?.next()
    }
}

/// Streaming `Ext`: flat-maps the body stream over the source stream.
struct ExtStream {
    source: RowStream,
    current: Option<RowStream>,
    var: Name,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    failed: bool,
}

impl Iterator for ExtStream {
    type Item = KResult<Value>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(cur) = &mut self.current {
                match cur.next() {
                    Some(item) => return Some(item),
                    None => self.current = None,
                }
            }
            match self.source.next()? {
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                Ok(el) => {
                    let env2 = self.env.bind(Arc::clone(&self.var), Rt::Val(el));
                    match eval_stream(&self.body, &env2, &self.ctx) {
                        Ok(s) => self.current = Some(s),
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
            }
        }
    }
}

/// Streaming nested-loop join: outer side streams, inner side materialized.
struct NlJoinStream {
    left: RowStream,
    right: Vec<Value>,
    pending: Vec<Value>,
    lvar: Name,
    rvar: Name,
    cond: Arc<Expr>,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    failed: bool,
}

impl NlJoinStream {
    fn emit_for(&mut self, l: Value) -> KResult<()> {
        for r in &self.right {
            let env2 = self
                .env
                .bind(Arc::clone(&self.lvar), Rt::Val(l.clone()))
                .bind(Arc::clone(&self.rvar), Rt::Val(r.clone()));
            if let Value::Bool(true) = eval(&self.cond, &env2, &self.ctx)? {
                let piece = eval(&self.body, &env2, &self.ctx)?;
                let es = piece
                    .elements()
                    .ok_or_else(|| KError::eval("join body must yield a collection"))?;
                self.pending.extend_from_slice(es);
            }
        }
        Ok(())
    }
}

impl Iterator for NlJoinStream {
    type Item = KResult<Value>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if !self.pending.is_empty() {
                return Some(Ok(self.pending.remove(0)));
            }
            match self.left.next()? {
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                Ok(l) => {
                    if let Err(e) = self.emit_for(l) {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
        }
    }
}

/// Streaming indexed join: probes a prebuilt hash index per outer element.
struct IndexedJoinStream {
    left: RowStream,
    index: std::collections::HashMap<Value, Vec<Value>>,
    pending: Vec<Value>,
    lvar: Name,
    rvar: Name,
    left_key: Arc<Expr>,
    cond: Arc<Expr>,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    failed: bool,
}

impl IndexedJoinStream {
    fn emit_for(&mut self, l: Value) -> KResult<()> {
        let lenv = self.env.bind(Arc::clone(&self.lvar), Rt::Val(l.clone()));
        let key = eval(&self.left_key, &lenv, &self.ctx)?;
        let Some(matches) = self.index.get(&key) else {
            return Ok(());
        };
        for r in matches.clone() {
            let env2 = lenv.bind(Arc::clone(&self.rvar), Rt::Val(r));
            if let Value::Bool(true) = eval(&self.cond, &env2, &self.ctx)? {
                let piece = eval(&self.body, &env2, &self.ctx)?;
                let es = piece
                    .elements()
                    .ok_or_else(|| KError::eval("join body must yield a collection"))?;
                self.pending.extend_from_slice(es);
            }
        }
        Ok(())
    }
}

impl Iterator for IndexedJoinStream {
    type Item = KResult<Value>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if !self.pending.is_empty() {
                return Some(Ok(self.pending.remove(0)));
            }
            match self.left.next()? {
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                Ok(l) => {
                    if let Err(e) = self.emit_for(l) {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
        }
    }
}

/// Streaming bounded-parallel `Ext`: pulls a chunk of `width` source
/// elements, evaluates their bodies concurrently, yields the union, then
/// pulls the next chunk. Concurrency never exceeds `width`.
struct ParChunkStream {
    source: RowStream,
    buffer: Vec<Value>,
    var: Name,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    width: usize,
    failed: bool,
}

impl Iterator for ParChunkStream {
    type Item = KResult<Value>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if !self.buffer.is_empty() {
                return Some(Ok(self.buffer.remove(0)));
            }
            let mut chunk = Vec::with_capacity(self.width);
            for item in self.source.by_ref() {
                match item {
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                    Ok(v) => {
                        chunk.push(v);
                        if chunk.len() >= self.width {
                            break;
                        }
                    }
                }
            }
            if chunk.is_empty() {
                return None;
            }
            match eval_parallel(
                &chunk, &self.var, &self.body, &self.env, &self.ctx, self.width,
            ) {
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                Ok(pieces) => {
                    for piece in pieces {
                        match piece.elements() {
                            Some(es) => self.buffer.extend_from_slice(es),
                            None => {
                                self.failed = true;
                                return Some(Err(KError::eval(
                                    "parallel body must yield a collection",
                                )));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kleisli_core::{Capabilities, Driver, DriverRequest, MetricsSnapshot, ValueStream};
    use nrc::name;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A driver that yields `rows` integers and counts how many were
    /// actually pulled — the laziness probe.
    struct CountingDriver {
        rows: i64,
        pulled: Arc<AtomicU64>,
    }

    impl Driver for CountingDriver {
        fn name(&self) -> &str {
            "counting"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::default()
        }
        fn perform(&self, _req: &DriverRequest) -> KResult<ValueStream> {
            let pulled = Arc::clone(&self.pulled);
            let rows = self.rows;
            Ok(Box::new((0..rows).map(move |i| {
                pulled.fetch_add(1, Ordering::Relaxed);
                Ok(Value::record_from(vec![("n", Value::Int(i))]))
            })))
        }
        fn metrics(&self) -> MetricsSnapshot {
            MetricsSnapshot::default()
        }
    }

    fn counting_ctx(rows: i64) -> (Arc<Context>, Arc<AtomicU64>) {
        let pulled = Arc::new(AtomicU64::new(0));
        let mut ctx = Context::new();
        ctx.register_driver(Arc::new(CountingDriver {
            rows,
            pulled: Arc::clone(&pulled),
        }));
        (Arc::new(ctx), pulled)
    }

    fn remote_scan() -> Expr {
        Expr::Remote {
            driver: name("counting"),
            request: DriverRequest::TableScan {
                table: "t".into(),
                columns: None,
            },
        }
    }

    #[test]
    fn first_n_pulls_only_what_it_needs() {
        let (ctx, pulled) = counting_ctx(100_000);
        // U{ {x.n} | \x <- REMOTE }
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
            remote_scan(),
        );
        let got = first_n(&e, 5, &Env::empty(), &ctx).unwrap();
        assert_eq!(got.len(), 5);
        assert!(
            pulled.load(Ordering::Relaxed) <= 6,
            "pulled {} rows for 5 results",
            pulled.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn stream_agrees_with_eager_eval_on_sets() {
        let (ctx, _) = counting_ctx(50);
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::if_(
                Expr::eq(
                    Expr::prim(
                        nrc::Prim::Mod,
                        vec![Expr::proj(Expr::var("x"), "n"), Expr::int(2)],
                    ),
                    Expr::int(0),
                ),
                Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
                Expr::Empty(CollKind::Set),
            ),
            remote_scan(),
        );
        let eager = eval(&e, &Env::empty(), &ctx).unwrap();
        let streamed =
            collect_stream(eval_stream(&e, &Env::empty(), &ctx).unwrap(), CollKind::Set).unwrap();
        assert_eq!(eager, streamed);
        assert_eq!(eager.len(), Some(25));
    }

    #[test]
    fn union_right_side_rows_stay_lazy() {
        // The right arm's *request* may be prefetched on non-blocking
        // drivers (CountingDriver uses the blocking default adapter, so
        // here it is not even submitted), and its rows must never be
        // pulled by a consumer that stops inside the left arm.
        let (ctx, pulled) = counting_ctx(1000);
        let e = Expr::union(
            CollKind::Set,
            Expr::single(CollKind::Set, Expr::int(-1)),
            Expr::ext(
                CollKind::Set,
                "x",
                Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
                remote_scan(),
            ),
        );
        let got = first_n(&e, 1, &Env::empty(), &ctx).unwrap();
        assert_eq!(got, vec![Value::Int(-1)]);
        assert_eq!(pulled.load(Ordering::Relaxed), 0, "no rows may be pulled");
    }

    #[test]
    fn union_right_side_with_local_work_is_not_prefetched() {
        // A right arm whose construction would do real local work (here a
        // Let) keeps the fully lazy path: nothing of it runs at all.
        let (ctx, pulled) = counting_ctx(1000);
        let e = Expr::union(
            CollKind::Set,
            Expr::single(CollKind::Set, Expr::int(-1)),
            Expr::let_(
                "s",
                Expr::int(0),
                Expr::ext(
                    CollKind::Set,
                    "x",
                    Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
                    remote_scan(),
                ),
            ),
        );
        let got = first_n(&e, 1, &Env::empty(), &ctx).unwrap();
        assert_eq!(got, vec![Value::Int(-1)]);
        assert_eq!(pulled.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn streaming_joins_agree_with_eager() {
        let left = Expr::Const(Value::set(
            (0..20)
                .map(|i| Value::record_from(vec![("k", Value::Int(i % 4)), ("a", Value::Int(i))]))
                .collect(),
        ));
        let right = Expr::Const(Value::set(
            (0..15)
                .map(|i| Value::record_from(vec![("k", Value::Int(i % 3)), ("b", Value::Int(i))]))
                .collect(),
        ));
        let body = Expr::single(
            CollKind::Set,
            Expr::record(vec![
                ("a", Expr::proj(Expr::var("l"), "a")),
                ("b", Expr::proj(Expr::var("r"), "b")),
            ]),
        );
        for strategy in [
            JoinStrategy::BlockedNl { block_size: 8 },
            JoinStrategy::IndexedNl,
        ] {
            let e = Expr::Join {
                kind: CollKind::Set,
                strategy,
                left: Arc::new(left.clone()),
                right: Arc::new(right.clone()),
                lvar: name("l"),
                rvar: name("r"),
                left_key: Some(Arc::new(Expr::proj(Expr::var("l"), "k"))),
                right_key: Some(Arc::new(Expr::proj(Expr::var("r"), "k"))),
                cond: Arc::new(Expr::eq(
                    Expr::proj(Expr::var("l"), "k"),
                    Expr::proj(Expr::var("r"), "k"),
                )),
                body: Arc::new(body.clone()),
            };
            let ctx = Arc::new(Context::new());
            let eager = eval(&e, &Env::empty(), &ctx).unwrap();
            let streamed =
                collect_stream(eval_stream(&e, &Env::empty(), &ctx).unwrap(), CollKind::Set)
                    .unwrap();
            assert_eq!(eager, streamed);
        }
    }

    #[test]
    fn par_chunk_stream_matches_sequential() {
        let src = Expr::Const(Value::set((0..30).map(Value::Int).collect()));
        let body = Expr::single(
            CollKind::Set,
            Expr::prim(nrc::Prim::Add, vec![Expr::var("x"), Expr::int(100)]),
        );
        let par = Expr::ParExt {
            kind: CollKind::Set,
            var: name("x"),
            body: Arc::new(body.clone()),
            source: Arc::new(src.clone()),
            max_in_flight: 4,
        };
        let seq = Expr::Ext {
            kind: CollKind::Set,
            var: name("x"),
            body: Arc::new(body),
            source: Arc::new(src),
        };
        let ctx = Arc::new(Context::new());
        let a = collect_stream(
            eval_stream(&par, &Env::empty(), &ctx).unwrap(),
            CollKind::Set,
        )
        .unwrap();
        let b = eval(&seq, &Env::empty(), &ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_propagate_through_streams() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::prim(nrc::Prim::Div, vec![Expr::int(1), Expr::var("x")]),
            ),
            Expr::Const(Value::set(vec![Value::Int(0)])),
        );
        let ctx = Arc::new(Context::new());
        let items: Vec<_> = eval_stream(&e, &Env::empty(), &ctx).unwrap().collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }
}
