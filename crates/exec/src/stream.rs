//! The pipelined (lazy) executor.
//!
//! Section 4 of the paper: "each (x, y) pair in the result can be assembled
//! by retrieving a single element x from DB and single element from the set
//! S(x). Where possible, the Kleisli optimizer will lazily retrieve elements
//! from DB and lazily evaluate the function S in order to generate initial
//! output quickly, and minimize storage of intermediate results."
//!
//! `eval_blocks` compiles a collection-valued NRC expression into a
//! pull-based [`BlockSource`]: generators (`Ext`), unions, conditionals,
//! remote scans, joins and cached subqueries all stream; anything else
//! falls back to the eager evaluator. The unit of transfer is a
//! [`ValueBlock`] whose grain the *consumer* chooses per pull
//! (`next_block(max_rows)`): full drains ask for
//! [`DEFAULT_BLOCK_ROWS`]-row batches — and `Ext` generators whose body
//! is a pure filter/projection evaluate the whole batch in one fused
//! pass — while order-sensitive consumers (`first_n` prefix stops,
//! set-dedup, the `Cached` tee) pull at grain 1, which is byte-identical
//! to the single-row protocol. [`eval_stream`] is exactly that grain-1
//! view.
//!
//! A stream yields elements *without* final collection canonicalization
//! (set deduplication happens only when the stream is collected), which
//! is what makes `first_n` cheap — the intended use, as in the paper, is
//! fast first response on queries whose laziness the optimizer has
//! identified as profitable. Consumers of a set-typed prefix that must
//! not see duplicates use [`first_n_distinct`].

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use kleisli_core::{
    blocks_of_rows, BlockSource, BlockStream, CollKind, KError, KResult, Value, ValueBlock,
    DEFAULT_BLOCK_ROWS,
};
use nrc::{Expr, JoinStrategy, Name};

use crate::context::{request_from_value, CacheLookup, Context, PopulateTicket};
use crate::env::{Env, Rt};
use crate::eval::{eval, eval_parallel};

/// A pull-based stream of collection elements — the single-row view.
/// [`BlockStream`] boxes iterate at grain 1, so any block stream coerces.
pub type RowStream = Box<dyn Iterator<Item = KResult<Value>> + Send>;

/// Stream the elements of a collection-valued expression one row at a
/// time: the grain-1 view of [`eval_blocks`], byte-identical to the
/// pre-block single-row executor (each pull moves at most one row, and
/// only on demand).
pub fn eval_stream(e: &Expr, env: &Env, ctx: &Arc<Context>) -> KResult<RowStream> {
    Ok(Box::new(eval_blocks(e, env, ctx)?))
}

/// Stream the elements of a collection-valued expression as row blocks.
pub fn eval_blocks(e: &Expr, env: &Env, ctx: &Arc<Context>) -> KResult<BlockStream> {
    match e {
        Expr::Empty(_) => Ok(blocks_of_rows(Box::new(std::iter::empty()))),
        Expr::Single(_, inner) => {
            let v = eval(inner, env, ctx)?;
            Ok(slice_blocks(Arc::new(vec![v])))
        }
        Expr::Union(_, a, b) => {
            let sa = eval_blocks(a, env, ctx)?;
            // When the right operand is a spine of remote scans on
            // drivers whose `submit` is genuinely non-blocking, building
            // its stream *now* puts those requests in flight, so the
            // right arm's round-trips overlap consumption of the left
            // arm — the paper's "keep several requests in flight" traded
            // against strict laziness. Rows stay lazy up to the driver's
            // advertised `prefetch_rows`: a prefetching driver's pool
            // worker pulls that many rows ahead once the request
            // completes (so the right arm's row transfer also overlaps
            // the left arm's consumption), while `prefetch_rows = 0`
            // drivers ship rows strictly on demand. Anything that would do
            // real work at construction time (locals, joins, cached
            // populations, or submission through a blocking default
            // adapter) stays fully lazy: a consumer that stops inside
            // the left operand never evaluates it. Cloning the Arc is
            // O(1) regardless of plan size.
            if prefetchable(b, ctx) {
                // A construction error (e.g. a malformed request record)
                // falls through to the lazy path below, preserving the
                // old guarantee that a left-arm-only consumer never sees
                // the right arm fail.
                if let Ok(sb) = eval_blocks(b, env, ctx) {
                    return Ok(Box::new(ChainBlocks {
                        a: Some(sa),
                        b: Some(sb),
                    }));
                }
            }
            let b = Arc::clone(b);
            let env2 = env.clone();
            let ctx2 = Arc::clone(ctx);
            let sb = LazyBlocks::new(move || eval_blocks(&b, &env2, &ctx2));
            Ok(Box::new(ChainBlocks {
                a: Some(sa),
                b: Some(Box::new(sb)),
            }))
        }
        Expr::Ext {
            var, body, source, ..
        } => {
            let src = eval_blocks(source, env, ctx)?;
            // Fused fast path: a body that is a pure projection
            // (`Single`) or filter+projection (`If(c, Single, Empty)`)
            // evaluates a whole source batch in one pass — no per-row
            // body stream construction at all. Anything else flat-maps
            // a body block stream per source element.
            if let Some(fused) = FusedBody::of(body) {
                return Ok(Box::new(FusedExtBlocks {
                    source: Some(src),
                    leftover: VecDeque::new(),
                    fused,
                    var: Arc::clone(var),
                    env: env.clone(),
                    ctx: Arc::clone(ctx),
                    failed: false,
                }));
            }
            Ok(Box::new(ExtBlocks {
                source: Some(src),
                src_rows: VecDeque::new(),
                current: None,
                var: Arc::clone(var),
                body: Arc::clone(body),
                env: env.clone(),
                ctx: Arc::clone(ctx),
                failed: false,
            }))
        }
        Expr::If(c, t, f) => match eval(c, env, ctx)? {
            Value::Bool(true) => eval_blocks(t, env, ctx),
            Value::Bool(false) => eval_blocks(f, env, ctx),
            other => Err(KError::eval(format!(
                "if condition must be bool, got {}",
                other.kind_name()
            ))),
        },
        Expr::Let { var, def, body } => {
            let d = crate::eval::eval_rt(def, env, ctx)?;
            eval_blocks(body, &env.bind(Arc::clone(var), d), ctx)
        }
        Expr::Remote { driver, request } => {
            // Two-phase: the request is in flight from this moment; the
            // stream blocks only when the first block is actually
            // pulled, so independent scans submitted while assembling
            // one pull chain overlap their round-trips. Submission goes
            // through the driver's resilience layer: breaker admission
            // here, deadline/retry/hedging when the first pull redeems
            // it.
            Ok(PendingBlocks::boxed(
                ctx.submit_resilient(driver, request)?,
                ctx,
            ))
        }
        Expr::RemoteApp { driver, arg } => {
            let argv = eval(arg, env, ctx)?;
            let req = request_from_value(&argv)?;
            Ok(PendingBlocks::boxed(ctx.submit_resilient(driver, &req)?, ctx))
        }
        Expr::Join {
            strategy,
            left,
            right,
            lvar,
            rvar,
            left_key,
            right_key,
            cond,
            body,
            ..
        } => {
            // Materialize the inner (right) relation, stream the outer —
            // but build the outer stream *first*: its driver request (if
            // any) is then already in flight while the inner relation is
            // being collected, overlapping the two sources' round-trips.
            let lstream = eval_blocks(left, env, ctx)?;
            let rv: Vec<Value> = collect_rows(eval_blocks(right, env, ctx)?)?;
            match strategy {
                JoinStrategy::IndexedNl => {
                    let (Some(lk), Some(rk)) = (left_key, right_key) else {
                        return Err(KError::eval("indexed join without keys"));
                    };
                    let mut index: std::collections::HashMap<Value, Vec<Value>> =
                        std::collections::HashMap::new();
                    for r in rv {
                        let env2 = env.bind(Arc::clone(rvar), Rt::Val(r.clone()));
                        let key = eval(rk, &env2, ctx)?;
                        index.entry(key).or_default().push(r);
                    }
                    Ok(Box::new(IndexedJoinBlocks {
                        left: lstream,
                        index,
                        pending: VecDeque::new(),
                        lvar: Arc::clone(lvar),
                        rvar: Arc::clone(rvar),
                        left_key: Arc::clone(lk),
                        cond: Arc::clone(cond),
                        body: Arc::clone(body),
                        env: env.clone(),
                        ctx: Arc::clone(ctx),
                        failed: false,
                    }))
                }
                JoinStrategy::BlockedNl { .. } => {
                    // Fold equi-keys into the condition; the two fresh
                    // nodes reference the existing key/cond subplans by
                    // Arc, so this is O(1) in plan size.
                    let cond = match (left_key, right_key) {
                        (Some(lk), Some(rk)) => Arc::new(Expr::and_arc(
                            Arc::new(Expr::eq_arc(Arc::clone(lk), Arc::clone(rk))),
                            Arc::clone(cond),
                        )),
                        _ => Arc::clone(cond),
                    };
                    Ok(Box::new(NlJoinBlocks {
                        left: lstream,
                        right: rv,
                        pending: VecDeque::new(),
                        lvar: Arc::clone(lvar),
                        rvar: Arc::clone(rvar),
                        cond,
                        body: Arc::clone(body),
                        env: env.clone(),
                        ctx: Arc::clone(ctx),
                        failed: false,
                    }))
                }
            }
        }
        Expr::Cached { id, expr } => match ctx.cache_cell(*id).lookup_or_begin() {
            // Hit: stream the memoized rows; no driver traffic at all.
            CacheLookup::Hit(v) => value_blocks(&v),
            // Re-entrant lookup (this thread is populating the same id
            // higher up): stream the subquery directly, uncached.
            CacheLookup::Reentrant => eval_blocks(expr, env, ctx),
            // Miss: this consumer is the populator. When the subplan's
            // collection kind is syntactically evident we stream the
            // subquery lazily, teeing rows aside, and commit the canonical
            // collection once the stream is exhausted — so `first_n` over
            // a cached remote scan still pulls only what it needs (an
            // abandoned prefix aborts the ticket and leaves the slot
            // empty). The ticket rides inside the stream, keeping the
            // single-flight guarantee of the eager path: racing
            // evaluators block until commit or abort. The tee is
            // order-sensitive (it must record every row that passed),
            // so it stays a single-row operator over the grain-1 view.
            CacheLookup::Miss(ticket) => match expr.coll_kind_hint() {
                Some(kind) => {
                    // An Err here drops the ticket (abort) on the way out.
                    let inner: RowStream = Box::new(eval_blocks(expr, env, ctx)?);
                    Ok(blocks_of_rows(Box::new(CachingStream {
                        inner,
                        ticket: Some(ticket),
                        rows: Vec::new(),
                        kind,
                        done: false,
                    })))
                }
                None => {
                    // Kind unknowable from syntax: populate eagerly so the
                    // cached value is canonicalized exactly like the eager
                    // evaluator's, then stream it.
                    let v = eval(expr, env, ctx)?;
                    ticket.commit(v.clone());
                    value_blocks(&v)
                }
            },
        },
        Expr::ParExt {
            var,
            body,
            source,
            max_in_flight,
            batch,
            ..
        } => {
            // Chunk assembly is order-sensitive (a chunk boundary is an
            // observable concurrency boundary), so the parallel operator
            // keeps its single-row pull loop over the grain-1 view.
            let src: RowStream = Box::new(eval_blocks(source, env, ctx)?);
            Ok(blocks_of_rows(Box::new(ParChunkStream {
                source: src,
                buffer: Vec::new(),
                var: Arc::clone(var),
                body: Arc::clone(body),
                env: env.clone(),
                ctx: Arc::clone(ctx),
                width: (*max_in_flight).max(1),
                batch: batch.clone(),
                guard: None,
                failed: false,
            })))
        }
        // Everything else: evaluate eagerly and stream the collection.
        other => {
            let v = eval(other, env, ctx)?;
            value_blocks(&v)
        }
    }
}

/// Stream the elements of an already-computed collection value without
/// copying it: the source shares the collection's element vector (one
/// `Arc` bump) and clones elements only as they are pulled — a `first_n`
/// over a huge cache hit touches `n` elements, not the whole collection.
fn value_blocks(v: &Value) -> KResult<BlockStream> {
    let elems: Arc<Vec<Value>> = match v {
        Value::Set(es) | Value::Bag(es) | Value::List(es) => Arc::clone(es),
        other => {
            return Err(KError::eval(format!(
                "cannot stream a non-collection ({})",
                other.kind_name()
            )))
        }
    };
    Ok(slice_blocks(elems))
}

fn slice_blocks(elems: Arc<Vec<Value>>) -> BlockStream {
    Box::new(SliceBlocks { elems, i: 0 })
}

/// Blocks over a shared element vector (cache hits, `Single`, the eager
/// fallback). Clones elements only as they are packed.
struct SliceBlocks {
    elems: Arc<Vec<Value>>,
    i: usize,
}

impl BlockSource for SliceBlocks {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        let n = (self.elems.len() - self.i).min(max_rows.max(1));
        if n == 0 {
            return None;
        }
        let mut b = ValueBlock::with_capacity(n);
        for v in &self.elems[self.i..self.i + n] {
            b.push_row(v.clone());
        }
        self.i += n;
        Some(b)
    }
}

/// Pull at most `n` elements from the stream of `e` — the "fast response"
/// path. Returns the elements in arrival order. Pulls at grain 1: the
/// prefix stop must not cause even one row more than demanded to move.
pub fn first_n(e: &Expr, n: usize, env: &Env, ctx: &Arc<Context>) -> KResult<Vec<Value>> {
    let mut out = Vec::with_capacity(n);
    for item in eval_stream(e, env, ctx)? {
        out.push(item?);
        if out.len() >= n {
            break;
        }
    }
    Ok(out)
}

/// [`first_n`] for *set*-typed plans: streams skip collection
/// canonicalization (see the module docs), so a set query can yield the
/// same element several times; here duplicates are dropped and do not
/// count toward `n`. First-arrival order is preserved.
pub fn first_n_distinct(e: &Expr, n: usize, env: &Env, ctx: &Arc<Context>) -> KResult<Vec<Value>> {
    let mut out = Vec::with_capacity(n);
    let mut seen: HashSet<Value> = HashSet::new();
    if n == 0 {
        return Ok(out);
    }
    for item in eval_stream(e, env, ctx)? {
        let v = item?;
        if seen.insert(v.clone()) {
            out.push(v);
            if out.len() >= n {
                break;
            }
        }
    }
    Ok(out)
}

/// Collect a stream into a canonical collection of the given kind.
pub fn collect_stream(stream: RowStream, kind: CollKind) -> KResult<Value> {
    let elems: Vec<Value> = stream.collect::<KResult<_>>()?;
    Ok(Value::collection(kind, elems))
}

/// Collect a block stream into a canonical collection, draining at the
/// full [`DEFAULT_BLOCK_ROWS`] grain — the batched full-drain path.
pub fn collect_blocks(stream: BlockStream, kind: CollKind) -> KResult<Value> {
    Ok(Value::collection(kind, collect_rows(stream)?))
}

/// Drain a block stream to a row vector at the full grain.
fn collect_rows(mut stream: BlockStream) -> KResult<Vec<Value>> {
    let mut elems = Vec::new();
    while let Some(b) = stream.next_block(DEFAULT_BLOCK_ROWS) {
        for item in b.into_rows() {
            elems.push(item?);
        }
    }
    Ok(elems)
}

/// Lazy population of a [`crate::context::CacheCell`]: passes the inner
/// stream's rows through while teeing them aside, and commits the
/// canonical collection (same canonicalization as the eager evaluator's
/// `Value::collection`) when the inner stream is exhausted. Dropping the
/// stream early drops the ticket uncommitted, releasing the single-flight
/// claim with the slot still empty.
struct CachingStream {
    inner: RowStream,
    ticket: Option<PopulateTicket>,
    rows: Vec<Value>,
    kind: CollKind,
    done: bool,
}

impl Iterator for CachingStream {
    type Item = KResult<Value>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.inner.next() {
            Some(Ok(v)) => {
                self.rows.push(v.clone());
                Some(Ok(v))
            }
            Some(Err(e)) => {
                self.done = true;
                self.ticket = None; // abort: do not cache a partial result
                Some(Err(e))
            }
            None => {
                self.done = true;
                if let Some(t) = self.ticket.take() {
                    t.commit(Value::collection(self.kind, std::mem::take(&mut self.rows)));
                }
                None
            }
        }
    }
}

/// Is building a stream for `e` effectively free of *blocking* work —
/// nothing beyond non-blocking driver submissions, environment lookups
/// and constant collections? For such expressions the union arm builds
/// the stream eagerly (prefetching the remote requests); everything else
/// (locals with side work, joins that materialize, cached populations,
/// or drivers whose `submit` runs the request inline) keeps the fully
/// lazy path. `RemoteApp` arguments are required to be remote-free
/// because they are evaluated at construction time.
fn prefetchable(e: &Expr, ctx: &Context) -> bool {
    let nonblocking = |driver: &str| {
        ctx.driver(driver)
            .map(|d| d.nonblocking_submit())
            .unwrap_or(false)
    };
    match e {
        Expr::Remote { driver, .. } => nonblocking(driver),
        Expr::RemoteApp { driver, arg } => !arg.touches_remote() && nonblocking(driver),
        Expr::Ext { source, .. } | Expr::ParExt { source, .. } => prefetchable(source, ctx),
        Expr::Union(_, a, b) => prefetchable(a, ctx) && prefetchable(b, ctx),
        _ => false,
    }
}

/// Two block streams back to back — the union operator. Blocks pass
/// through at the consumer's grain; like the old row-level chain, an
/// error block from the left arm does not gate the right arm (a consumer
/// that stops at the error — all of them in practice — never touches it).
struct ChainBlocks {
    a: Option<BlockStream>,
    b: Option<BlockStream>,
}

impl BlockSource for ChainBlocks {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        if let Some(a) = &mut self.a {
            if let Some(block) = a.next_block(max_rows) {
                return Some(block);
            }
            self.a = None;
        }
        let b = self.b.as_mut()?;
        match b.next_block(max_rows) {
            Some(block) => Some(block),
            None => {
                self.b = None;
                None
            }
        }
    }
}

/// A driver request in flight: submission already happened (the source is
/// working, bounded by its admission gate); the first pull redeems the
/// handle and then streams blocks as before. Dropping the stream unpulled
/// cancels the request, releasing the driver's admission ticket.
///
/// # Row prefetch (`Capabilities::prefetch_rows`)
///
/// On drivers advertising a positive `prefetch_rows`, the stream this
/// redeems is backed by the driver pool's bounded block-prefetch buffer:
/// the pool worker that performed the request keeps pulling row blocks
/// ahead of whoever consumes this stream (up to `prefetch_rows` rows),
/// so per-row transfer latency overlaps consumer work (and other
/// streams' rows — union arms and join sides fill their buffers
/// concurrently). This is the Section-4 laziness trade at *row*
/// granularity, and it composes with `nonblocking_submit` the same way
/// request prefetch does: only pool-submitting drivers ever prefetch, so
/// one-method (default-adapter) drivers and `prefetch_rows = 0` drivers
/// keep the fully-lazy, byte-identical pull behavior — `first_n` over
/// them ships exactly the demanded prefix. Over a prefetching driver,
/// `first_n` may leave up to a buffer's worth of rows
/// shipped-but-unread; dropping this stream early closes that buffer
/// (stopping refill work at the next block boundary), drops the buffered
/// blocks, and cancels/releases the request's admission ticket — nothing
/// leaks. A join's inner collection simply drains the buffer to
/// exhaustion.
struct PendingBlocks {
    handle: Option<kleisli_core::resilience::ResilientHandle>,
    inner: Option<BlockStream>,
    /// Query budget, checked at every block boundary so a mid-stream
    /// stall resolves as `Timeout`/`Cancelled` at the next pull instead
    /// of silently hanging the consumer forever. (Grain-1 consumers
    /// check per row, exactly as before.)
    deadline: Option<std::time::Instant>,
    cancel: Option<Arc<kleisli_core::CancelToken>>,
    failed: bool,
}

impl PendingBlocks {
    fn boxed(handle: kleisli_core::resilience::ResilientHandle, ctx: &Context) -> BlockStream {
        Box::new(PendingBlocks {
            deadline: handle.deadline(),
            cancel: ctx.cancel_token().cloned(),
            handle: Some(handle),
            inner: None,
            failed: false,
        })
    }

    fn over_budget(&self) -> Option<KError> {
        if let Some(t) = &self.cancel {
            if t.is_cancelled() {
                return Some(KError::cancelled("query cancelled"));
            }
        }
        if let Some(d) = self.deadline {
            if std::time::Instant::now() >= d {
                return Some(KError::timeout(
                    "query",
                    "deadline exceeded at row boundary",
                ));
            }
        }
        None
    }
}

impl BlockSource for PendingBlocks {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        if self.failed {
            return None;
        }
        if self.inner.is_none() {
            match self.handle.take()?.wait() {
                Ok(s) => self.inner = Some(s),
                Err(e) => {
                    self.failed = true;
                    return Some(ValueBlock::of_err(e));
                }
            }
        }
        if let Some(e) = self.over_budget() {
            self.failed = true;
            // Drop the redeemed stream now: over a prefetching driver
            // this closes the block buffer and stops refill work.
            self.inner = None;
            return Some(ValueBlock::of_err(e));
        }
        self.inner.as_mut()?.next_block(max_rows)
    }
}

/// A stream constructed on first pull (for the right side of unions).
struct LazyBlocks<F: FnOnce() -> KResult<BlockStream>> {
    make: Option<F>,
    inner: Option<BlockStream>,
    failed: bool,
}

impl<F: FnOnce() -> KResult<BlockStream>> LazyBlocks<F> {
    fn new(make: F) -> Self {
        LazyBlocks {
            make: Some(make),
            inner: None,
            failed: false,
        }
    }
}

impl<F: FnOnce() -> KResult<BlockStream> + Send> BlockSource for LazyBlocks<F> {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        if self.failed {
            return None;
        }
        if self.inner.is_none() {
            match (self.make.take()?)() {
                Ok(s) => self.inner = Some(s),
                Err(e) => {
                    self.failed = true;
                    return Some(ValueBlock::of_err(e));
                }
            }
        }
        self.inner.as_mut()?.next_block(max_rows)
    }
}

/// The body shapes the `Ext` generator evaluates in one fused pass over
/// a whole source batch: no body stream is ever constructed, the
/// filter/projection runs right in the generator's pull loop.
enum FusedBody {
    /// `{ f(x) }` — pure per-element projection.
    Project { inner: Arc<Expr> },
    /// `if p(x) then { f(x) } else {}` — filter + projection.
    FilterProject { cond: Arc<Expr>, inner: Arc<Expr> },
}

impl FusedBody {
    fn of(body: &Expr) -> Option<FusedBody> {
        match body {
            Expr::Single(_, inner) => Some(FusedBody::Project {
                inner: Arc::clone(inner),
            }),
            Expr::If(c, t, f) => match (t.as_ref(), f.as_ref()) {
                (Expr::Single(_, inner), Expr::Empty(_)) => Some(FusedBody::FilterProject {
                    cond: Arc::clone(c),
                    inner: Arc::clone(inner),
                }),
                _ => None,
            },
            _ => None,
        }
    }

    /// Evaluate the body for one source element: `Ok(Some)` emits,
    /// `Ok(None)` is a filtered-out element. Error semantics match the
    /// unfused path exactly (a body-stream construction error there).
    fn apply(&self, el: Value, var: &Name, env: &Env, ctx: &Arc<Context>) -> KResult<Option<Value>> {
        let env2 = env.bind(Arc::clone(var), Rt::Val(el));
        match self {
            FusedBody::Project { inner } => eval(inner, &env2, ctx).map(Some),
            FusedBody::FilterProject { cond, inner } => match eval(cond, &env2, ctx)? {
                Value::Bool(true) => eval(inner, &env2, ctx).map(Some),
                Value::Bool(false) => Ok(None),
                other => Err(KError::eval(format!(
                    "if condition must be bool, got {}",
                    other.kind_name()
                ))),
            },
        }
    }
}

/// Fused streaming `Ext`: filter/projection over a batch at a time. The
/// source is pulled at exactly the grain still needed for the output
/// block (`max_rows - packed`), so a grain-1 consumer induces grain-1
/// source pulls — byte-identical laziness — while a full drain moves
/// whole batches through one `apply` loop per block.
struct FusedExtBlocks {
    source: Option<BlockStream>,
    /// Source rows pulled but not yet evaluated (a filter that passed
    /// fewer rows than requested leaves the rest here).
    leftover: VecDeque<KResult<Value>>,
    fused: FusedBody,
    var: Name,
    env: Env,
    ctx: Arc<Context>,
    failed: bool,
}

impl BlockSource for FusedExtBlocks {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        if self.failed {
            return None;
        }
        let max = max_rows.max(1);
        let mut out = ValueBlock::with_capacity(max.min(DEFAULT_BLOCK_ROWS));
        loop {
            while out.len() < max {
                let Some(row) = self.leftover.pop_front() else {
                    break;
                };
                match row {
                    Err(e) => {
                        // A source error ends the generator: good rows
                        // already packed ship in front of it.
                        self.failed = true;
                        out.push_err(e);
                        return Some(out);
                    }
                    Ok(el) => match self.fused.apply(el, &self.var, &self.env, &self.ctx) {
                        Ok(Some(v)) => out.push_row(v),
                        Ok(None) => {}
                        Err(e) => {
                            self.failed = true;
                            out.push_err(e);
                            return Some(out);
                        }
                    },
                }
            }
            if out.len() >= max {
                return Some(out);
            }
            let Some(src) = &mut self.source else {
                return if out.is_empty() { None } else { Some(out) };
            };
            match src.next_block(max - out.len()) {
                Some(b) => {
                    if b.ends_with_err() {
                        self.source = None;
                    }
                    self.leftover.extend(b.into_rows());
                }
                None => {
                    self.source = None;
                    return if out.is_empty() { None } else { Some(out) };
                }
            }
        }
    }
}

/// Streaming `Ext` for general bodies: flat-maps a body block stream
/// over the source stream. Body blocks pass through at the consumer's
/// grain.
struct ExtBlocks {
    source: Option<BlockStream>,
    /// Source rows pulled but not yet expanded.
    src_rows: VecDeque<KResult<Value>>,
    current: Option<BlockStream>,
    var: Name,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    failed: bool,
}

impl BlockSource for ExtBlocks {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        if self.failed {
            return None;
        }
        let max = max_rows.max(1);
        loop {
            if let Some(cur) = &mut self.current {
                match cur.next_block(max) {
                    // Pass body blocks (and body errors) through, as the
                    // row-level operator did.
                    Some(b) => return Some(b),
                    None => self.current = None,
                }
            }
            let next = match self.src_rows.pop_front() {
                Some(r) => Some(r),
                None => {
                    let src = self.source.as_mut()?;
                    match src.next_block(max) {
                        Some(b) => {
                            if b.ends_with_err() {
                                self.source = None;
                            }
                            self.src_rows.extend(b.into_rows());
                            self.src_rows.pop_front()
                        }
                        None => {
                            self.source = None;
                            return None;
                        }
                    }
                }
            };
            match next {
                None => return None,
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(ValueBlock::of_err(e));
                }
                Some(Ok(el)) => {
                    let env2 = self.env.bind(Arc::clone(&self.var), Rt::Val(el));
                    match eval_blocks(&self.body, &env2, &self.ctx) {
                        Ok(s) => self.current = Some(s),
                        Err(e) => {
                            self.failed = true;
                            return Some(ValueBlock::of_err(e));
                        }
                    }
                }
            }
        }
    }
}

/// Pull a single row off a block stream (grain-1 helper for the join
/// operators' outer side, which expands one outer element at a time).
fn next_row(s: &mut BlockStream) -> Option<KResult<Value>> {
    s.next_block(1).and_then(|b| b.into_rows().next())
}

/// Drain up to `max` pending join results into one block.
fn drain_pending(pending: &mut VecDeque<Value>, max: usize) -> ValueBlock {
    let k = max.max(1).min(pending.len());
    let mut b = ValueBlock::with_capacity(k);
    for v in pending.drain(..k) {
        b.push_row(v);
    }
    b
}

/// Streaming nested-loop join: outer side streams, inner side materialized.
struct NlJoinBlocks {
    left: BlockStream,
    right: Vec<Value>,
    pending: VecDeque<Value>,
    lvar: Name,
    rvar: Name,
    cond: Arc<Expr>,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    failed: bool,
}

impl NlJoinBlocks {
    fn emit_for(&mut self, l: Value) -> KResult<()> {
        for r in &self.right {
            let env2 = self
                .env
                .bind(Arc::clone(&self.lvar), Rt::Val(l.clone()))
                .bind(Arc::clone(&self.rvar), Rt::Val(r.clone()));
            if let Value::Bool(true) = eval(&self.cond, &env2, &self.ctx)? {
                let piece = eval(&self.body, &env2, &self.ctx)?;
                let es = piece
                    .elements()
                    .ok_or_else(|| KError::eval("join body must yield a collection"))?;
                self.pending.extend(es.iter().cloned());
            }
        }
        Ok(())
    }
}

impl BlockSource for NlJoinBlocks {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        if self.failed {
            return None;
        }
        loop {
            if !self.pending.is_empty() {
                return Some(drain_pending(&mut self.pending, max_rows));
            }
            match next_row(&mut self.left)? {
                Err(e) => {
                    self.failed = true;
                    return Some(ValueBlock::of_err(e));
                }
                Ok(l) => {
                    if let Err(e) = self.emit_for(l) {
                        self.failed = true;
                        return Some(ValueBlock::of_err(e));
                    }
                }
            }
        }
    }
}

/// Streaming indexed join: probes a prebuilt hash index per outer element.
struct IndexedJoinBlocks {
    left: BlockStream,
    index: std::collections::HashMap<Value, Vec<Value>>,
    pending: VecDeque<Value>,
    lvar: Name,
    rvar: Name,
    left_key: Arc<Expr>,
    cond: Arc<Expr>,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    failed: bool,
}

impl IndexedJoinBlocks {
    fn emit_for(&mut self, l: Value) -> KResult<()> {
        let lenv = self.env.bind(Arc::clone(&self.lvar), Rt::Val(l.clone()));
        let key = eval(&self.left_key, &lenv, &self.ctx)?;
        let Some(matches) = self.index.get(&key) else {
            return Ok(());
        };
        for r in matches.clone() {
            let env2 = lenv.bind(Arc::clone(&self.rvar), Rt::Val(r));
            if let Value::Bool(true) = eval(&self.cond, &env2, &self.ctx)? {
                let piece = eval(&self.body, &env2, &self.ctx)?;
                let es = piece
                    .elements()
                    .ok_or_else(|| KError::eval("join body must yield a collection"))?;
                self.pending.extend(es.iter().cloned());
            }
        }
        Ok(())
    }
}

impl BlockSource for IndexedJoinBlocks {
    fn next_block(&mut self, max_rows: usize) -> Option<ValueBlock> {
        if self.failed {
            return None;
        }
        loop {
            if !self.pending.is_empty() {
                return Some(drain_pending(&mut self.pending, max_rows));
            }
            match next_row(&mut self.left)? {
                Err(e) => {
                    self.failed = true;
                    return Some(ValueBlock::of_err(e));
                }
                Ok(l) => {
                    if let Err(e) = self.emit_for(l) {
                        self.failed = true;
                        return Some(ValueBlock::of_err(e));
                    }
                }
            }
        }
    }
}

/// Streaming bounded-parallel `Ext`: pulls a chunk of `width` source
/// elements, evaluates their bodies concurrently, yields the union, then
/// pulls the next chunk. Concurrency never exceeds `width`.
struct ParChunkStream {
    source: RowStream,
    buffer: Vec<Value>,
    var: Name,
    body: Arc<Expr>,
    env: Env,
    ctx: Arc<Context>,
    width: usize,
    /// The optimizer's batching mark: assemble chunks at the driver's
    /// key-per-request grain (never below `width`) and warm each one up
    /// into batched wire round-trips before its bodies run. Output
    /// values and their order are unchanged — only the wire traffic is.
    batch: Option<nrc::BatchSpec>,
    /// The current chunk's seeded flights; replaced (and the previous
    /// chunk's seeds released) at each warm-up.
    guard: Option<crate::context::BatchGuard>,
    failed: bool,
}

impl Iterator for ParChunkStream {
    type Item = KResult<Value>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let grain = match &self.batch {
            Some(spec) => self.width.max(spec.max_keys),
            None => self.width,
        };
        loop {
            if !self.buffer.is_empty() {
                return Some(Ok(self.buffer.remove(0)));
            }
            let mut chunk = Vec::with_capacity(grain);
            for item in self.source.by_ref() {
                match item {
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                    Ok(v) => {
                        chunk.push(v);
                        if chunk.len() >= grain {
                            break;
                        }
                    }
                }
            }
            if chunk.is_empty() {
                return None;
            }
            if let Some(spec) = &self.batch {
                self.guard =
                    crate::eval::warm_up_batch(spec, &chunk, &self.var, &self.env, &self.ctx);
            }
            match eval_parallel(
                &chunk, &self.var, &self.body, &self.env, &self.ctx, self.width,
            ) {
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                Ok(pieces) => {
                    for piece in pieces {
                        match piece.elements() {
                            Some(es) => self.buffer.extend_from_slice(es),
                            None => {
                                self.failed = true;
                                return Some(Err(KError::eval(
                                    "parallel body must yield a collection",
                                )));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kleisli_core::{
        blocks_of_rows, BlockStream, Capabilities, Driver, DriverRequest, MetricsSnapshot,
    };
    use nrc::name;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A driver that yields `rows` integers and counts how many were
    /// actually pulled — the laziness probe.
    struct CountingDriver {
        rows: i64,
        pulled: Arc<AtomicU64>,
    }

    impl Driver for CountingDriver {
        fn name(&self) -> &str {
            "counting"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::default()
        }
        fn perform(&self, _req: &DriverRequest) -> KResult<BlockStream> {
            let pulled = Arc::clone(&self.pulled);
            let rows = self.rows;
            Ok(blocks_of_rows(Box::new((0..rows).map(move |i| {
                pulled.fetch_add(1, Ordering::Relaxed);
                Ok(Value::record_from(vec![("n", Value::Int(i))]))
            }))))
        }
        fn metrics(&self) -> MetricsSnapshot {
            MetricsSnapshot::default()
        }
    }

    fn counting_ctx(rows: i64) -> (Arc<Context>, Arc<AtomicU64>) {
        let pulled = Arc::new(AtomicU64::new(0));
        let mut ctx = Context::new();
        ctx.register_driver(Arc::new(CountingDriver {
            rows,
            pulled: Arc::clone(&pulled),
        }));
        (Arc::new(ctx), pulled)
    }

    fn remote_scan() -> Expr {
        Expr::Remote {
            driver: name("counting"),
            request: DriverRequest::TableScan {
                table: "t".into(),
                columns: None,
            },
        }
    }

    #[test]
    fn first_n_pulls_only_what_it_needs() {
        let (ctx, pulled) = counting_ctx(100_000);
        // U{ {x.n} | \x <- REMOTE }
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
            remote_scan(),
        );
        let got = first_n(&e, 5, &Env::empty(), &ctx).unwrap();
        assert_eq!(got.len(), 5);
        assert!(
            pulled.load(Ordering::Relaxed) <= 6,
            "pulled {} rows for 5 results",
            pulled.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn stream_agrees_with_eager_eval_on_sets() {
        let (ctx, _) = counting_ctx(50);
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::if_(
                Expr::eq(
                    Expr::prim(
                        nrc::Prim::Mod,
                        vec![Expr::proj(Expr::var("x"), "n"), Expr::int(2)],
                    ),
                    Expr::int(0),
                ),
                Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
                Expr::Empty(CollKind::Set),
            ),
            remote_scan(),
        );
        let eager = eval(&e, &Env::empty(), &ctx).unwrap();
        let streamed =
            collect_stream(eval_stream(&e, &Env::empty(), &ctx).unwrap(), CollKind::Set).unwrap();
        assert_eq!(eager, streamed);
        assert_eq!(eager.len(), Some(25));
    }

    #[test]
    fn block_drain_agrees_with_row_drain() {
        // The batched full-drain path (fused filter/project at
        // DEFAULT_BLOCK_ROWS grain) and the grain-1 view must produce
        // identical collections.
        let (ctx, _) = counting_ctx(500);
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::if_(
                Expr::eq(
                    Expr::prim(
                        nrc::Prim::Mod,
                        vec![Expr::proj(Expr::var("x"), "n"), Expr::int(3)],
                    ),
                    Expr::int(0),
                ),
                Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
                Expr::Empty(CollKind::Set),
            ),
            remote_scan(),
        );
        let rows =
            collect_stream(eval_stream(&e, &Env::empty(), &ctx).unwrap(), CollKind::Set).unwrap();
        let blocks =
            collect_blocks(eval_blocks(&e, &Env::empty(), &ctx).unwrap(), CollKind::Set).unwrap();
        assert_eq!(rows, blocks);
        assert_eq!(blocks.len(), Some(167));
    }

    #[test]
    fn blocks_honor_the_consumer_grain() {
        let (ctx, _) = counting_ctx(100);
        let e = Expr::ext(
            CollKind::Bag,
            "x",
            Expr::single(CollKind::Bag, Expr::proj(Expr::var("x"), "n")),
            remote_scan(),
        );
        let mut s = eval_blocks(&e, &Env::empty(), &ctx).unwrap();
        let b = s.next_block(7).unwrap();
        assert_eq!(b.len(), 7, "a fused generator fills the requested grain");
        let b = s.next_block(1).unwrap();
        assert_eq!(b.len(), 1);
        let mut total = 8;
        while let Some(b) = s.next_block(DEFAULT_BLOCK_ROWS) {
            assert!(b.len() <= DEFAULT_BLOCK_ROWS);
            total += b.len();
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn union_right_side_rows_stay_lazy() {
        // The right arm's *request* may be prefetched on non-blocking
        // drivers (CountingDriver uses the blocking default adapter, so
        // here it is not even submitted), and its rows must never be
        // pulled by a consumer that stops inside the left arm.
        let (ctx, pulled) = counting_ctx(1000);
        let e = Expr::union(
            CollKind::Set,
            Expr::single(CollKind::Set, Expr::int(-1)),
            Expr::ext(
                CollKind::Set,
                "x",
                Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
                remote_scan(),
            ),
        );
        let got = first_n(&e, 1, &Env::empty(), &ctx).unwrap();
        assert_eq!(got, vec![Value::Int(-1)]);
        assert_eq!(pulled.load(Ordering::Relaxed), 0, "no rows may be pulled");
    }

    #[test]
    fn union_right_side_with_local_work_is_not_prefetched() {
        // A right arm whose construction would do real local work (here a
        // Let) keeps the fully lazy path: nothing of it runs at all.
        let (ctx, pulled) = counting_ctx(1000);
        let e = Expr::union(
            CollKind::Set,
            Expr::single(CollKind::Set, Expr::int(-1)),
            Expr::let_(
                "s",
                Expr::int(0),
                Expr::ext(
                    CollKind::Set,
                    "x",
                    Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
                    remote_scan(),
                ),
            ),
        );
        let got = first_n(&e, 1, &Env::empty(), &ctx).unwrap();
        assert_eq!(got, vec![Value::Int(-1)]);
        assert_eq!(pulled.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn streaming_joins_agree_with_eager() {
        let left = Expr::Const(Value::set(
            (0..20)
                .map(|i| Value::record_from(vec![("k", Value::Int(i % 4)), ("a", Value::Int(i))]))
                .collect(),
        ));
        let right = Expr::Const(Value::set(
            (0..15)
                .map(|i| Value::record_from(vec![("k", Value::Int(i % 3)), ("b", Value::Int(i))]))
                .collect(),
        ));
        let body = Expr::single(
            CollKind::Set,
            Expr::record(vec![
                ("a", Expr::proj(Expr::var("l"), "a")),
                ("b", Expr::proj(Expr::var("r"), "b")),
            ]),
        );
        for strategy in [
            JoinStrategy::BlockedNl { block_size: 8 },
            JoinStrategy::IndexedNl,
        ] {
            let e = Expr::Join {
                kind: CollKind::Set,
                strategy,
                left: Arc::new(left.clone()),
                right: Arc::new(right.clone()),
                lvar: name("l"),
                rvar: name("r"),
                left_key: Some(Arc::new(Expr::proj(Expr::var("l"), "k"))),
                right_key: Some(Arc::new(Expr::proj(Expr::var("r"), "k"))),
                cond: Arc::new(Expr::eq(
                    Expr::proj(Expr::var("l"), "k"),
                    Expr::proj(Expr::var("r"), "k"),
                )),
                body: Arc::new(body.clone()),
            };
            let ctx = Arc::new(Context::new());
            let eager = eval(&e, &Env::empty(), &ctx).unwrap();
            let streamed =
                collect_stream(eval_stream(&e, &Env::empty(), &ctx).unwrap(), CollKind::Set)
                    .unwrap();
            let blocked =
                collect_blocks(eval_blocks(&e, &Env::empty(), &ctx).unwrap(), CollKind::Set)
                    .unwrap();
            assert_eq!(eager, streamed);
            assert_eq!(eager, blocked);
        }
    }

    #[test]
    fn par_chunk_stream_matches_sequential() {
        let src = Expr::Const(Value::set((0..30).map(Value::Int).collect()));
        let body = Expr::single(
            CollKind::Set,
            Expr::prim(nrc::Prim::Add, vec![Expr::var("x"), Expr::int(100)]),
        );
        let par = Expr::ParExt {
            kind: CollKind::Set,
            var: name("x"),
            body: Arc::new(body.clone()),
            source: Arc::new(src.clone()),
            max_in_flight: 4,
            batch: None,
        };
        let seq = Expr::Ext {
            kind: CollKind::Set,
            var: name("x"),
            body: Arc::new(body),
            source: Arc::new(src),
        };
        let ctx = Arc::new(Context::new());
        let a = collect_stream(
            eval_stream(&par, &Env::empty(), &ctx).unwrap(),
            CollKind::Set,
        )
        .unwrap();
        let b = eval(&seq, &Env::empty(), &ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_propagate_through_streams() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::prim(nrc::Prim::Div, vec![Expr::int(1), Expr::var("x")]),
            ),
            Expr::Const(Value::set(vec![Value::Int(0)])),
        );
        let ctx = Arc::new(Context::new());
        let items: Vec<_> = eval_stream(&e, &Env::empty(), &ctx).unwrap().collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    #[test]
    fn a_mid_batch_error_ships_the_good_rows_first() {
        // 1/(5-x) over 0..8: rows 0..4 evaluate, x=5 divides by zero.
        // In one fused batch, the good rows arrive in front of the
        // error, and the stream ends after it — exactly the single-row
        // order.
        let e = Expr::ext(
            CollKind::List,
            "x",
            Expr::single(
                CollKind::List,
                Expr::prim(
                    nrc::Prim::Div,
                    vec![
                        Expr::int(1),
                        Expr::prim(nrc::Prim::Sub, vec![Expr::int(5), Expr::var("x")]),
                    ],
                ),
            ),
            Expr::Const(Value::list((0..8).map(Value::Int).collect())),
        );
        let ctx = Arc::new(Context::new());
        let mut s = eval_blocks(&e, &Env::empty(), &ctx).unwrap();
        let b = s.next_block(DEFAULT_BLOCK_ROWS).unwrap();
        assert_eq!(b.len(), 6, "five good rows, then the error");
        assert!(b.ends_with_err());
        assert!(b.rows()[..5].iter().all(|r| r.is_ok()));
        assert!(s.next_block(DEFAULT_BLOCK_ROWS).is_none(), "ends after the error");
        // The grain-1 view sees the same rows in the same order.
        let items: Vec<_> = eval_stream(&e, &Env::empty(), &ctx).unwrap().collect();
        assert_eq!(items.len(), 6);
        assert!(items[5].is_err());
    }
}
