//! The latency-overlapping scheduler against an instrumented driver:
//!
//! * the driver's `max_concurrent_requests` is an *enforced* admission
//!   limit — in-flight requests never exceed it, even when the plan asks
//!   for more parallelism;
//! * independent union arms and join sides overlap their round-trips;
//! * a dropped or cancelled request handle never leaks an admission
//!   ticket: subsequent submits on a full budget still proceed.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kleisli_core::testutil::SlowDriver;
use kleisli_core::{CollKind, DriverRequest, Value};
use kleisli_exec::{collect_stream, eval, eval_stream, Context, Env};
use nrc::{name, Expr};

fn scan(driver: &str) -> Expr {
    Expr::Remote {
        driver: name(driver),
        request: DriverRequest::TableScan {
            table: "t".into(),
            columns: None,
        },
    }
}

fn wrap_ext(inner: Expr) -> Expr {
    Expr::ext(
        CollKind::Set,
        "x",
        Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
        inner,
    )
}

#[test]
fn admission_limit_is_enforced_beyond_plan_parallelism() {
    // ParExt asks for 8-wide parallelism, but the driver tolerates 3:
    // in-flight performs must never exceed 3, and the result is correct.
    let driver = SlowDriver::new("slow", 4, Duration::from_millis(5), 3);
    let max_seen = Arc::clone(&driver.max_seen);
    let mut ctx = Context::new();
    ctx.register_driver(driver);
    let ctx = Arc::new(ctx);

    let e = Expr::ParExt {
        kind: CollKind::Set,
        var: name("i"),
        body: Arc::new(wrap_ext(scan("slow"))),
        source: Arc::new(Expr::Const(Value::set((0..16).map(Value::Int).collect()))),
        max_in_flight: 8,
        batch: None,
    };
    let v = eval(&e, &Env::empty(), &ctx).unwrap();
    assert_eq!(v.len(), Some(4), "4 distinct rows per scan");
    let seen = max_seen.load(Ordering::SeqCst);
    assert!(
        seen <= 3,
        "admission limit violated: {seen} concurrent performs for a budget of 3"
    );
    assert!(seen >= 2, "parallel plan should actually overlap requests");
}

#[test]
fn par_ext_runs_on_the_shared_executor_with_bounded_workers() {
    // 64 elements through a width-8 ParExt on a private 4-worker
    // executor: the chunk evaluators are executor tasks, not ad-hoc
    // scoped threads, so the worker count is bounded by the executor
    // limit and does not grow with the element count.
    use kleisli_core::Executor;

    let executor = Executor::new("test-exec", 4);
    let mut ctx = Context::with_executor(Arc::clone(&executor));
    ctx.register_driver(SlowDriver::new("slow", 2, Duration::from_millis(1), 8));
    let ctx = Arc::new(ctx);

    let e = Expr::ParExt {
        kind: CollKind::Set,
        var: name("i"),
        body: Arc::new(wrap_ext(scan("slow"))),
        source: Arc::new(Expr::Const(Value::set((0..64).map(Value::Int).collect()))),
        max_in_flight: 8,
        batch: None,
    };
    let v = eval(&e, &Env::empty(), &ctx).unwrap();
    assert_eq!(v.len(), Some(2));
    assert!(
        executor.threads_spawned() <= 4,
        "executor workers must stay bounded: {} spawned for a limit of 4",
        executor.threads_spawned()
    );
    assert!(
        executor.threads_spawned() >= 1,
        "chunks must actually run on the executor"
    );
}

#[test]
fn nested_par_ext_completes_on_a_one_worker_executor() {
    // A ParExt body containing another ParExt, on an executor with a
    // single worker: caller-help in the batch runner means progress
    // never depends on free pool capacity — this must complete, not
    // deadlock, and still agree with the sequential answer.
    use kleisli_core::Executor;

    let executor = Executor::new("tiny", 1);
    let ctx = Arc::new(Context::with_executor(Arc::clone(&executor)));

    let inner = Expr::ParExt {
        kind: CollKind::Set,
        var: name("j"),
        body: Arc::new(Expr::single(
            CollKind::Set,
            Expr::prim(
                nrc::Prim::Add,
                vec![
                    Expr::prim(nrc::Prim::Mul, vec![Expr::var("i"), Expr::int(10)]),
                    Expr::var("j"),
                ],
            ),
        )),
        source: Arc::new(Expr::Const(Value::set((0..4).map(Value::Int).collect()))),
        max_in_flight: 3,
        batch: None,
    };
    let outer = Expr::ParExt {
        kind: CollKind::Set,
        var: name("i"),
        body: Arc::new(inner),
        source: Arc::new(Expr::Const(Value::set((0..4).map(Value::Int).collect()))),
        max_in_flight: 3,
        batch: None,
    };
    let v = eval(&outer, &Env::empty(), &ctx).unwrap();
    let mut expect: Vec<Value> = (0..4)
        .flat_map(|i| (0..4).map(move |j| Value::Int(i * 10 + j)))
        .collect();
    expect.sort();
    assert_eq!(v, Value::set(expect));
    assert!(executor.threads_spawned() <= 1);
}

#[test]
fn union_arms_overlap_their_round_trips() {
    // Two sources, 60 ms per request. Blocking both sequentially costs
    // ~120 ms; the streaming executor submits the right arm while the
    // left is in flight, so the whole union costs ~one round-trip.
    let delay = Duration::from_millis(60);
    let a = SlowDriver::new("A", 3, delay, 2);
    let b = SlowDriver::new("B", 3, delay, 2);
    let mut ctx = Context::new();
    ctx.register_driver(a);
    ctx.register_driver(b);
    let ctx = Arc::new(ctx);

    let e = Expr::union(CollKind::Set, wrap_ext(scan("A")), wrap_ext(scan("B")));

    let t0 = Instant::now();
    let streamed = collect_stream(
        eval_stream(&e, &Env::empty(), &ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let concurrent = t0.elapsed();

    let t0 = Instant::now();
    let eager = eval(&e, &Env::empty(), &ctx).unwrap();
    let blocking = t0.elapsed();

    assert_eq!(streamed, eager);
    assert!(
        concurrent < blocking,
        "overlapped union ({concurrent:?}) must beat sequential ({blocking:?})"
    );
    // Loose bound (sequential costs 2x delay): proves overlap happened
    // without flaking on a loaded runner.
    assert!(
        concurrent < 2 * delay - delay / 6,
        "two overlapped round-trips must cost visibly less than two \
         sequential ones: {concurrent:?}"
    );
}

#[test]
fn join_sides_overlap_their_round_trips() {
    let delay = Duration::from_millis(60);
    let a = SlowDriver::new("A", 5, delay, 2);
    let b = SlowDriver::new("B", 5, delay, 2);
    let mut ctx = Context::new();
    ctx.register_driver(a);
    ctx.register_driver(b);
    let ctx = Arc::new(ctx);

    let body = Expr::single(
        CollKind::Set,
        Expr::record(vec![
            ("a", Expr::proj(Expr::var("l"), "n")),
            ("b", Expr::proj(Expr::var("r"), "n")),
        ]),
    );
    let e = Expr::Join {
        kind: CollKind::Set,
        strategy: nrc::JoinStrategy::IndexedNl,
        left: Arc::new(scan("A")),
        right: Arc::new(scan("B")),
        lvar: name("l"),
        rvar: name("r"),
        left_key: Some(Arc::new(Expr::proj(Expr::var("l"), "n"))),
        right_key: Some(Arc::new(Expr::proj(Expr::var("r"), "n"))),
        cond: Arc::new(Expr::bool(true)),
        body: Arc::new(body),
    };

    let t0 = Instant::now();
    let streamed = collect_stream(
        eval_stream(&e, &Env::empty(), &ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let concurrent = t0.elapsed();
    assert_eq!(streamed.len(), Some(5));
    assert!(
        concurrent < 2 * delay - delay / 6,
        "join sides must overlap: {concurrent:?} for two {delay:?} round-trips"
    );
}

#[test]
fn blocking_adapter_drivers_are_not_prefetched_in_union_arms() {
    // A one-method driver's submit runs the request inline, so
    // prefetching it would execute eagerly: the right arm must stay
    // fully lazy for such drivers.
    use kleisli_core::{blocks_of_rows, BlockStream, Capabilities, Driver, KResult};
    use std::sync::atomic::AtomicU64;

    struct OneMethod {
        performs: Arc<AtomicU64>,
    }
    impl Driver for OneMethod {
        fn name(&self) -> &str {
            "inline"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::default()
        }
        fn perform(&self, _req: &DriverRequest) -> KResult<BlockStream> {
            self.performs.fetch_add(1, Ordering::SeqCst);
            Ok(blocks_of_rows(Box::new(
                (0..3).map(|i| Ok(Value::record_from(vec![("n", Value::Int(i))]))),
            )))
        }
    }

    let performs = Arc::new(AtomicU64::new(0));
    let mut ctx = Context::new();
    ctx.register_driver(Arc::new(OneMethod {
        performs: Arc::clone(&performs),
    }));
    let ctx = Arc::new(ctx);

    let e = Expr::union(
        CollKind::Set,
        Expr::single(CollKind::Set, Expr::Const(Value::Int(-1))),
        wrap_ext(scan("inline")),
    );
    let got = kleisli_exec::first_n(&e, 1, &Env::empty(), &ctx).unwrap();
    assert_eq!(got, vec![Value::Int(-1)]);
    assert_eq!(
        performs.load(Ordering::SeqCst),
        0,
        "a blocking submit adapter must not run at union construction"
    );
}

#[test]
fn dropped_prefix_stream_frees_the_driver_budget() {
    // Budget of 1. A first_n-style consumer abandons a stream whose
    // request is still queued; the ticket must not leak — the next
    // submit on the same driver proceeds.
    let driver = SlowDriver::new("gated", 8, Duration::from_millis(20), 1);
    let performs = Arc::clone(&driver.performs);
    let gate = Arc::clone(&driver.gate);
    let mut ctx = Context::new();
    ctx.register_driver(driver);
    let ctx = Arc::new(ctx);

    // Union of two scans on the same driver: both requests submitted at
    // construction, the second queued behind the budget of 1.
    let e = Expr::union(CollKind::Set, wrap_ext(scan("gated")), wrap_ext(scan("gated")));
    {
        let mut stream = eval_stream(&e, &Env::empty(), &ctx).unwrap();
        // Pull one row from the first scan, then abandon everything.
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first, Value::Int(0));
    } // dropped: the queued second request is cancelled before running

    // The budget must drain fully; a fresh evaluation still works.
    let v = eval(&wrap_ext(scan("gated")), &Env::empty(), &ctx).unwrap();
    assert_eq!(v.len(), Some(8));
    let t0 = Instant::now();
    while gate.in_flight() != 0 {
        assert!(t0.elapsed() < Duration::from_secs(2), "admission ticket leaked");
        std::thread::sleep(Duration::from_millis(1));
    }
    // The abandoned queued request ideally never performed; allow the
    // race where it slipped in before cancellation, but the follow-up
    // request above must have run regardless.
    assert!(performs.load(Ordering::SeqCst) >= 2);
}
