//! Regression tests for the cache/streaming seams:
//!
//! * `eval_stream` has a real `Cached` arm — a cached remote scan streams
//!   lazily on miss (a `first_n` consumer pulls only what it needs) and
//!   streams from the cache on hit (no driver traffic);
//! * single-flight population — a `Cached` subquery under a parallel
//!   generator (`ParExt`) is evaluated exactly once no matter how many
//!   worker threads race to it;
//! * abandoned prefixes do not poison the cell: the next consumer
//!   populates it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kleisli_core::{
    blocks_of_rows, BlockStream, Capabilities, CollKind, Driver, DriverRequest, KResult,
    MetricsSnapshot, Value,
};
use kleisli_exec::{collect_stream, eval, eval_stream, first_n, Context, Env};
use nrc::{name, Expr};

/// Counts both `perform` calls and per-row pulls.
struct CountingDriver {
    rows: i64,
    execs: Arc<AtomicU64>,
    pulled: Arc<AtomicU64>,
}

impl Driver for CountingDriver {
    fn name(&self) -> &str {
        "counting"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }
    fn perform(&self, _req: &DriverRequest) -> KResult<BlockStream> {
        self.execs.fetch_add(1, Ordering::SeqCst);
        let pulled = Arc::clone(&self.pulled);
        let rows = self.rows;
        Ok(blocks_of_rows(Box::new((0..rows).map(move |i| {
            pulled.fetch_add(1, Ordering::SeqCst);
            Ok(Value::Int(i))
        }))))
    }
    fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

fn counting_ctx(rows: i64) -> (Arc<Context>, Arc<AtomicU64>, Arc<AtomicU64>) {
    let execs = Arc::new(AtomicU64::new(0));
    let pulled = Arc::new(AtomicU64::new(0));
    let mut ctx = Context::new();
    ctx.register_driver(Arc::new(CountingDriver {
        rows,
        execs: Arc::clone(&execs),
        pulled: Arc::clone(&pulled),
    }));
    (Arc::new(ctx), execs, pulled)
}

fn cached_scan(id: u64) -> Expr {
    Expr::Cached {
        id,
        expr: Arc::new(Expr::Remote {
            driver: name("counting"),
            request: DriverRequest::TableScan {
                table: "t".into(),
                columns: None,
            },
        }),
    }
}

#[test]
fn cached_remote_scan_streams_lazily_on_miss() {
    let (ctx, _execs, pulled) = counting_ctx(100_000);
    // U{ {x} | \x <- Cached(REMOTE) }: before the Cached stream arm, the
    // generator fell back to the eager evaluator and materialized all
    // 100k rows for a 5-row prefix.
    let e = Expr::ext(
        CollKind::Set,
        "x",
        Expr::single(CollKind::Set, Expr::var("x")),
        cached_scan(1),
    );
    let got = first_n(&e, 5, &Env::empty(), &ctx).unwrap();
    assert_eq!(got.len(), 5);
    assert!(
        pulled.load(Ordering::SeqCst) <= 6,
        "pulled {} rows for a 5-row prefix: cached scan is not lazy",
        pulled.load(Ordering::SeqCst)
    );
}

#[test]
fn abandoned_prefix_leaves_cell_empty_then_full_stream_populates() {
    let (ctx, execs, _pulled) = counting_ctx(50);
    let e = cached_scan(7);
    // A partial pull must NOT commit a truncated result.
    let prefix = first_n(&e, 3, &Env::empty(), &ctx).unwrap();
    assert_eq!(prefix.len(), 3);
    assert_eq!(
        ctx.cache_get(7),
        None,
        "an abandoned prefix must not populate the cache"
    );
    // A full consumption commits the canonical set...
    let full = collect_stream(
        eval_stream(&e, &Env::empty(), &ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    assert_eq!(full.len(), Some(50));
    assert_eq!(ctx.cache_get(7), Some(full.clone()));
    let execs_after_populate = execs.load(Ordering::SeqCst);
    // ...and a later stream is served from the cache: no new execute.
    let again = collect_stream(
        eval_stream(&e, &Env::empty(), &ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    assert_eq!(again, full);
    assert_eq!(
        execs.load(Ordering::SeqCst),
        execs_after_populate,
        "a cache hit must not contact the driver"
    );
}

#[test]
fn streamed_and_eager_cached_values_are_identical() {
    // The value the streaming populator commits must canonicalize exactly
    // like the eager evaluator's, so mixed executors can share a cell.
    let (ctx_stream, ..) = counting_ctx(20);
    let (ctx_eager, ..) = counting_ctx(20);
    let e = cached_scan(3);
    let streamed = collect_stream(
        eval_stream(&e, &Env::empty(), &ctx_stream).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let eager = eval(&e, &Env::empty(), &ctx_eager).unwrap();
    assert_eq!(streamed, eager);
    assert_eq!(ctx_stream.cache_get(3), ctx_eager.cache_get(3));
}

#[test]
fn cached_subquery_under_parallel_generator_runs_once() {
    let (ctx, execs, _pulled) = counting_ctx(100);
    // ParExt{ U{ {y} | \y <- Cached(REMOTE) } | \x <- {0..15} }, width 8:
    // 16 worker evaluations race to the same cache cell; single-flight
    // must let exactly one of them contact the driver.
    let body = Expr::ext(
        CollKind::Set,
        "y",
        Expr::single(CollKind::Set, Expr::var("y")),
        cached_scan(42),
    );
    let e = Expr::ParExt {
        kind: CollKind::Set,
        var: name("x"),
        body: Arc::new(body),
        source: Arc::new(Expr::Const(Value::set((0..16).map(Value::Int).collect()))),
        max_in_flight: 8,
        batch: None,
    };
    let v = eval(&e, &Env::empty(), &ctx).unwrap();
    assert_eq!(v.len(), Some(100));
    assert_eq!(
        execs.load(Ordering::SeqCst),
        1,
        "single-flight: the cached subquery must be evaluated exactly once"
    );
}

#[test]
fn evaluation_error_aborts_population_and_allows_retry() {
    // A Cached subquery whose evaluation fails must release the
    // single-flight claim so a later evaluator can succeed.
    let ctx = Arc::new(Context::new());
    let bad = Expr::Cached {
        id: 9,
        expr: Arc::new(Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::prim(nrc::Prim::Div, vec![Expr::int(1), Expr::var("x")]),
            ),
            Expr::Const(Value::set(vec![Value::Int(0)])),
        )),
    };
    assert!(eval(&bad, &Env::empty(), &ctx).is_err());
    assert_eq!(ctx.cache_get(9), None);
    // Same id, a computable subquery: the claim must be free again.
    let good = Expr::Cached {
        id: 9,
        expr: Arc::new(Expr::single(CollKind::Set, Expr::int(5))),
    };
    let v = eval(&good, &Env::empty(), &ctx).unwrap();
    assert_eq!(v, Value::set(vec![Value::Int(5)]));
}
