//! Row-pipelined execution through the streaming executor: bounded
//! row-prefetch buffers behind `PendingStream`, the `prefetch_rows = 0`
//! fully-lazy guarantee, and the `first_n` early-stop regression — early
//! termination must cancel outstanding prefetch work and release the
//! admission ticket, with row traffic bounded by prefix + buffer.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kleisli_core::testutil::SlowDriver;
use kleisli_core::{
    blocks_of_rows, BlockStream, Capabilities, CollKind, Driver, DriverRequest, KError, KResult,
    MetricsSnapshot, Value, DEFAULT_BLOCK_ROWS,
};
use kleisli_exec::{collect_stream, eval, eval_blocks, eval_stream, first_n, Context, Env};
use nrc::{name, Expr};

fn scan(driver: &str) -> Expr {
    Expr::Remote {
        driver: name(driver),
        request: DriverRequest::TableScan {
            table: "t".into(),
            columns: None,
        },
    }
}

fn wrap_ext(inner: Expr) -> Expr {
    Expr::ext(
        CollKind::Set,
        "x",
        Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "n")),
        inner,
    )
}

fn ctx_of(driver: Arc<SlowDriver>) -> Arc<Context> {
    let mut ctx = Context::new();
    ctx.register_driver(driver);
    Arc::new(ctx)
}

#[test]
fn prefetched_stream_agrees_with_lazy_and_eager() {
    let rows = 40;
    let lazy = SlowDriver::new("L", rows, Duration::ZERO, 2);
    let pre = SlowDriver::pipelined("P", rows, Duration::ZERO, Duration::ZERO, 2, 8);
    let lazy_ctx = ctx_of(lazy);
    let pre_ctx = ctx_of(pre);

    let lazy_v = collect_stream(
        eval_stream(&wrap_ext(scan("L")), &Env::empty(), &lazy_ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let pre_v = collect_stream(
        eval_stream(&wrap_ext(scan("P")), &Env::empty(), &pre_ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let eager_v = eval(&wrap_ext(scan("P")), &Env::empty(), &pre_ctx).unwrap();
    assert_eq!(lazy_v, pre_v, "prefetch must not change results");
    assert_eq!(pre_v, eager_v);
}

#[test]
fn first_n_early_stop_releases_the_ticket_and_bounds_row_traffic() {
    // The satellite regression: a prefix consumer over a prefetching
    // stream must cancel outstanding row-prefetch work, release the
    // admission ticket, and ship no rows beyond prefix + buffer.
    let prefetch = 4;
    let driver = SlowDriver::pipelined(
        "gated",
        10_000,
        Duration::ZERO,
        Duration::from_micros(200),
        1,
        prefetch,
    );
    let gate = Arc::clone(&driver.gate);
    let metrics = Arc::clone(&driver.metrics);
    let ctx = ctx_of(driver);

    let cutoff = 3;
    let got = first_n(&wrap_ext(scan("gated")), cutoff, &Env::empty(), &ctx).unwrap();
    assert_eq!(got.len(), cutoff);

    // No ticket leak: the budget-of-1 gate drains, and a fresh request
    // on the same driver proceeds.
    let t0 = Instant::now();
    while gate.in_flight() != 0 {
        assert!(t0.elapsed() < Duration::from_secs(2), "admission ticket leaked");
        std::thread::sleep(Duration::from_millis(1));
    }

    // No extra rows after the cutoff: whatever refill was in flight
    // stops at the next row boundary once the stream is dropped. Allow
    // prefix + buffer + one in-flight pull, then require stability.
    let t0 = Instant::now();
    let mut shipped = metrics.snapshot().rows_shipped;
    loop {
        std::thread::sleep(Duration::from_millis(15));
        let now = metrics.snapshot().rows_shipped;
        if now == shipped {
            break;
        }
        shipped = now;
        assert!(t0.elapsed() < Duration::from_secs(2), "rows kept shipping");
    }
    assert!(
        shipped <= (cutoff + prefetch + 1) as u64,
        "{shipped} rows shipped for a cutoff of {cutoff} and a buffer of {prefetch}"
    );

    let again = first_n(&wrap_ext(scan("gated")), 2, &Env::empty(), &ctx).unwrap();
    assert_eq!(again.len(), 2, "driver still serves after the early stop");
}

#[test]
fn prefetch_zero_ships_exactly_the_demanded_prefix() {
    // The fully-lazy path must stay byte-identical: no pool worker ever
    // touches the rows, so the prefix is all that crosses the boundary.
    let driver = SlowDriver::new("lazy", 10_000, Duration::ZERO, 1);
    let metrics = Arc::clone(&driver.metrics);
    let ctx = ctx_of(driver);
    let got = first_n(&wrap_ext(scan("lazy")), 5, &Env::empty(), &ctx).unwrap();
    assert_eq!(got.len(), 5);
    let m = metrics.snapshot();
    assert!(
        m.rows_shipped <= 6,
        "fully-lazy scan shipped {} rows for 5 results",
        m.rows_shipped
    );
    assert_eq!(m.rows_prefetched, 0, "nothing may be prefetched at depth 0");
}

#[test]
fn first_n_stopping_mid_block_releases_the_ticket_and_bounds_blocks() {
    // Block-boundary variant of the early-stop regression: at
    // prefetch_rows = 8 the pool ships 2-row blocks (a 4-block window),
    // so a cutoff of 3 stops *inside* a buffered block. The admission
    // ticket must still drain, and row traffic stays bounded by
    // prefix + buffer + one in-flight block.
    let prefetch = 8; // block_rows = 2, depth = 4 blocks
    let block_rows = 2;
    let driver = SlowDriver::pipelined(
        "blocked",
        10_000,
        Duration::ZERO,
        Duration::from_micros(200),
        1,
        prefetch,
    );
    let gate = Arc::clone(&driver.gate);
    let metrics = Arc::clone(&driver.metrics);
    let ctx = ctx_of(driver);

    let cutoff = 3;
    let got = first_n(&wrap_ext(scan("blocked")), cutoff, &Env::empty(), &ctx).unwrap();
    assert_eq!(got.len(), cutoff);

    let t0 = Instant::now();
    while gate.in_flight() != 0 {
        assert!(t0.elapsed() < Duration::from_secs(2), "admission ticket leaked");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Refill stops at the next *block* boundary once the stream drops.
    let t0 = Instant::now();
    let mut shipped = metrics.snapshot().rows_shipped;
    loop {
        std::thread::sleep(Duration::from_millis(15));
        let now = metrics.snapshot().rows_shipped;
        if now == shipped {
            break;
        }
        shipped = now;
        assert!(t0.elapsed() < Duration::from_secs(2), "rows kept shipping");
    }
    assert!(
        shipped <= (cutoff + prefetch + block_rows) as u64,
        "{shipped} rows shipped for a cutoff of {cutoff}, a buffer of {prefetch} \
         and {block_rows}-row blocks"
    );
    assert!(
        metrics.snapshot().blocks_shipped > 0,
        "a prefetching driver must account its handoffs in blocks"
    );

    let again = first_n(&wrap_ext(scan("blocked")), 2, &Env::empty(), &ctx).unwrap();
    assert_eq!(again.len(), 2, "driver still serves after the mid-block stop");
}

/// A driver whose stream delivers a partial block: `good` rows, then a
/// driver error inside the same block.
struct PartialBlockDriver {
    good: i64,
}

impl Driver for PartialBlockDriver {
    fn name(&self) -> &str {
        "partial"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }
    fn perform(&self, _req: &DriverRequest) -> KResult<BlockStream> {
        let good = self.good;
        Ok(blocks_of_rows(Box::new((0..=good).map(move |i| {
            if i == good {
                Err(KError::driver("partial", "stream interrupted"))
            } else {
                Ok(Value::record_from(vec![("n", Value::Int(i))]))
            }
        }))))
    }
    fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

#[test]
fn driver_error_inside_a_partial_block_surfaces_after_the_good_rows() {
    let good = 3;
    let mut ctx = Context::new();
    ctx.register_driver(Arc::new(PartialBlockDriver { good }));
    let ctx = Arc::new(ctx);
    let plan = wrap_ext(scan("partial"));

    // Full-grain pull: one partially-delivered block carrying the good
    // rows with the error as its final entry, then exhaustion.
    let mut s = eval_blocks(&plan, &Env::empty(), &ctx).unwrap();
    let b = s.next_block(DEFAULT_BLOCK_ROWS).expect("a partial block");
    assert_eq!(b.len() as i64, good + 1, "good rows ride in front of the error");
    assert!(b.rows()[..good as usize].iter().all(|r| r.is_ok()));
    assert!(b.ends_with_err());
    assert!(s.next_block(DEFAULT_BLOCK_ROWS).is_none(), "failed streams end");

    // The grain-1 view sees the same rows in the same order, and a
    // prefix consumer that stops before the bad row never sees it.
    let items: Vec<_> = eval_stream(&plan, &Env::empty(), &ctx).unwrap().collect();
    assert_eq!(items.len() as i64, good + 1);
    assert!(items[..good as usize].iter().all(|r| r.is_ok()));
    assert!(items[good as usize].is_err());
    let prefix = first_n(&plan, good as usize, &Env::empty(), &ctx).unwrap();
    assert_eq!(prefix.len() as i64, good);
}

#[test]
fn clamped_to_zero_full_drain_is_byte_identical_to_fully_lazy() {
    // The prefetch-ceiling-0 configuration must be indistinguishable
    // from the never-pipelined driver on a full drain — through both
    // the grain-1 view and the block drain — and must neither prefetch
    // rows nor ship blocks through the pool buffer.
    let rows = 64;
    let plain = SlowDriver::new("plain", rows, Duration::ZERO, 2);
    let clamped = SlowDriver::pipelined("clamped", rows, Duration::ZERO, Duration::ZERO, 2, 0);
    let clamped_metrics = Arc::clone(&clamped.metrics);
    let plain_ctx = ctx_of(plain);
    let clamped_ctx = ctx_of(clamped);

    let plain_v = collect_stream(
        eval_stream(&wrap_ext(scan("plain")), &Env::empty(), &plain_ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let clamped_rows_v = collect_stream(
        eval_stream(&wrap_ext(scan("clamped")), &Env::empty(), &clamped_ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let clamped_blocks_v = kleisli_exec::collect_blocks(
        eval_blocks(&wrap_ext(scan("clamped")), &Env::empty(), &clamped_ctx).unwrap(),
        CollKind::Set,
    )
    .unwrap();
    let eager_v = eval(&wrap_ext(scan("clamped")), &Env::empty(), &clamped_ctx).unwrap();
    assert_eq!(plain_v, clamped_rows_v);
    assert_eq!(clamped_rows_v, clamped_blocks_v);
    assert_eq!(clamped_blocks_v, eager_v);

    let m = clamped_metrics.snapshot();
    assert_eq!(m.rows_prefetched, 0, "clamped-to-0 must prefetch nothing");
    assert_eq!(m.blocks_shipped, 0, "clamped-to-0 must bypass the block buffer");
}

#[test]
fn union_arms_overlap_their_row_transfer() {
    // Two row-heavy scans with real per-row latency. Lazily, the
    // consumer pays both arms' transfer back-to-back; with prefetch
    // covering the whole result, each driver's pool worker pulls its
    // arm's rows concurrently, so the union costs about one arm.
    let rows = 30;
    let per_row = Duration::from_millis(2);
    let mk = |prefetch: usize, names: (&str, &str)| {
        let a = SlowDriver::pipelined(names.0, rows, Duration::ZERO, per_row, 2, prefetch);
        let b = SlowDriver::pipelined(names.1, rows, Duration::ZERO, per_row, 2, prefetch);
        let mut ctx = Context::new();
        ctx.register_driver(a);
        ctx.register_driver(b);
        Arc::new(ctx)
    };
    let run = |ctx: &Arc<Context>, names: (&str, &str)| {
        let e = Expr::union(
            CollKind::Set,
            wrap_ext(scan(names.0)),
            wrap_ext(scan(names.1)),
        );
        let t0 = Instant::now();
        let v = collect_stream(
            eval_stream(&e, &Env::empty(), ctx).unwrap(),
            CollKind::Set,
        )
        .unwrap();
        (v, t0.elapsed())
    };

    let lazy_ctx = mk(0, ("A", "B"));
    let pre_ctx = mk(rows as usize, ("A", "B"));
    let (lazy_v, lazy_t) = run(&lazy_ctx, ("A", "B"));
    let (pre_v, pre_t) = run(&pre_ctx, ("A", "B"));
    assert_eq!(lazy_v, pre_v);
    // Lazy cost: ~2 * rows * per_row on the consumer's clock. Pipelined:
    // ~rows * per_row. Loose bound so a loaded runner doesn't flake —
    // it only guards against the row overlap disappearing entirely.
    assert!(
        pre_t < lazy_t,
        "row prefetch must beat the lazy pull: {pre_t:?} vs {lazy_t:?}"
    );
    let sequential_floor = per_row * (2 * rows as u32);
    assert!(
        pre_t < sequential_floor - sequential_floor / 6,
        "overlapped row transfer must cost visibly less than sequential \
         ({pre_t:?} for a {sequential_floor:?} sequential floor)"
    );
}
