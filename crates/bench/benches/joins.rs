//! E8 — local join operators: naive nested loop vs blocked nested loop vs
//! indexed (hashed) nested loop across input sizes.

use bench_harness::{join_inputs, join_query};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kleisli_exec::{eval, Context, Env};
use nrc::JoinStrategy;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("joins");
    g.sample_size(10);
    for n in [100i64, 400, 1600] {
        let (l, r) = join_inputs(n, n / 10);
        let naive = join_query(l.clone(), r.clone(), None);
        let blocked = join_query(
            l.clone(),
            r.clone(),
            Some(JoinStrategy::BlockedNl { block_size: 256 }),
        );
        let indexed = join_query(l, r, Some(JoinStrategy::IndexedNl));
        let ctx = Context::new();
        g.bench_with_input(BenchmarkId::new("naive-nl", n), &n, |b, _| {
            b.iter(|| black_box(eval(&naive, &Env::empty(), &ctx).expect("eval")))
        });
        g.bench_with_input(BenchmarkId::new("blocked-nl", n), &n, |b, _| {
            b.iter(|| black_box(eval(&blocked, &Env::empty(), &ctx).expect("eval")))
        });
        g.bench_with_input(BenchmarkId::new("indexed-nl", n), &n, |b, _| {
            b.iter(|| black_box(eval(&indexed, &Env::empty(), &ctx).expect("eval")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
