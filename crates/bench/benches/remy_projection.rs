//! E3 — the paper's quantitative claim: "A greater than two-fold
//! improvement has been obtained over the plain Rémy projection."

use bench_harness::{project_cached, project_plain, remy_rows};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("remy_projection");
    for width in [4usize, 8, 16, 32] {
        let rows = remy_rows(100_000, width);
        let field = format!("field{}", width / 2);
        g.bench_with_input(BenchmarkId::new("plain", width), &width, |b, _| {
            b.iter(|| black_box(project_plain(&rows, &field)))
        });
        g.bench_with_input(BenchmarkId::new("homogeneous", width), &width, |b, _| {
            b.iter(|| black_box(project_cached(&rows, &field)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
