//! E7 — migrating selections/projections/joins to the SQL server: the
//! paper's Loci22 query under increasing network latency, full optimizer
//! vs local joins vs naive nested loops.

use std::time::Duration;

use bench_harness::{config_variants, latency_federation, LOCI22};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pushdown_loci22");
    g.sample_size(10);
    for latency_us in [0u64, 500, 2000] {
        let (mut session, _fed) =
            latency_federation(300, Duration::from_micros(latency_us));
        for (label, config) in config_variants() {
            if label != "full" && label != "no-pushdown" {
                // the unoptimized plans make hundreds of sequential
                // round-trips; they are measured by the report binary
                continue;
            }
            session.set_opt_config(config);
            let compiled = session.compile(LOCI22).expect("compile");
            g.bench_with_input(
                BenchmarkId::new(label, format!("{latency_us}us")),
                &latency_us,
                |b, _| b.iter(|| black_box(session.run_compiled(&compiled).expect("run"))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
