//! E13 — path extraction at the ASN.1 driver: pruning during the parse vs
//! shipping whole entries and projecting locally.

use std::time::Duration;

use bench_harness::latency_federation;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const WITH_PATH: &str = r#"flatten(GenBank([db = "na",
    select = "organism \"Homo sapiens\"",
    path = "Seq-entry.seq.id..giim"]))"#;

const WITHOUT_PATH: &str = r#"{g |
    \e <- GenBank([db = "na", select = "organism \"Homo sapiens\""]),
    <giim = \g> <- e.seq.id}"#;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_extraction");
    g.sample_size(20);
    let (mut session, _fed) = latency_federation(400, Duration::from_micros(200));
    let with_path = session.compile(WITH_PATH).expect("compile");
    session.set_opt_config(kleisli_opt::OptConfig {
        enable_pushdown: false,
        ..kleisli_opt::OptConfig::default()
    });
    let without = session.compile(WITHOUT_PATH).expect("compile");
    session.set_opt_config(kleisli_opt::OptConfig::default());
    // both must produce the same uid set
    assert_eq!(
        session.run_compiled(&with_path).expect("run"),
        session.run_compiled(&without).expect("run"),
    );
    g.bench_function("path-at-driver", |b| {
        b.iter(|| black_box(session.run_compiled(&with_path).expect("run")))
    });
    g.bench_function("ship-whole-entries", |b| {
        b.iter(|| black_box(session.run_compiled(&without).expect("run")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
