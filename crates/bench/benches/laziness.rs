//! E10 — time-to-first-result: the pipelined executor produces the first
//! k rows of a remote scan without materializing the query.

use bench_harness::latency_federation_rows;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

const SCAN: &str = r#"{[s = l.locus_symbol] | \l <- GDB-Tab("locus")}"#;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("laziness");
    g.sample_size(10);
    let (session, _fed) = latency_federation_rows(
        20_000,
        Duration::from_micros(100),
        Duration::from_micros(20),
    );
    g.bench_function("first-10-pipelined", |b| {
        b.iter(|| black_box(session.query_first_n(SCAN, 10).expect("query")))
    });
    let compiled = session.compile(SCAN).expect("compile");
    g.bench_function("full-materialization", |b| {
        b.iter(|| black_box(session.run_compiled(&compiled).expect("run")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
