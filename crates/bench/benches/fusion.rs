//! E4/E5/E6 — the monadic rules R1 (vertical fusion), R2 (horizontal
//! fusion) and R3 (filter promotion): optimized vs unoptimized evaluation.

use bench_harness::{horizontal_pipeline, invariant_filter, vertical_pipeline};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kleisli_exec::{eval, Context, Env};
use kleisli_opt::{optimize, NullCatalog, OptConfig};
use nrc::Expr;

fn run(e: &Expr) -> kleisli_core::Value {
    eval(e, &Env::empty(), &Context::new()).expect("eval")
}

fn opt(e: Expr) -> Expr {
    let config = OptConfig {
        enable_pushdown: false,
        enable_joins: false,
        enable_cache: false,
        enable_parallel: false,
        ..OptConfig::default()
    };
    optimize(e, &NullCatalog, &config).0
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fusion");
    for n in [1_000i64, 10_000, 100_000] {
        let raw = vertical_pipeline(n);
        let fused = opt(raw.clone());
        g.bench_with_input(BenchmarkId::new("vertical/unfused", n), &n, |b, _| {
            b.iter(|| black_box(run(&raw)))
        });
        g.bench_with_input(BenchmarkId::new("vertical/fused-R1", n), &n, |b, _| {
            b.iter(|| black_box(run(&fused)))
        });
    }
    let n = 50_000i64;
    let raw = horizontal_pipeline(n);
    let fused = opt(raw.clone());
    g.bench_function("horizontal/unfused", |b| b.iter(|| black_box(run(&raw))));
    g.bench_function("horizontal/fused-R2", |b| b.iter(|| black_box(run(&fused))));
    // filter promotion with a false invariant: the promoted form skips
    // the scan entirely
    let raw = invariant_filter(100_000, 0);
    let promoted = opt(raw.clone());
    g.bench_function("filter/in-loop", |b| b.iter(|| black_box(run(&raw))));
    g.bench_function("filter/promoted-R3", |b| b.iter(|| black_box(run(&promoted))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
