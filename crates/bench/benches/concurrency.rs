//! E11 — bounded-concurrency retrieval: per-element remote link lookups
//! with K in-flight requests; the speedup saturates at the server's
//! tolerated concurrency (5 in the paper's example).

use std::time::Duration;

use bench_harness::{bind_uids, latency_federation, set_par_width, CONCURRENCY};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kleisli_opt::OptConfig;
use nrc::Expr;

fn with_width(e: &Expr, width: usize) -> Expr {
    set_par_width(e, width)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrency");
    g.sample_size(10);
    let (mut session, fed) = latency_federation(60, Duration::from_millis(2));
    bind_uids(&mut session, &fed, 30);
    session.set_opt_config(OptConfig {
        enable_cache: false,
        ..OptConfig::default()
    });
    let compiled = session.compile(CONCURRENCY).expect("compile");
    for width in [1usize, 2, 5, 10] {
        let mut c2 = compiled.clone();
        c2.optimized = with_width(&compiled.optimized, width);
        g.bench_with_input(BenchmarkId::new("K", width), &width, |b, _| {
            b.iter(|| black_box(session.run_compiled(&c2).expect("run")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
