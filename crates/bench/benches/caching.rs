//! E9 — caching an outer-independent inner subquery: with the cache the
//! inner remote aggregate is fetched once; without it, once per outer row.

use std::time::Duration;

use bench_harness::{latency_federation, CACHEABLE};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kleisli_opt::OptConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("caching");
    g.sample_size(10);
    let (mut session, _fed) = latency_federation(60, Duration::from_micros(500));
    let base = OptConfig {
        enable_pushdown: false,
        enable_joins: false,
        enable_parallel: false,
        ..OptConfig::default()
    };
    session.set_opt_config(OptConfig {
        enable_cache: true,
        ..base.clone()
    });
    let cached = session.compile(CACHEABLE).expect("compile");
    session.set_opt_config(OptConfig {
        enable_cache: false,
        ..base
    });
    let uncached = session.compile(CACHEABLE).expect("compile");
    g.bench_function("cached", |b| {
        b.iter(|| black_box(session.run_compiled(&cached).expect("run")))
    });
    g.bench_function("uncached", |b| {
        b.iter(|| black_box(session.run_compiled(&uncached).expect("run")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
