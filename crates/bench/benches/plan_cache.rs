//! E12: what deterministic subplan caching buys.
//!
//! * `repeat-compile/*` — compiling the same CPL source over and over
//!   (the common mediator traffic shape) with the session plan cache
//!   versus with the cache disabled (full parse → typecheck → optimize
//!   every time).
//! * `memo-fixpoint/*` — the resolve + monadic rule sets to fixpoint over
//!   a plan whose deep subtree is shared by many parents, with the
//!   engine's identity-keyed rewrite memo versus without (every
//!   occurrence re-walked).

use std::sync::Arc;

use bench_harness::{compile_session, memo_fixpoint, shared_subtree_plan, REPEAT_COMPILE};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kleisli_opt::OptConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_cache");
    g.sample_size(20);

    let cached = compile_session(64);
    let uncached = compile_session(0);
    g.bench_function("repeat-compile/cached", |b| {
        b.iter(|| black_box(cached.compile(REPEAT_COMPILE).expect("compile")))
    });
    g.bench_function("repeat-compile/uncached", |b| {
        b.iter(|| black_box(uncached.compile(REPEAT_COMPILE).expect("compile")))
    });

    let config = OptConfig::default();
    for copies in [8usize, 32] {
        let plan = shared_subtree_plan(copies, 6, 4);
        g.bench_with_input(
            BenchmarkId::new("memo-fixpoint/memoized", copies),
            &copies,
            |b, _| b.iter(|| black_box(memo_fixpoint(Arc::clone(&plan), &config, true))),
        );
        g.bench_with_input(
            BenchmarkId::new("memo-fixpoint/unmemoized", copies),
            &copies,
            |b, _| b.iter(|| black_box(memo_fixpoint(Arc::clone(&plan), &config, false))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
