//! E9: what structural sharing buys on plan-shaped workloads.
//!
//! * `fixpoint/*` — running the resolve + monadic rule sets to fixpoint
//!   over a deep nested comprehension, with the sharing engine
//!   (`Arc::ptr_eq` fixpoint, untouched subtrees returned pointer-equal)
//!   versus the pre-sharing baseline (every pass rebuilds every node,
//!   structural change tracking) — same rules, same strategy, same bound.
//! * `noop-fixpoint/*` — the same comparison on an already-normalized
//!   plan, isolating pure fixpoint-detection overhead.
//! * `stream-construct/*` — building the streaming executor's pull chain
//!   and producing the first element: Arc bumps versus the deep body
//!   clones the old `(**body).clone()` representation required.

use std::sync::Arc;

use bench_harness::{
    deep_comprehension, legacy_fixpoint, legacy_stream_clone_cost, shared_fixpoint,
    stream_first,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kleisli_opt::OptConfig;

fn bench(c: &mut Criterion) {
    let config = OptConfig::default();
    let mut g = c.benchmark_group("plan_sharing");
    g.sample_size(20);
    for depth in [6usize, 10] {
        let plan = Arc::new(deep_comprehension(depth, 4));
        g.bench_with_input(BenchmarkId::new("fixpoint/shared", depth), &depth, |b, _| {
            b.iter(|| black_box(shared_fixpoint(Arc::clone(&plan), &config)))
        });
        g.bench_with_input(
            BenchmarkId::new("fixpoint/deep-rebuild", depth),
            &depth,
            |b, _| b.iter(|| black_box(legacy_fixpoint(Arc::clone(&plan), &config))),
        );

        let normalized = shared_fixpoint(Arc::clone(&plan), &config);
        g.bench_with_input(
            BenchmarkId::new("noop-fixpoint/shared", depth),
            &depth,
            |b, _| b.iter(|| black_box(shared_fixpoint(Arc::clone(&normalized), &config))),
        );
        g.bench_with_input(
            BenchmarkId::new("noop-fixpoint/deep-rebuild", depth),
            &depth,
            |b, _| b.iter(|| black_box(legacy_fixpoint(Arc::clone(&normalized), &config))),
        );

        g.bench_with_input(
            BenchmarkId::new("stream-construct/shared", depth),
            &depth,
            |b, _| b.iter(|| black_box(stream_first(&plan))),
        );
        g.bench_with_input(
            BenchmarkId::new("stream-construct/deep-clone", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    // the clones the old executor performed, plus the
                    // (shared) stream construction both versions do
                    black_box(legacy_stream_clone_cost(&plan));
                    black_box(stream_first(&plan))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
