//! # bench-harness
//!
//! Shared workload builders for the Criterion benches (`benches/`) and the
//! table-printing report binary (`src/bin/report.rs`). Each experiment in
//! EXPERIMENTS.md maps to one function here, so the benches and the report
//! measure exactly the same workloads.

use std::sync::Arc;
use std::time::Duration;

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, BioFederation, Session};
use kleisli_core::{CollKind, DriverRequest, LatencyModel, RemyRecord, Value};
use kleisli_exec::{Context, Env};
use kleisli_opt::OptConfig;
use nrc::{Expr, JoinStrategy, Prim};

/// Rows for the Rémy-projection experiment (E3): `n` records of `width`
/// fields, all sharing one directory (the homogeneous case the paper
/// optimizes).
pub fn remy_rows(n: usize, width: usize) -> Vec<RemyRecord> {
    (0..n)
        .map(|i| {
            RemyRecord::new(
                (0..width)
                    .map(|f| {
                        (
                            Arc::from(format!("field{f}").as_str()),
                            Value::Int((i * width + f) as i64),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Plain Rémy projection: directory lookup per record.
pub fn project_plain(rows: &[RemyRecord], field: &str) -> i64 {
    let mut acc = 0;
    for r in rows {
        if let Some(Value::Int(i)) = r.get(field) {
            acc += *i;
        }
    }
    acc
}

/// Homogeneous-optimized projection: offset computed once, revalidated by
/// directory magic number.
pub fn project_cached(rows: &[RemyRecord], field: &str) -> i64 {
    let mut p = kleisli_core::CachedProjector::new(field);
    let mut acc = 0;
    for r in rows {
        if let Some(Value::Int(i)) = p.project(r) {
            acc += *i;
        }
    }
    acc
}

/// A constant set of `n` ints as an NRC expression.
pub fn int_set(n: i64) -> Expr {
    Expr::Const(Value::set((0..n).map(Value::Int).collect()))
}

/// E4: the unfused producer/consumer pipeline
/// `U{ {x+1} | \x <- U{ {y*2} | \y <- S } }`.
pub fn vertical_pipeline(n: i64) -> Expr {
    let inner = Expr::ext(
        CollKind::Set,
        "y",
        Expr::single(
            CollKind::Set,
            Expr::prim(Prim::Mul, vec![Expr::var("y"), Expr::int(2)]),
        ),
        int_set(n),
    );
    Expr::ext(
        CollKind::Set,
        "x",
        Expr::single(
            CollKind::Set,
            Expr::prim(Prim::Add, vec![Expr::var("x"), Expr::int(1)]),
        ),
        inner,
    )
}

/// E5: two independent loops over the same source, unioned.
pub fn horizontal_pipeline(n: i64) -> Expr {
    let mk = |off: i64| {
        Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::prim(Prim::Add, vec![Expr::var("x"), Expr::int(off)]),
            ),
            int_set(n),
        )
    };
    Expr::union(CollKind::Set, mk(0), mk(n))
}

/// E6: a loop whose filter (`flag = 1`) is loop-invariant; with promotion
/// the false case never scans.
pub fn invariant_filter(n: i64, flag: i64) -> Expr {
    Expr::let_(
        "flag",
        Expr::int(flag),
        Expr::ext(
            CollKind::Set,
            "x",
            Expr::if_(
                Expr::eq(Expr::var("flag"), Expr::int(1)),
                Expr::single(CollKind::Set, Expr::var("x")),
                Expr::Empty(CollKind::Set),
            ),
            int_set(n),
        ),
    )
}

/// A pair of join inputs keyed with the given selectivity.
pub fn join_inputs(n: i64, modulus: i64) -> (Expr, Expr) {
    let table = |rows: i64, m: i64, tag: &str| {
        Expr::Const(Value::set(
            (0..rows)
                .map(|i| Value::record_from(vec![("k", Value::Int(i % m)), (tag, Value::Int(i))]))
                .collect(),
        ))
    };
    (table(n, modulus, "a"), table(n, modulus, "b"))
}

/// E8: a join of the two inputs under the given strategy (or the naive
/// nested loop when `strategy` is `None`).
pub fn join_query(left: Expr, right: Expr, strategy: Option<JoinStrategy>) -> Expr {
    let cond = Expr::eq(
        Expr::proj(Expr::var("l"), "k"),
        Expr::proj(Expr::var("r"), "k"),
    );
    let body = Expr::single(
        CollKind::Set,
        Expr::record(vec![
            ("a", Expr::proj(Expr::var("l"), "a")),
            ("b", Expr::proj(Expr::var("r"), "b")),
        ]),
    );
    match strategy {
        None => Expr::ext(
            CollKind::Set,
            "l",
            Expr::ext(
                CollKind::Set,
                "r",
                Expr::if_(cond, body, Expr::Empty(CollKind::Set)),
                right,
            ),
            left,
        ),
        Some(strategy) => Expr::Join {
            kind: CollKind::Set,
            strategy,
            left: Arc::new(left),
            right: Arc::new(right),
            lvar: nrc::name("l"),
            rvar: nrc::name("r"),
            left_key: Some(Arc::new(Expr::proj(Expr::var("l"), "k"))),
            right_key: Some(Arc::new(Expr::proj(Expr::var("r"), "k"))),
            cond: Arc::new(Expr::bool(true)),
            body: Arc::new(body),
        },
    }
}

/// The standard federation for driver-facing experiments, with the given
/// per-request latency realized as real sleeps.
pub fn latency_federation(loci: usize, per_request: Duration) -> (Session, BioFederation) {
    latency_federation_rows(loci, per_request, Duration::ZERO)
}

/// Like [`latency_federation`] but also charging a per-row transfer cost —
/// used by the laziness experiment, where the row transfer time is what
/// the pipelined executor avoids.
pub fn latency_federation_rows(
    loci: usize,
    per_request: Duration,
    per_row: Duration,
) -> (Session, BioFederation) {
    let fed = bio_federation(
        &GdbConfig {
            loci,
            seed: 97,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 50,
            links_per_entry: 3,
            seq_len: 60,
            seed: 97,
        },
        LatencyModel::real(per_request, per_row),
        LatencyModel::real(per_request, per_row),
    )
    .expect("federation");
    let mut session = Session::new();
    session.register_driver(fed.gdb.clone());
    session.register_driver(fed.genbank.clone());
    (session, fed)
}

/// The Loci22 CPL text (E7).
pub const LOCI22: &str = r#"{[locus_symbol = x, genbank_ref = y] |
    [locus_symbol = \x, locus_id = \a, ...] <- GDB-Tab("locus"),
    [genbank_ref = \y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
    [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}"#;

/// Optimizer configurations compared by the ablation experiments.
pub fn config_variants() -> Vec<(&'static str, OptConfig)> {
    vec![
        ("full", OptConfig::default()),
        (
            "no-pushdown",
            OptConfig {
                enable_pushdown: false,
                ..OptConfig::default()
            },
        ),
        (
            // monadic rules only, sequential: isolates what the naive
            // remote plan costs without joins/caching/concurrency
            "local-no-cache",
            OptConfig {
                enable_pushdown: false,
                enable_joins: false,
                enable_cache: false,
                enable_parallel: false,
                ..OptConfig::default()
            },
        ),
        ("none", OptConfig::none()),
    ]
}

/// E9: per-locus remote aggregate whose inner subquery is outer-
/// independent (cacheable): pairs every locus with the total number of
/// class-1 GenBank cross-references.
pub const CACHEABLE: &str = r#"{[s = l.locus_symbol,
       n = count({e | \e <- GDB-Tab("object_genbank_eref"), e.object_class_key = 1})] |
    \l <- GDB-Tab("locus")}"#;

/// E11: per-element remote calls (links), parallelizable. `UIDS` must be
/// bound in the session (see [`bind_uids`]).
pub const CONCURRENCY: &str =
    r#"{[u = uid, n = count(GenBank([db = "na", link = uid]))] | \uid <- UIDS}"#;

/// E13: the two-source overlap workload for the concurrency report —
/// per-uid requests to *both* servers (GenBank neighbor links and a GDB
/// locus lookup), so the latency-overlapping scheduler can keep both
/// sources busy at once, bounded by each one's admission budget. `UIDS`
/// must be bound in the session (see [`bind_uids`]).
pub const TWO_SOURCE_CONCURRENCY: &str = r#"{[u = uid,
       links = count(GenBank([db = "na", link = uid])),
       loci = count({l | \l <- GDB-Tab("locus"), l.locus_id = uid})] |
    \uid <- UIDS}"#;

/// Bind `UIDS` to the first `n` GenBank entry uids.
pub fn bind_uids(session: &mut Session, fed: &BioFederation, n: usize) {
    let uids: Vec<Value> = fed
        .genbank_data
        .entries
        .iter()
        .take(n)
        .map(|e| Value::Int(e.uid))
        .collect();
    session.bind_value("UIDS", Value::set(uids));
}

/// Rewrite every `ParExt` in the plan to the requested width (1 =
/// sequential), sharing untouched subtrees.
pub fn set_par_width(e: &Expr, width: usize) -> Expr {
    fn go(e: &Arc<Expr>, width: usize) -> Arc<Expr> {
        let e = Expr::map_children_shared(e, &mut |c| go(c, width));
        match &*e {
            Expr::ParExt {
                kind,
                var,
                body,
                source,
                batch,
                ..
            } => Arc::new(Expr::ParExt {
                kind: *kind,
                var: var.clone(),
                body: body.clone(),
                source: source.clone(),
                max_in_flight: width,
                batch: batch.clone(),
            }),
            _ => e,
        }
    }
    (*go(&Arc::new(e.clone()), width)).clone()
}

// ------------------------------------------------------------------------
// E14: row-pipelined execution (the `row_pipeline` report).
// ------------------------------------------------------------------------

/// The row-pipeline workload: `drivers` SlowDrivers, each scanned
/// `arms_per_driver` times in one union spine, every row costing
/// `per_row` of real transfer latency. With `prefetch_rows = 0` the
/// consumer pays every row on its own clock (the PR-3 fully-lazy
/// behavior: requests overlap, rows do not); with `prefetch_rows >=
/// rows` each driver's pool workers pull their arms' rows concurrently,
/// so elapsed time approaches one arm's transfer instead of the sum.
/// Returns the execution context, the union plan, and the drivers (for
/// metrics assertions).
pub fn row_pipeline_workload(
    drivers: usize,
    arms_per_driver: usize,
    rows: i64,
    per_request: Duration,
    per_row: Duration,
    prefetch_rows: usize,
) -> (Arc<Context>, Expr, Vec<Arc<kleisli_core::testutil::SlowDriver>>) {
    use kleisli_core::testutil::SlowDriver;
    let mut ctx = Context::new();
    let mut slow = Vec::new();
    let mut arms: Vec<Expr> = Vec::new();
    for d in 0..drivers {
        let name = format!("S{d}");
        let driver = SlowDriver::pipelined(
            &name,
            rows,
            per_request,
            per_row,
            arms_per_driver.max(1),
            prefetch_rows,
        );
        slow.push(Arc::clone(&driver));
        ctx.register_driver(driver);
        for a in 0..arms_per_driver {
            // Tag rows per arm so the set union keeps every arm's rows.
            let scan = Expr::Remote {
                driver: nrc::name(&name),
                request: DriverRequest::TableScan {
                    table: "t".into(),
                    columns: None,
                },
            };
            arms.push(Expr::ext(
                CollKind::Set,
                "x",
                Expr::single(
                    CollKind::Set,
                    Expr::record(vec![
                        ("src", Expr::int((d * arms_per_driver + a) as i64)),
                        ("n", Expr::proj(Expr::var("x"), "n")),
                    ]),
                ),
                scan,
            ));
        }
    }
    let plan = arms
        .into_iter()
        .rev()
        .reduce(|acc, arm| Expr::union(CollKind::Set, arm, acc))
        .expect("at least one arm");
    (Arc::new(ctx), plan, slow)
}

// ------------------------------------------------------------------------
// E9: structural sharing of plans (the `plan_sharing` bench).
// ------------------------------------------------------------------------

/// A deep nested comprehension: `depth` levels of
/// `U{ if xi < B then {[a = xi + 1, b = xi * 2, s = {inner}]} else {} | \xi <- inner }`
/// over a small constant set — wide enough per level that the plan has a
/// few hundred nodes, and shaped so the monadic rules genuinely rewrite
/// parts of it on the first optimizer pass.
pub fn deep_comprehension(depth: usize, width: i64) -> Expr {
    let mut e = int_set(width);
    for i in 0..depth {
        let v = format!("x{i}");
        let xi = || Expr::var(&v);
        // a wide record of nested arithmetic per level keeps the plan at
        // realistic size (tens of nodes per comprehension level)
        let field = |mul: i64, add: i64| {
            Expr::prim(
                Prim::Add,
                vec![
                    Expr::prim(
                        Prim::Mul,
                        vec![xi(), Expr::prim(Prim::Add, vec![xi(), Expr::int(mul)])],
                    ),
                    Expr::prim(Prim::Mod, vec![xi(), Expr::int(add)]),
                ],
            )
        };
        let body = Expr::if_(
            Expr::prim(Prim::Lt, vec![xi(), Expr::int(width * 2)]),
            Expr::single(
                CollKind::Set,
                Expr::record(vec![
                    ("a", field(1, 7)),
                    ("b", field(2, 11)),
                    ("c", field(3, 13)),
                    ("d", field(5, 17)),
                    ("e", field(8, 19)),
                    ("f", field(13, 23)),
                ]),
            ),
            Expr::Empty(CollKind::Set),
        );
        // keep the next level iterating ints, not records
        let proj = Expr::ext(
            CollKind::Set,
            "r",
            Expr::single(CollKind::Set, Expr::proj(Expr::var("r"), "a")),
            Expr::ext(CollKind::Set, &v, body, e),
        );
        e = proj;
    }
    e
}

// ------------------------------------------------------------------------
// E12: subplan caching (the `plan_cache` bench).
// ------------------------------------------------------------------------

/// A plan in which one deep subtree is *shared* (one `Arc`, `copies`
/// occurrences): `union(S, union(S, ... union(S, S)))`. The memoized
/// rewrite engine rewrites `S` once per fixpoint; the unmemoized engine
/// walks it once per occurrence.
pub fn shared_subtree_plan(copies: usize, depth: usize, width: i64) -> Arc<Expr> {
    let shared = Arc::new(deep_comprehension(depth, width));
    let mut e = Arc::clone(&shared);
    for _ in 1..copies.max(1) {
        e = Arc::new(Expr::Union(CollKind::Set, Arc::clone(&shared), e));
    }
    e
}

/// Fixpoint over the resolve + monadic sets with the rewrite memo toggled.
pub fn memo_fixpoint(e: Arc<Expr>, config: &OptConfig, memo: bool) -> Arc<Expr> {
    let config = OptConfig {
        enable_rewrite_memo: memo,
        ..config.clone()
    };
    shared_fixpoint(e, &config)
}

/// A session with a small local database and the plan cache sized by
/// `capacity` (0 disables caching — the repeat-compile baseline).
pub fn compile_session(capacity: usize) -> Session {
    let mut session = Session::new();
    session.set_plan_cache_capacity(capacity);
    session.bind_value(
        "DB",
        Value::set(
            (0..64)
                .map(|i| {
                    Value::record_from(vec![
                        ("k", Value::Int(i % 7)),
                        ("v", Value::Int(i)),
                        ("name", Value::str(format!("row{i}"))),
                    ])
                })
                .collect(),
        ),
    );
    session
}

/// The query repeatedly compiled by the plan-cache experiment: enough
/// nesting and pattern sugar that a compile costs a realistic amount.
pub const REPEAT_COMPILE: &str = r"{[k = x.k, total = sum({y.v | \y <- DB, y.k = x.k}),
      names = {y.name | \y <- DB, y.k = x.k}] | \x <- DB}";

/// Run one rule set to fixpoint the way the pre-sharing engine did:
/// every pass rebuilds **every** node of the plan (one fresh allocation
/// per node, exactly like the old `Box<Expr>` `map_children`), and the
/// fixpoint test is the structural `changed` flag. This is the honest
/// baseline for the `plan_sharing` bench — same rules, same strategy,
/// same fixpoint bound, different plan representation discipline.
pub fn legacy_run_rule_set(
    rs: &kleisli_opt::RuleSet,
    e: Arc<Expr>,
    ctx: &kleisli_opt::RuleCtx<'_>,
) -> Arc<Expr> {
    fn rebuild_all(
        rs: &kleisli_opt::RuleSet,
        e: &Arc<Expr>,
        ctx: &kleisli_opt::RuleCtx<'_>,
        changed: &mut bool,
        top_down: bool,
    ) -> Arc<Expr> {
        let apply_here = |mut cur: Arc<Expr>, changed: &mut bool| -> Arc<Expr> {
            'outer: for _ in 0..ctx.config.max_passes {
                for rule in &rs.rules {
                    if let Some(new) = (rule.apply)(&cur, ctx) {
                        *changed = true;
                        cur = Arc::new(new);
                        continue 'outer;
                    }
                }
                break;
            }
            cur
        };
        let go_children = |e: &Arc<Expr>, changed: &mut bool| -> Arc<Expr> {
            let rebuilt =
                Expr::map_children_shared(e, &mut |c| rebuild_all(rs, c, ctx, changed, top_down));
            // Force the old representation's cost model: one fresh node
            // allocation per plan node per pass, even when unchanged.
            if Arc::ptr_eq(&rebuilt, e) {
                Arc::new((**e).clone())
            } else {
                rebuilt
            }
        };
        if top_down {
            let e2 = apply_here(Arc::clone(e), changed);
            go_children(&e2, changed)
        } else {
            let e2 = go_children(e, changed);
            apply_here(e2, changed)
        }
    }
    let top_down = matches!(rs.strategy, kleisli_opt::Strategy::TopDown);
    let mut e = e;
    for _ in 0..ctx.config.max_passes {
        let mut changed = false;
        e = rebuild_all(rs, &e, ctx, &mut changed, top_down);
        if !changed {
            break;
        }
    }
    e
}

/// Fixpoint over the resolve + monadic sets with the sharing engine.
pub fn shared_fixpoint(e: Arc<Expr>, config: &OptConfig) -> Arc<Expr> {
    let ctx = kleisli_opt::RuleCtx {
        catalog: &kleisli_opt::NullCatalog,
        config,
    };
    let mut trace = Vec::new();
    let e = kleisli_opt::rules::resolve::rule_set().run(e, &ctx, &mut trace);
    kleisli_opt::rules::monadic::rule_set().run(e, &ctx, &mut trace)
}

/// Fixpoint over the same sets with the legacy rebuild-every-pass engine.
pub fn legacy_fixpoint(e: Arc<Expr>, config: &OptConfig) -> Arc<Expr> {
    let ctx = kleisli_opt::RuleCtx {
        catalog: &kleisli_opt::NullCatalog,
        config,
    };
    let e = legacy_run_rule_set(&kleisli_opt::rules::resolve::rule_set(), e, &ctx);
    legacy_run_rule_set(&kleisli_opt::rules::monadic::rule_set(), e, &ctx)
}

/// The deep clones the pre-sharing streaming executor performed while
/// assembling the `ExtStream` chain for the first output element: one
/// full copy of the remaining body at every comprehension level. The
/// returned node count keeps the optimizer from eliding the work.
pub fn legacy_stream_clone_cost(e: &Expr) -> usize {
    match e {
        Expr::Ext { body, source, .. } => {
            let cloned = body.deep_clone();
            cloned.size() + legacy_stream_clone_cost(source)
        }
        Expr::Union(_, a, b) => {
            // the lazy right side was cloned up front
            let cloned = b.deep_clone();
            cloned.size() + legacy_stream_clone_cost(a)
        }
        _ => 0,
    }
}

/// Build the stream for `e` and pull the first element (the paper's
/// fast-first-response path); returns how many rows came out.
pub fn stream_first(e: &Expr) -> usize {
    let ctx = Arc::new(Context::new());
    kleisli_exec::first_n(e, 1, &Env::empty(), &ctx)
        .expect("stream")
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kleisli_exec::{eval, Context, Env};

    #[test]
    fn projections_agree() {
        let rows = remy_rows(1000, 8);
        assert_eq!(
            project_plain(&rows, "field3"),
            project_cached(&rows, "field3")
        );
    }

    #[test]
    fn fusion_workloads_evaluate() {
        let ctx = Context::new();
        let v = eval(&vertical_pipeline(100), &Env::empty(), &ctx).unwrap();
        assert_eq!(v.len(), Some(100));
        let h = eval(&horizontal_pipeline(100), &Env::empty(), &ctx).unwrap();
        assert_eq!(h.len(), Some(200));
    }

    #[test]
    fn join_workloads_agree_across_strategies() {
        let (l, r) = join_inputs(200, 10);
        let ctx = Context::new();
        let naive = eval(&join_query(l.clone(), r.clone(), None), &Env::empty(), &ctx).unwrap();
        for s in [
            JoinStrategy::BlockedNl { block_size: 64 },
            JoinStrategy::IndexedNl,
        ] {
            let v = eval(
                &join_query(l.clone(), r.clone(), Some(s)),
                &Env::empty(),
                &ctx,
            )
            .unwrap();
            assert_eq!(v, naive);
        }
    }
}
