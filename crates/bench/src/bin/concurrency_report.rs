//! Measure the concurrency-first execution win and record it in
//! `BENCH_concurrency.json` at the repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin concurrency_report --release
//! ```
//!
//! Two experiments over the GDB + GenBank federation with *real* (slept)
//! per-request latency:
//!
//! * **two-source overlap** — the E13 query issues per-uid requests to
//!   both servers. The blocking baseline submits and immediately waits on
//!   every driver request in turn (the pre-submit/handle world, forced by
//!   rewriting every `ParExt` to width 1 and using the eager evaluator);
//!   the concurrent run goes through `Session::submit` → `QueryHandle`,
//!   keeping up to each server's admission budget in flight.
//! * **width scaling** — the same query at parallel widths 1/2/5: elapsed
//!   time should fall near-linearly up to GenBank's budget of 5.

use std::time::{Duration, Instant};

use bench_harness::{bind_uids, latency_federation, set_par_width, TWO_SOURCE_CONCURRENCY};
use kleisli::Compiled;
use kleisli_opt::OptConfig;

const PER_REQUEST_MS: u64 = 4;
const UIDS: usize = 16;

fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn at_width(compiled: &Compiled, width: usize) -> Compiled {
    let mut c = compiled.clone();
    c.optimized = set_par_width(&compiled.optimized, width);
    c
}

fn main() {
    let (mut session, _fed) = latency_federation(40, Duration::from_millis(PER_REQUEST_MS));
    bind_uids(&mut session, &_fed, UIDS);
    // Ablate subquery caching so the experiment isolates concurrency (the
    // caching win is E9's story); everything else stays default.
    session.set_opt_config(OptConfig {
        enable_cache: false,
        ..OptConfig::default()
    });
    let compiled = session.compile(TWO_SOURCE_CONCURRENCY).expect("compile");

    // --- two-source overlap ---------------------------------------------
    let reps = 3;
    let sequential = at_width(&compiled, 1);
    let blocking_result = session.run_compiled(&sequential).expect("blocking");
    let blocking = time_best_of(reps, || {
        session.run_compiled(&sequential).expect("blocking")
    });
    let concurrent_result = session
        .submit_compiled(&compiled)
        .wait()
        .expect("concurrent");
    let concurrent = time_best_of(reps, || {
        session
            .submit_compiled(&compiled)
            .wait()
            .expect("concurrent")
    });
    assert_eq!(
        blocking_result, concurrent_result,
        "overlap must not change the answer"
    );
    let speedup = ms(blocking) / ms(concurrent);
    // Expected ~4x on an idle machine (recorded in the JSON); the hard
    // floor here is deliberately loose so scheduling jitter on a loaded
    // CI runner doesn't fail the smoke — it only guards against the
    // overlap disappearing entirely.
    assert!(
        speedup >= 1.3,
        "two-source overlap has vanished (got {speedup:.2}x: \
         blocking {blocking:?}, concurrent {concurrent:?})"
    );

    // --- width scaling ---------------------------------------------------
    let mut scaling = Vec::new();
    for width in [1usize, 2, 5] {
        let c = at_width(&compiled, width);
        let t = time_best_of(reps, || {
            session.submit_compiled(&c).wait().expect("scaled run")
        });
        scaling.push((width, ms(t)));
    }

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(w, t)| format!(r#"    {{ "width": {w}, "elapsed_ms": {t:.2} }}"#))
        .collect();
    let json = format!(
        r#"{{
  "bench": "concurrency",
  "description": "Concurrency-first execution: the two-phase submit/handle driver API overlapping real per-request latency across two sources (per-uid GenBank link lookups + GDB locus lookups), versus the blocking submit-then-wait baseline at parallel width 1. Admission budgets (GDB 8, GenBank 5) are enforced by per-driver gates.",
  "command": "cargo run -p bench-harness --bin concurrency_report --release",
  "two_source_overlap": {{
    "query": "per-uid GenBank links + GDB locus lookup over {UIDS} uids",
    "per_request_ms": {PER_REQUEST_MS},
    "budgets": {{ "GDB": 8, "GenBank": 5 }},
    "blocking_ms": {blocking:.2},
    "concurrent_ms": {concurrent:.2},
    "speedup": {speedup:.2}
  }},
  "width_scaling": [
{scaling}
  ]
}}
"#,
        blocking = ms(blocking),
        concurrent = ms(concurrent),
        scaling = scaling_json.join(",\n"),
    );
    std::fs::write("BENCH_concurrency.json", &json).expect("write BENCH_concurrency.json");
    println!("{json}");
    println!(
        "two-source overlap: blocking {:.2} ms, concurrent {:.2} ms ({speedup:.2}x)",
        ms(blocking),
        ms(concurrent),
    );
}
