//! Measure batched driver round-trips (IN-list / multi-uid pushdown)
//! and record them in `BENCH_batching.json` at the repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin batching_report --release
//! cargo run -p bench-harness --bin batching_report --release -- --smoke
//! ```
//!
//! The workload is the per-uid GenBank link loop (E11's `CONCURRENCY`
//! query) over 32 bound uids, with a real per-request sleep. Without
//! batching every uid costs one wire round-trip, overlapped up to the
//! server's admission budget; with batching the optimizer's `BatchSpec`
//! mark lets the executor pre-fetch the whole key set as
//! `ceil(32 / max_keys)` multi-uid wire requests that the per-element
//! submissions then attach to.
//!
//! Two hard claims, asserted here and re-checked in CI's smoke run:
//! results are **identical** to the unbatched path (values and their
//! printed form), and the batched run issues at least **5x fewer**
//! wire requests to the GenBank driver.
//!
//! `--smoke` shrinks the timing sample for CI runners; the request-count
//! claim is deterministic and stays at full strength.

use std::time::{Duration, Instant};

use bench_harness::{bind_uids, latency_federation, CONCURRENCY};
use kleisli_core::{MetricsSnapshot, Value};

const UIDS: usize = 32;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The `q`-quantile (nearest-rank) of an unsorted sample.
fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    samples.sort();
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// One configuration's run: the result value, the GenBank wire metrics
/// for a single query, and per-query latencies over `runs` repetitions.
fn measure(batching: bool, runs: usize) -> (Value, MetricsSnapshot, Vec<Duration>) {
    let (mut s, fed) = latency_federation(40, Duration::from_millis(4));
    bind_uids(&mut s, &fed, UIDS);
    s.set_batching(batching);
    let compiled = s.compile(CONCURRENCY).expect("compile");
    s.reset_metrics();
    let value = s.run_compiled(&compiled).expect("query");
    let metrics = s.driver_metrics("GenBank").expect("metrics");
    let times = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            s.run_compiled(&compiled).expect("query");
            t0.elapsed()
        })
        .collect();
    drop(fed);
    (value, metrics, times)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { 3usize } else { 15 };

    let (unbatched_value, unbatched_m, mut unbatched_t) = measure(false, runs);
    let (batched_value, batched_m, mut batched_t) = measure(true, runs);

    // Semantics first: the batched plan must be indistinguishable from
    // the per-element plan, down to the printed form.
    assert_eq!(
        batched_value, unbatched_value,
        "batched execution changed the result"
    );
    assert_eq!(
        batched_value.to_string(),
        unbatched_value.to_string(),
        "batched execution changed the result's printed form"
    );

    // The tentpole claim: >= 5x fewer wire requests at 32 keys. The
    // driver counts one `requests` tick per wire round-trip, batched or
    // not (32 unbatched; ceil(32/16) = 2 batched).
    assert!(
        unbatched_m.requests >= 5 * batched_m.requests.max(1),
        "batching stopped cutting round-trips: {} unbatched vs {} batched wire requests",
        unbatched_m.requests,
        batched_m.requests,
    );
    assert!(
        batched_m.batch_requests > 0 && batched_m.batched_keys as usize == UIDS,
        "the batched run did not actually batch: {batched_m:?}"
    );

    let (un_p50, un_p99) = (
        percentile(&mut unbatched_t, 0.5),
        percentile(&mut unbatched_t, 0.99),
    );
    let (ba_p50, ba_p99) = (
        percentile(&mut batched_t, 0.5),
        percentile(&mut batched_t, 0.99),
    );
    let reduction = unbatched_m.requests as f64 / batched_m.requests.max(1) as f64;
    let p50_speedup = ms(un_p50) / ms(ba_p50);

    let json = format!(
        r#"{{
  "bench": "batching",
  "description": "Batched driver round-trips: the per-uid GenBank link workload (32 uids, 4 ms per wire request) with the optimizer's IN-list/multi-uid batching mark on vs off. The batched plan must return identical results while issuing at least 5x fewer wire requests (ceil(32/16) = 2 instead of 32); wall-clock improves because two batched round-trips replace 32 admission-bounded overlapped ones.",
  "command": "cargo run -p bench-harness --bin batching_report --release",
  "smoke": {smoke},
  "workload": "{UIDS} per-uid GenBank link counts (E11 CONCURRENCY), {runs} timed repetitions",
  "unbatched": {{
    "wire_requests": {un_requests},
    "p50_ms": {un_p50:.2},
    "p99_ms": {un_p99:.2}
  }},
  "batched": {{
    "wire_requests": {ba_requests},
    "batch_requests": {batch_requests},
    "batched_keys": {batched_keys},
    "coalesced": {coalesced},
    "p50_ms": {ba_p50:.2},
    "p99_ms": {ba_p99:.2}
  }},
  "request_reduction": {reduction:.2},
  "p50_speedup": {p50_speedup:.2},
  "identical_results": true
}}
"#,
        un_requests = unbatched_m.requests,
        ba_requests = batched_m.requests,
        batch_requests = batched_m.batch_requests,
        batched_keys = batched_m.batched_keys,
        coalesced = batched_m.coalesced,
        un_p50 = ms(un_p50),
        un_p99 = ms(un_p99),
        ba_p50 = ms(ba_p50),
        ba_p99 = ms(ba_p99),
    );
    std::fs::write("BENCH_batching.json", &json).expect("write BENCH_batching.json");
    println!("{json}");
    println!(
        "batching: {} -> {} wire requests ({reduction:.1}x); p50 {:.2} ms -> {:.2} ms ({p50_speedup:.2}x)",
        unbatched_m.requests,
        batched_m.requests,
        ms(un_p50),
        ms(ba_p50),
    );
}
