//! Measure the block-pull protocol win and record it in
//! `BENCH_blocks.json` at the repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin blocks_report --release
//! cargo run -p bench-harness --bin blocks_report --release -- --smoke
//! ```
//!
//! Three experiments:
//!
//! * **row-heavy scans** — the row-pipeline workload (a union of remote
//!   scans over `SlowDriver`s with *real* slept per-row transfer
//!   latency), lazy single-row baseline (`prefetch_rows = 0`, grain-1
//!   pulls: exactly the pre-block protocol) versus the block pipeline
//!   (pool workers prefetch whole `ValueBlock`s, one condvar wake per
//!   block, the consumer drains at full grain). Results asserted
//!   identical.
//! * **cpu block drain** — pure CPU, no sleeps: a materialized list
//!   streamed through the pull protocol, grain-1 view (one `ValueBlock`
//!   per row — the single-row protocol's cost shape) versus the full
//!   `DEFAULT_BLOCK_ROWS` grain (one allocation per 64 rows). This
//!   isolates what batching buys with latency out of the picture. A
//!   second pure-CPU measurement runs the fused filter/project
//!   generator at both grains; per-row body evaluation dominates there,
//!   so the guard is only that batching never loses.
//! * **fully-lazy guard** — `prefetch_rows = 0` must stay byte-identical
//!   to the eager answer, prefetch nothing, and ship zero blocks
//!   through the prefetch buffer: clamped-to-0 *is* the single-row
//!   protocol.
//!
//! `--smoke` shrinks the workloads and loosens the floors for CI runners.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::row_pipeline_workload;
use kleisli_core::{CollKind, Value};
use kleisli_exec::{collect_blocks, collect_stream, eval, eval_blocks, eval_stream, Context, Env};
use nrc::{Expr, Prim};

fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Drain through the grain-1 row view — the single-row baseline.
fn run_rows(ctx: &Arc<Context>, plan: &Expr, kind: CollKind) -> Value {
    collect_stream(eval_stream(plan, &Env::empty(), ctx).expect("stream"), kind).expect("collect")
}

/// Drain at the full block grain — the batched path.
fn run_blocks(ctx: &Arc<Context>, plan: &Expr, kind: CollKind) -> Value {
    collect_blocks(eval_blocks(plan, &Env::empty(), ctx).expect("blocks"), kind).expect("collect")
}

/// Transport-only pure-CPU workload: stream a materialized list through
/// the pull protocol — no evaluation per row at all, so the cost *is*
/// the protocol (one block per pull versus one block per row).
fn drain_plan(n: i64) -> Expr {
    Expr::Const(Value::list((0..n).map(Value::Int).collect()))
}

/// Fused filter/projection over an in-memory scan — the shape the
/// batched generator evaluates in one pass per block. Per-row body
/// evaluation dominates here; the guard is that batching never loses.
fn fused_plan(n: i64) -> Expr {
    Expr::ext(
        CollKind::List,
        "x",
        Expr::if_(
            Expr::eq(
                Expr::prim(Prim::Mod, vec![Expr::var("x"), Expr::int(4)]),
                Expr::int(0),
            ),
            Expr::single(
                CollKind::List,
                Expr::prim(Prim::Mul, vec![Expr::var("x"), Expr::int(3)]),
            ),
            Expr::Empty(CollKind::List),
        ),
        Expr::Const(Value::list((0..n).map(Value::Int).collect())),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rows, per_row_us, reps, floor, cpu_rows, cpu_floor) = if smoke {
        (16i64, 1000u64, 2usize, 1.3f64, 50_000i64, 1.0f64)
    } else {
        (48, 1000, 3, 3.9, 400_000, 1.5)
    };
    const DRIVERS: usize = 3;
    const ARMS_PER_DRIVER: usize = 2;
    let per_request = Duration::from_millis(2);
    let per_row = Duration::from_micros(per_row_us);

    // --- row-heavy scans: single-row lazy vs block pipeline -------------
    let (lazy_ctx, lazy_plan, _) =
        row_pipeline_workload(DRIVERS, ARMS_PER_DRIVER, rows, per_request, per_row, 0);
    let (pre_ctx, pre_plan, pre_drivers) = row_pipeline_workload(
        DRIVERS,
        ARMS_PER_DRIVER,
        rows,
        per_request,
        per_row,
        rows as usize,
    );

    let lazy_result = run_rows(&lazy_ctx, &lazy_plan, CollKind::Set);
    let pre_result = run_blocks(&pre_ctx, &pre_plan, CollKind::Set);
    assert_eq!(
        lazy_result, pre_result,
        "block prefetch must not change the answer"
    );

    let lazy = time_best_of(reps, || run_rows(&lazy_ctx, &lazy_plan, CollKind::Set));
    let pipelined = time_best_of(reps, || run_blocks(&pre_ctx, &pre_plan, CollKind::Set));
    let speedup = ms(lazy) / ms(pipelined);
    // 6 arms across 3 drivers (2 pool workers each): the theoretical
    // row-transfer win is ~6x; the floor guards the PR-6 3.9x mark.
    assert!(
        speedup >= floor,
        "block pipelining lost the row-heavy-scan win (got {speedup:.2}x, \
         floor {floor}: lazy {lazy:?}, pipelined {pipelined:?})"
    );
    let (prefetched, pulled, blocks_shipped) = pre_drivers
        .iter()
        .map(|d| d.metrics.snapshot())
        .fold((0u64, 0u64, 0u64), |acc, m| {
            (
                acc.0 + m.rows_prefetched,
                acc.1 + m.rows_pulled,
                acc.2 + m.blocks_shipped,
            )
        });
    assert!(
        blocks_shipped > 0,
        "the pipelined run must ship its rows in blocks"
    );

    // --- cpu block drain: grain-1 view vs full-grain batches ------------
    let cpu_ctx = Arc::new(Context::new());
    let cpu_reps = reps.max(3);

    let drain = drain_plan(cpu_rows);
    let drain_rows_v = run_rows(&cpu_ctx, &drain, CollKind::List);
    let drain_blocks_v = run_blocks(&cpu_ctx, &drain, CollKind::List);
    assert_eq!(drain_rows_v, drain_blocks_v, "grain must not change the answer");
    let drain_rows_t = time_best_of(cpu_reps, || run_rows(&cpu_ctx, &drain, CollKind::List));
    let drain_blocks_t = time_best_of(cpu_reps, || run_blocks(&cpu_ctx, &drain, CollKind::List));
    let cpu_speedup = ms(drain_rows_t) / ms(drain_blocks_t);
    assert!(
        cpu_speedup >= cpu_floor,
        "batched drain lost its pure-CPU win (got {cpu_speedup:.2}x, floor {cpu_floor}: \
         grain-1 {drain_rows_t:?}, blocks {drain_blocks_t:?})"
    );

    let fused = fused_plan(cpu_rows);
    let fused_rows_v = run_rows(&cpu_ctx, &fused, CollKind::List);
    let fused_blocks_v = run_blocks(&cpu_ctx, &fused, CollKind::List);
    assert_eq!(fused_rows_v, fused_blocks_v, "grain must not change the answer");
    let fused_rows_t = time_best_of(cpu_reps, || run_rows(&cpu_ctx, &fused, CollKind::List));
    let fused_blocks_t = time_best_of(cpu_reps, || run_blocks(&cpu_ctx, &fused, CollKind::List));
    let fused_speedup = ms(fused_rows_t) / ms(fused_blocks_t);
    // Per-row body evaluation dominates this one; batching must simply
    // never lose (the margin absorbs runner noise).
    assert!(
        fused_speedup >= 0.9,
        "fused batch evaluation became a pessimization (got {fused_speedup:.2}x: \
         grain-1 {fused_rows_t:?}, blocks {fused_blocks_t:?})"
    );

    // --- fully-lazy guard: prefetch 0 is the single-row protocol --------
    let (guard_ctx, guard_plan, guard_drivers) =
        row_pipeline_workload(DRIVERS, ARMS_PER_DRIVER, rows, per_request, per_row, 0);
    let streamed = run_rows(&guard_ctx, &guard_plan, CollKind::Set);
    let eager = eval(&guard_plan, &Env::empty(), &guard_ctx).expect("eager");
    assert_eq!(streamed, eager, "prefetch_rows = 0 must stay byte-identical");
    let (guard_prefetched, guard_blocks) = guard_drivers
        .iter()
        .map(|d| d.metrics.snapshot())
        .fold((0u64, 0u64), |acc, m| {
            (acc.0 + m.rows_prefetched, acc.1 + m.blocks_shipped)
        });
    assert_eq!(guard_prefetched, 0, "prefetch_rows = 0 must prefetch nothing");
    assert_eq!(
        guard_blocks, 0,
        "prefetch_rows = 0 must bypass the block buffer entirely"
    );

    let total_rows = rows as usize * DRIVERS * ARMS_PER_DRIVER;
    let json = format!(
        r#"{{
  "bench": "blocks",
  "description": "Block pull protocol: drivers ship ValueBlocks, the pool prefetches and wakes per block, and the executor drains fused filter/project batches, versus the single-row grain-1 baseline (byte-identical by construction). Row-heavy scans overlap real per-row transfer latency across union arms; the cpu section isolates the pure-CPU batching win with no sleeps; prefetch_rows = 0 stays byte-identical to the eager answer with zero rows prefetched and zero blocks shipped.",
  "command": "cargo run -p bench-harness --bin blocks_report --release",
  "smoke": {smoke},
  "row_heavy_scans": {{
    "workload": "union of {arms} remote scans across {drivers} drivers, {rows} rows per scan ({total_rows} rows), {per_row_us} us per row + {per_request_ms} ms per request (real sleeps)",
    "prefetch_rows": {rows},
    "lazy_ms": {lazy:.2},
    "pipelined_ms": {pipelined:.2},
    "speedup": {speedup:.2},
    "rows_prefetched": {prefetched},
    "rows_pulled": {pulled},
    "blocks_shipped": {blocks_shipped}
  }},
  "cpu_block_drain": {{
    "workload": "stream drain of a materialized list of {cpu_rows} rows, no latency, no per-row evaluation",
    "grain1_ms": {drain_rows_ms:.2},
    "blocks_ms": {drain_blocks_ms:.2},
    "speedup": {cpu_speedup:.2}
  }},
  "cpu_fused_filter_project": {{
    "workload": "fused filter/project (x % 4 = 0 -> x * 3) over an in-memory scan of {cpu_rows} rows, no latency",
    "grain1_ms": {fused_rows_ms:.2},
    "blocks_ms": {fused_blocks_ms:.2},
    "speedup": {fused_speedup:.2}
  }},
  "fully_lazy_guard": {{
    "prefetch_rows": 0,
    "byte_identical_to_eager": true,
    "rows_prefetched": 0,
    "blocks_shipped": 0
  }}
}}
"#,
        arms = DRIVERS * ARMS_PER_DRIVER,
        drivers = DRIVERS,
        per_request_ms = per_request.as_millis(),
        lazy = ms(lazy),
        pipelined = ms(pipelined),
        drain_rows_ms = ms(drain_rows_t),
        drain_blocks_ms = ms(drain_blocks_t),
        fused_rows_ms = ms(fused_rows_t),
        fused_blocks_ms = ms(fused_blocks_t),
    );
    std::fs::write("BENCH_blocks.json", &json).expect("write BENCH_blocks.json");
    println!("{json}");
    println!(
        "row-heavy scans: lazy {:.2} ms, block-pipelined {:.2} ms ({speedup:.2}x); \
         cpu drain: grain-1 {:.2} ms, blocks {:.2} ms ({cpu_speedup:.2}x); \
         fused filter/project {fused_speedup:.2}x",
        ms(lazy),
        ms(pipelined),
        ms(drain_rows_t),
        ms(drain_blocks_t),
    );
}
