//! Measure the deterministic-subplan-caching win and record it in
//! `BENCH_plan_cache.json` at the repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin plan_cache_report --release
//! ```
//!
//! Two experiments, each against the honest "without it" baseline:
//!
//! * **repeat-compile** — `Session::compile` of the same CPL source with
//!   the session plan-cache LRU versus with the cache disabled (capacity
//!   0): every uncached compile re-runs parse → desugar → typecheck →
//!   optimize.
//! * **memoized fixpoint** — the resolve + monadic rule sets to fixpoint
//!   over a plan whose deep subtree is shared by 32 parents, with the
//!   rewrite engine's identity-keyed memo versus without it (each
//!   occurrence re-walked every pass).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::{compile_session, memo_fixpoint, shared_subtree_plan, REPEAT_COMPILE};
use kleisli_opt::OptConfig;

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed() / reps as u32
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    // --- repeat-compile -------------------------------------------------
    let cached = compile_session(64);
    let uncached = compile_session(0);
    let reps = 200;
    let compile_cached = time(reps, || cached.compile(REPEAT_COMPILE).expect("compile"));
    let compile_uncached = time(reps, || uncached.compile(REPEAT_COMPILE).expect("compile"));
    let stats = cached.plan_cache_stats();
    assert!(stats.hits > 0, "warm compiles must hit the plan cache");

    // --- memoized fixpoint ----------------------------------------------
    let copies = 32usize;
    let depth = 6usize;
    let width = 4i64;
    let config = OptConfig::default();
    let plan = shared_subtree_plan(copies, depth, width);
    let nodes = plan.size();
    let reps = 20;
    let fix_memo = time(reps, || memo_fixpoint(Arc::clone(&plan), &config, true));
    let fix_plain = time(reps, || memo_fixpoint(Arc::clone(&plan), &config, false));

    let json = format!(
        r#"{{
  "bench": "plan_cache",
  "description": "Deterministic subplan caching: the session compiled-plan LRU (keyed by source text + OptConfig) vs recompiling every time, and the rewrite engine's identity-keyed per-fixpoint memo vs the unmemoized engine on a plan whose deep subtree is shared by {copies} parents.",
  "command": "cargo run -p bench-harness --bin plan_cache_report --release",
  "repeat_compile": {{
    "query": "per-key grouped aggregation over a 64-row local DB",
    "uncached_us": {cu:.2},
    "cached_us": {cc:.2},
    "speedup": {csp:.2}
  }},
  "memoized_fixpoint": {{
    "plan": {{ "shared_copies": {copies}, "depth": {depth}, "width": {width}, "unfolded_nodes": {nodes} }},
    "unmemoized_us": {fu:.2},
    "memoized_us": {fm:.2},
    "speedup": {fsp:.2}
  }}
}}
"#,
        cu = us(compile_uncached),
        cc = us(compile_cached),
        csp = us(compile_uncached) / us(compile_cached),
        fu = us(fix_plain),
        fm = us(fix_memo),
        fsp = us(fix_plain) / us(fix_memo),
    );
    print!("{json}");
    std::fs::write("BENCH_plan_cache.json", &json).expect("write BENCH_plan_cache.json");
    eprintln!("wrote BENCH_plan_cache.json");
}
