//! Measure the shared-session-executor refactor and the adaptive
//! row-prefetch depth, recording both in `BENCH_executor.json` at the
//! repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin executor_report --release
//! cargo run -p bench-harness --bin executor_report --release -- --smoke
//! ```
//!
//! Three experiments:
//!
//! * **row-heavy scans** — the exact `row_pipeline_report` workload
//!   (union of four remote scans with real per-row transfer latency),
//!   re-measured with the now-adaptive prefetch buffers. Buffers start
//!   at the advertised ceiling, so a fast consumer must see the same
//!   pipelining win PR 4 recorded in `BENCH_row_pipeline.json` — this
//!   is the no-regression guard for the adaptive depth.
//! * **session fan-out** — a burst of concurrent `Session::submit`s,
//!   each a per-element remote loop, on a session with a private
//!   executor. Elapsed time must beat submit-then-wait sequential
//!   execution (the overlap is preserved), while the executor's
//!   `threads_spawned()` stays bounded by its limit — versus the PR-4
//!   ad-hoc model, which created one OS thread per query *plus* one
//!   scoped thread per `ParExt` element evaluation (recorded as
//!   `adhoc_threads_model`).
//! * **adaptive guard** — the same prefetching driver consumed fast and
//!   slow: the fast consumer keeps the full window; the slow consumer's
//!   depth collapses (`prefetch_shrinks > 0`) and its prefetched-row
//!   count drops — the buffer/ticket cost the adaptive depth saves.
//!
//! `--smoke` shrinks the workloads and loosens the floors for CI.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::row_pipeline_workload;
use kleisli::Session;
use kleisli_core::testutil::SlowDriver;
use kleisli_core::{CollKind, Executor, Value};
use kleisli_exec::{collect_stream, eval_stream, Context, Env};
use nrc::Expr;

fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_once(ctx: &Arc<Context>, plan: &Expr) -> Value {
    collect_stream(
        eval_stream(plan, &Env::empty(), ctx).expect("stream"),
        CollKind::Set,
    )
    .expect("collect")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Floors only guard against a win disappearing entirely — expected
    // values on an idle machine are ~3.9x (scans) and ~1.6-2.6x
    // (fan-out, executor-bound by design); see the recorded JSON.
    let (rows, reps, scan_floor, fan_floor) = if smoke {
        (16i64, 2usize, 1.3f64, 1.2f64)
    } else {
        (48, 3, 2.0, 1.3)
    };

    // --- row-heavy scans: adaptive prefetch vs the lazy baseline --------
    const DRIVERS: usize = 2;
    const ARMS_PER_DRIVER: usize = 2;
    let per_request = Duration::from_millis(2);
    let per_row = Duration::from_micros(1000);
    let (lazy_ctx, lazy_plan, _) =
        row_pipeline_workload(DRIVERS, ARMS_PER_DRIVER, rows, per_request, per_row, 0);
    let (pre_ctx, pre_plan, pre_drivers) = row_pipeline_workload(
        DRIVERS,
        ARMS_PER_DRIVER,
        rows,
        per_request,
        per_row,
        rows as usize,
    );
    let lazy_result = run_once(&lazy_ctx, &lazy_plan);
    let pre_result = run_once(&pre_ctx, &pre_plan);
    assert_eq!(
        lazy_result, pre_result,
        "adaptive prefetch must not change the answer"
    );
    let lazy = time_best_of(reps, || run_once(&lazy_ctx, &lazy_plan));
    let pipelined = time_best_of(reps, || run_once(&pre_ctx, &pre_plan));
    let scan_speedup = ms(lazy) / ms(pipelined);
    assert!(
        scan_speedup >= scan_floor,
        "adaptive depth regressed the row pipeline (got {scan_speedup:.2}x: \
         lazy {lazy:?}, pipelined {pipelined:?})"
    );
    let (scan_prefetched, scan_pulled) = pre_drivers
        .iter()
        .map(|d| d.metrics.snapshot())
        .fold((0u64, 0u64), |acc, m| {
            (acc.0 + m.rows_prefetched, acc.1 + m.rows_pulled)
        });

    // --- session fan-out on a bounded shared executor -------------------
    let queries = 8usize;
    let ids = if smoke { 4i64 } else { 8 };
    let exec_limit = 16usize;
    let executor = Executor::new("bench-exec", exec_limit);
    // A generous driver budget keeps the admission gate out of the
    // measurement: what's timed is the executor overlapping the query
    // workers (and their ParExt chunks), bounded by its 16 workers.
    let driver = SlowDriver::new("SRC", 2, Duration::from_millis(4), 64);
    let mut session = Session::with_executor(Arc::clone(&executor));
    session.register_driver(driver);
    session.bind_value("IDS", Value::set((0..ids).map(Value::Int).collect()));
    let q = r#"{[i = i, n = count(SRC([function = "probe", arg = i]))] | \i <- IDS}"#;
    let compiled = session.compile(q).expect("compile");

    let sequential = time_best_of(reps, || {
        for _ in 0..queries {
            session
                .submit_compiled(&compiled)
                .wait()
                .expect("sequential");
        }
    });
    let concurrent = time_best_of(reps, || {
        let handles: Vec<_> = (0..queries)
            .map(|_| session.submit_compiled(&compiled))
            .collect();
        for h in handles {
            h.wait().expect("concurrent");
        }
    });
    let fan_speedup = ms(sequential) / ms(concurrent);
    assert!(
        fan_speedup >= fan_floor,
        "query fan-out overlap has vanished (got {fan_speedup:.2}x: \
         sequential {sequential:?}, concurrent {concurrent:?})"
    );
    let threads_spawned = executor.threads_spawned();
    assert!(
        threads_spawned <= exec_limit,
        "executor workers exceeded the limit: {threads_spawned} > {exec_limit}"
    );
    // PR-4 ad-hoc model: one OS thread per submitted query, plus one
    // scoped thread per ParExt element evaluation — per run of the
    // timed closure above.
    let adhoc_threads_model = queries * (1 + ids as usize);

    // --- adaptive guard: slow consumers stop paying for prefetch --------
    let ceiling = 8usize;
    let consume = |slow: bool| {
        let driver = SlowDriver::pipelined(
            "A",
            40,
            Duration::from_millis(1),
            Duration::from_millis(1),
            2,
            ceiling,
        );
        let metrics = Arc::clone(&driver.metrics);
        let stream = kleisli_core::Driver::submit(
            &*driver,
            &kleisli_core::DriverRequest::TableScan {
                table: "t".into(),
                columns: None,
            },
        )
        .expect("submit")
        .wait()
        .expect("wait");
        let mut n = 0;
        for row in stream {
            row.expect("row");
            n += 1;
            if slow && n < 25 {
                std::thread::sleep(Duration::from_millis(8));
            }
        }
        assert_eq!(n, 40);
        metrics.snapshot()
    };
    let fast = consume(false);
    let slow = consume(true);
    assert!(
        slow.prefetch_shrinks > 0,
        "a slow consumer must shrink the adaptive depth"
    );
    assert!(
        slow.rows_prefetched < fast.rows_prefetched,
        "a collapsed depth must prefetch fewer rows ({} slow vs {} fast)",
        slow.rows_prefetched,
        fast.rows_prefetched
    );

    let total_rows = rows as usize * DRIVERS * ARMS_PER_DRIVER;
    let json = format!(
        r#"{{
  "bench": "executor",
  "description": "Shared session executor + adaptive row prefetch: query workers and ParExt chunks run as tasks on one bounded, lazily-grown compute pool (caller-helping batches, so nested parallelism cannot deadlock), replacing the PR-4 ad-hoc thread-per-query/thread-per-chunk-element model; prefetch buffers adapt their effective depth (0..=Capabilities::prefetch_rows) to the consumer's drain rate vs observed per-row latency.",
  "command": "cargo run -p bench-harness --bin executor_report --release",
  "smoke": {smoke},
  "row_heavy_scans": {{
    "workload": "union of {arms} remote scans across {drivers} drivers, {rows} rows per scan ({total_rows} rows), 1000 us per row + 2 ms per request (real sleeps), adaptive prefetch ceiling {rows}",
    "lazy_ms": {lazy:.2},
    "pipelined_ms": {pipelined:.2},
    "speedup": {scan_speedup:.2},
    "rows_prefetched": {scan_prefetched},
    "rows_pulled": {scan_pulled},
    "baseline": "BENCH_row_pipeline.json row_heavy_scans (static depth, PR 4)"
  }},
  "session_fan_out": {{
    "workload": "{queries} concurrent Session::submit of a {ids}-element per-element remote loop (4 ms per request, driver budget 64 so the executor is the measured bound)",
    "sequential_ms": {sequential:.2},
    "concurrent_ms": {concurrent:.2},
    "speedup": {fan_speedup:.2},
    "executor_threads_spawned": {threads_spawned},
    "executor_limit": {exec_limit},
    "adhoc_threads_model": {adhoc_threads_model}
  }},
  "adaptive_guard": {{
    "prefetch_ceiling": {ceiling},
    "fast_consumer": {{ "rows_prefetched": {fast_pre}, "prefetch_shrinks": {fast_shrinks} }},
    "slow_consumer": {{ "rows_prefetched": {slow_pre}, "prefetch_shrinks": {slow_shrinks}, "prefetch_grows": {slow_grows} }}
  }}
}}
"#,
        arms = DRIVERS * ARMS_PER_DRIVER,
        drivers = DRIVERS,
        lazy = ms(lazy),
        pipelined = ms(pipelined),
        sequential = ms(sequential),
        concurrent = ms(concurrent),
        fast_pre = fast.rows_prefetched,
        fast_shrinks = fast.prefetch_shrinks,
        slow_pre = slow.rows_prefetched,
        slow_shrinks = slow.prefetch_shrinks,
        slow_grows = slow.prefetch_grows,
    );
    std::fs::write("BENCH_executor.json", &json).expect("write BENCH_executor.json");
    println!("{json}");
    println!(
        "row-heavy scans: lazy {:.2} ms, pipelined {:.2} ms ({scan_speedup:.2}x); \
         fan-out: sequential {:.2} ms, concurrent {:.2} ms ({fan_speedup:.2}x) \
         on {threads_spawned} executor threads (ad-hoc model: {adhoc_threads_model})",
        ms(lazy),
        ms(pipelined),
        ms(sequential),
        ms(concurrent),
    );
}
