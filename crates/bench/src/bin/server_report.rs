//! Load-generate the `kleislid` server over real loopback sockets and
//! record the shared-cache numbers in `BENCH_server.json`:
//!
//! ```sh
//! cargo run -p bench-harness --bin server_report --release
//! cargo run -p bench-harness --bin server_report --release -- --smoke
//! ```
//!
//! For each session count N, a fresh server (fresh shared caches) is
//! started against the paper's two-source federation with a fixed
//! per-request driver latency, and N concurrent client connections run
//! the same CPL query:
//!
//! * **cold** — every client fires the query simultaneously against the
//!   empty caches. Single-flight means one compile + one evaluation
//!   process-wide; everyone else blocks on the same flight, so cold
//!   latency ≈ one driver round-trip for all N.
//! * **warm** — each client then repeats the query; every repetition is
//!   a shared-result-cache hit served from memory.
//!
//! Recorded per N: cold/warm p50 and p99 latency, warm throughput, the
//! compile count (asserted == 1 — N identical concurrent queries must
//! compile once), the shared-cache hit ratio, and the result cache's
//! peak resident bytes (asserted <= the configured budget).
//!
//! Two robustness scenarios ride along (see `ARCHITECTURE.md` §9):
//!
//! * **slow client** — one tenant pipelines queries and stops reading
//!   while the other tenants keep their warm loop running. The
//!   stalled reader's frames pile up in *its own* bounded writer
//!   queue, so the healthy tenants' warm p50 must stay within a small
//!   factor of the no-fault baseline.
//! * **drain** — a graceful shutdown is issued with a query mid-
//!   flight; the report records whether the drain completed inside the
//!   deadline and how long it took.
//!
//! `--smoke` shrinks N and the repetition count and loosens the floors
//! for CI runners; the full run asserts warm p50 >= 5x better than cold
//! at 32 sessions and the slow-client ratio <= 1.2x.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, BioFederation, Session};
use kleisli_core::LatencyModel;
use kleisli_server::{serve_ephemeral, Client, Registrar, ServedFrom, ServerConfig, ServerHandle};

const QUERY: &str = r#"{[s = l.locus_symbol] | \l <- GDB-Tab("locus")}"#;

fn federation(latency: Duration) -> BioFederation {
    bio_federation(
        &GdbConfig {
            loci: 200,
            seed: 61,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 20,
            links_per_entry: 2,
            seq_len: 40,
            seed: 61,
        },
        LatencyModel::real(latency, Duration::ZERO),
        LatencyModel::real(latency, Duration::ZERO),
    )
    .expect("federation")
}

fn registrar(fed: &BioFederation) -> Arc<Registrar> {
    let gdb = fed.gdb.clone();
    let genbank = fed.genbank.clone();
    Arc::new(move |session: &mut Session| {
        session.register_driver(gdb.clone());
        session.register_driver(genbank.clone());
    })
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    let idx = (sorted.len().saturating_sub(1) * p) / 100;
    sorted[idx]
}

struct Phase {
    p50: Duration,
    p99: Duration,
    wall: Duration,
    queries: usize,
}

/// One measured run: per-session counts of cache-served replies plus
/// the latency distribution of the phase.
fn run_phase(addr: std::net::SocketAddr, sessions: usize, reps: usize) -> (Phase, usize) {
    let barrier = Barrier::new(sessions);
    let t0 = Instant::now();
    let per_client: Vec<(Vec<Duration>, usize)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(reps);
                    let mut cached = 0usize;
                    barrier.wait();
                    for _ in 0..reps {
                        let t = Instant::now();
                        let (_v, served) = client
                            .query(QUERY)
                            .expect("query")
                            .into_value()
                            .expect("value");
                        latencies.push(t.elapsed());
                        if served == ServedFrom::SharedCache {
                            cached += 1;
                        }
                    }
                    (latencies, cached)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();
    let mut latencies: Vec<Duration> = per_client
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    latencies.sort();
    let cached = per_client.iter().map(|(_, c)| c).sum();
    (
        Phase {
            p50: percentile(&latencies, 50),
            p99: percentile(&latencies, 99),
            wall,
            queries: latencies.len(),
        },
        cached,
    )
}

struct Row {
    sessions: usize,
    cold: Phase,
    warm: Phase,
    speedup_p50: f64,
    compiles: u64,
    hit_ratio: f64,
    peak_bytes: u64,
    resident_bytes: u64,
}

fn measure(server: &ServerHandle, sessions: usize, warm_reps: usize) -> Row {
    // Cold: all N clients race the empty caches with the same query.
    let (cold, _) = run_phase(server.addr(), sessions, 1);
    let compiles = server.plan_cache().stats().misses;

    // Warm: every further repetition is a shared-cache hit.
    let (warm, warm_cached) = run_phase(server.addr(), sessions, warm_reps);
    assert_eq!(
        warm_cached,
        warm.queries,
        "warm phase must be served entirely from the shared result cache"
    );

    let results = server.result_cache().stats();
    assert!(
        results.peak_bytes <= results.budget,
        "peak resident bytes {} exceed the {} budget",
        results.peak_bytes,
        results.budget
    );
    let looked_up = results.hits + results.misses;
    Row {
        sessions,
        speedup_p50: us(cold.p50) / us(warm.p50).max(0.01),
        cold,
        warm,
        compiles,
        hit_ratio: results.hits as f64 / looked_up.max(1) as f64,
        peak_bytes: results.peak_bytes,
        resident_bytes: results.bytes,
    }
}

/// The slow-client isolation scenario: warm the caches, measure the
/// healthy tenants' warm p50 with no fault, then again with one tenant
/// that pipelined `stalled_queries` queries and stopped reading. The
/// stalled reader's frames land in its own bounded writer queue; the
/// other tenants' latency must not move by more than `ceiling`.
struct SlowClient {
    sessions: usize,
    stalled_queries: usize,
    baseline_p50: Duration,
    faulted_p50: Duration,
    ratio: f64,
    ceiling: f64,
}

fn slow_client_scenario(
    fed: &BioFederation,
    budget: u64,
    sessions: usize,
    reps: usize,
    ceiling: f64,
) -> SlowClient {
    use kleisli_server::proto::{encode_request, write_frame, Request};

    let server = serve_ephemeral(
        ServerConfig {
            result_cache_budget: budget,
            ..ServerConfig::default()
        },
        registrar(fed),
    )
    .expect("serve");
    // Warm the shared caches so both phases measure the cached path.
    Client::connect(server.addr())
        .expect("connect")
        .query(QUERY)
        .expect("query")
        .into_value()
        .expect("value");

    // No-fault baseline: every session reads its replies.
    let (baseline, _) = run_phase(server.addr(), sessions, reps);

    // One tenant goes silent: it pipelines queries and never reads a
    // byte back (well under the writer-queue bound, so the stall
    // persists for the whole measured phase instead of being
    // condemned). The remaining tenants re-run the warm loop.
    let stalled_queries = 16;
    let mut stalled = std::net::TcpStream::connect(server.addr()).expect("connect stalled");
    stalled.set_nodelay(true).ok();
    for id in 0..stalled_queries {
        write_frame(
            &mut stalled,
            &encode_request(&Request::Query {
                id: id as u64 + 1,
                src: QUERY.to_string(),
            }),
        )
        .expect("pipeline unread query");
    }
    thread::sleep(Duration::from_millis(20));
    let (faulted, _) = run_phase(server.addr(), sessions - 1, reps);
    drop(stalled);

    let ratio = us(faulted.p50) / us(baseline.p50).max(0.01);
    assert!(
        ratio <= ceiling,
        "one stalled reader among {sessions} sessions moved the healthy warm p50 \
         {ratio:.2}x (ceiling {ceiling}x): baseline {:.1}us, faulted {:.1}us",
        us(baseline.p50),
        us(faulted.p50)
    );
    server.shutdown();
    SlowClient {
        sessions,
        stalled_queries,
        baseline_p50: baseline.p50,
        faulted_p50: faulted.p50,
        ratio,
        ceiling,
    }
}

/// The drain scenario: shut the server down with one fresh (hence
/// slow, one federation round-trip) query mid-flight and report what
/// the deadline-bounded drain accomplished.
fn drain_scenario(fed: &BioFederation, budget: u64, latency: Duration) -> (bool, Duration, Duration) {
    let config = ServerConfig {
        result_cache_budget: budget,
        ..ServerConfig::default()
    };
    let deadline = config.drain_deadline;
    let server = serve_ephemeral(config, registrar(fed)).expect("serve");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.send_query(QUERY).expect("send");
    // Let the query be admitted and reach the driver before draining.
    thread::sleep(latency / 3);
    let report = server.shutdown();
    assert!(
        report.drained,
        "the single in-flight query must finish inside the {deadline:?} drain deadline"
    );
    (report.drained, report.elapsed, deadline)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (session_counts, warm_reps, latency, speedup_floor): (&[usize], usize, Duration, f64) =
        if smoke {
            (&[1, 4], 5, Duration::from_millis(4), 2.0)
        } else {
            // 30 ms/request ≈ a mid-90s WAN round-trip to GDB/GenBank
            // (the deployment the paper describes). The warm path is
            // bounded by local scheduling, not the wire, so the speedup
            // floor is asserted against this cold baseline.
            (&[1, 8, 32], 20, Duration::from_millis(30), 5.0)
        };
    let fed = federation(latency);
    let budget = 8 * 1024 * 1024u64;

    let rows: Vec<Row> = session_counts
        .iter()
        .map(|&sessions| {
            // A fresh server per point: cold means cold caches.
            let server = serve_ephemeral(
                ServerConfig {
                    result_cache_budget: budget,
                    ..ServerConfig::default()
                },
                registrar(&fed),
            )
            .expect("serve");
            let row = measure(&server, sessions, warm_reps);
            server.shutdown();
            row
        })
        .collect();

    for row in &rows {
        assert_eq!(
            row.compiles, 1,
            "{} identical concurrent queries must compile exactly once",
            row.sessions
        );
    }
    // The acceptance floor is asserted at the highest concurrency point
    // (32 sessions in the full run).
    let top = rows.last().expect("at least one session count");
    assert!(
        top.speedup_p50 >= speedup_floor,
        "warm p50 must be >= {speedup_floor}x better than cold at {} sessions (got {:.1}x)",
        top.sessions,
        top.speedup_p50
    );

    // Robustness scenarios: the 1.2x isolation ceiling is the full-run
    // acceptance bound; smoke loosens it for noisy CI runners.
    let isolation_ceiling = if smoke { 2.0 } else { 1.2 };
    let slow_client = slow_client_scenario(&fed, budget, 8, warm_reps, isolation_ceiling);
    let (drained, drain_elapsed, drain_deadline) = drain_scenario(&fed, budget, latency);

    let session_rows = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"sessions\": {}, \"compiles\": {},\n",
                    "      \"cold\": {{ \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"wall_ms\": {:.1}, \"queries\": {} }},\n",
                    "      \"warm\": {{ \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"wall_ms\": {:.1}, \"queries\": {}, \"throughput_qps\": {:.0} }},\n",
                    "      \"speedup_p50\": {:.1}, \"shared_cache_hit_ratio\": {:.3},\n",
                    "      \"result_cache_bytes\": {}, \"result_cache_peak_bytes\": {}, \"budget_ok\": true }}"
                ),
                r.sessions,
                r.compiles,
                us(r.cold.p50),
                us(r.cold.p99),
                r.cold.wall.as_secs_f64() * 1e3,
                r.cold.queries,
                us(r.warm.p50),
                us(r.warm.p99),
                r.warm.wall.as_secs_f64() * 1e3,
                r.warm.queries,
                r.warm.queries as f64 / r.warm.wall.as_secs_f64(),
                r.speedup_p50,
                r.hit_ratio,
                r.resident_bytes,
                r.peak_bytes,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        r#"{{
  "bench": "server",
  "description": "kleislid over loopback TCP: N concurrent client sessions issue the same federation query; cold = empty shared caches (single-flight: one compile + one evaluation process-wide), warm = repeated queries served from the shared result cache. Driver latency {latency_ms} ms/request, result-cache budget {budget} bytes.",
  "command": "cargo run -p bench-harness --bin server_report --release",
  "smoke": {smoke},
  "query": "per-locus symbol projection over GDB-Tab(locus)",
  "driver_latency_ms": {latency_ms},
  "result_cache_budget_bytes": {budget},
  "warm_reps_per_session": {warm_reps},
  "speedup_floor": {speedup_floor},
  "sessions": [
{session_rows}
  ],
  "slow_client": {{
    "sessions": {sc_sessions}, "stalled_readers": 1,
    "pipelined_unread_queries": {sc_queries},
    "baseline_warm_p50_us": {sc_baseline:.1},
    "faulted_warm_p50_us": {sc_faulted:.1},
    "p50_ratio": {sc_ratio:.2}, "ratio_ceiling": {sc_ceiling}, "isolated": true
  }},
  "drain": {{
    "in_flight_queries": 1, "drained": {drained},
    "elapsed_ms": {drain_elapsed:.1}, "deadline_ms": {drain_deadline}
  }}
}}
"#,
        latency_ms = latency.as_millis(),
        sc_sessions = slow_client.sessions,
        sc_queries = slow_client.stalled_queries,
        sc_baseline = us(slow_client.baseline_p50),
        sc_faulted = us(slow_client.faulted_p50),
        sc_ratio = slow_client.ratio,
        sc_ceiling = slow_client.ceiling,
        drain_elapsed = drain_elapsed.as_secs_f64() * 1e3,
        drain_deadline = drain_deadline.as_millis(),
    );
    print!("{json}");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    eprintln!("wrote BENCH_server.json");
}
