//! Measure the row-pipelined execution win and record it in
//! `BENCH_row_pipeline.json` at the repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin row_pipeline_report --release
//! cargo run -p bench-harness --bin row_pipeline_report --release -- --smoke
//! ```
//!
//! Two experiments over `SlowDriver`s with *real* (slept) per-row
//! transfer latency:
//!
//! * **row-heavy scans** — a union of four remote scans (two drivers,
//!   two arms each) where every row costs real transfer time. The lazy
//!   baseline (`prefetch_rows = 0`, exactly the PR-3 behavior: requests
//!   overlap at submission, rows ship on the consumer's clock) pays the
//!   sum of all arms' row transfers; the pipelined run advertises a
//!   prefetch depth covering the result, so each driver's pool workers
//!   pull their arms' rows concurrently and elapsed time approaches one
//!   arm's transfer. Results are asserted identical.
//! * **fully-lazy guard** — the `prefetch_rows = 0` path must stay
//!   byte-identical to the eager evaluator's answer and ship zero
//!   prefetched rows: the laziness contract PR 3 shipped is untouched.
//!
//! `--smoke` shrinks the workload and loosens the floor for CI runners.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::row_pipeline_workload;
use kleisli_core::{CollKind, Value};
use kleisli_exec::{collect_stream, eval, eval_stream, Context, Env};
use nrc::Expr;

fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_once(ctx: &Arc<Context>, plan: &Expr) -> Value {
    collect_stream(
        eval_stream(plan, &Env::empty(), ctx).expect("stream"),
        CollKind::Set,
    )
    .expect("collect")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rows, per_row_us, reps, floor) = if smoke {
        (16i64, 1000u64, 2usize, 1.3f64)
    } else {
        (48, 1000, 3, 2.0)
    };
    const DRIVERS: usize = 2;
    const ARMS_PER_DRIVER: usize = 2;
    let per_request = Duration::from_millis(2);
    let per_row = Duration::from_micros(per_row_us);

    // --- row-heavy scans: lazy vs pipelined -----------------------------
    let (lazy_ctx, lazy_plan, _) =
        row_pipeline_workload(DRIVERS, ARMS_PER_DRIVER, rows, per_request, per_row, 0);
    let (pre_ctx, pre_plan, pre_drivers) = row_pipeline_workload(
        DRIVERS,
        ARMS_PER_DRIVER,
        rows,
        per_request,
        per_row,
        rows as usize,
    );

    let lazy_result = run_once(&lazy_ctx, &lazy_plan);
    let pre_result = run_once(&pre_ctx, &pre_plan);
    assert_eq!(
        lazy_result, pre_result,
        "row prefetch must not change the answer"
    );

    let lazy = time_best_of(reps, || run_once(&lazy_ctx, &lazy_plan));
    let pipelined = time_best_of(reps, || run_once(&pre_ctx, &pre_plan));
    let speedup = ms(lazy) / ms(pipelined);
    // The workload has 4 arms across 2 drivers (2 pool workers each), so
    // the theoretical row-transfer win is ~4x; the floor only guards
    // against the pipeline disappearing entirely on a loaded runner.
    assert!(
        speedup >= floor,
        "row pipelining has vanished (got {speedup:.2}x: \
         lazy {lazy:?}, pipelined {pipelined:?})"
    );
    let pre_metrics = pre_drivers
        .iter()
        .map(|d| d.metrics.snapshot())
        .fold((0u64, 0u64), |acc, m| {
            (acc.0 + m.rows_prefetched, acc.1 + m.rows_pulled)
        });

    // --- fully-lazy guard: prefetch 0 byte-identical, nothing prefetched
    let (guard_ctx, guard_plan, guard_drivers) =
        row_pipeline_workload(DRIVERS, ARMS_PER_DRIVER, rows, per_request, per_row, 0);
    let streamed = run_once(&guard_ctx, &guard_plan);
    let eager = eval(&guard_plan, &Env::empty(), &guard_ctx).expect("eager");
    assert_eq!(streamed, eager, "prefetch_rows = 0 must stay byte-identical");
    let guard_prefetched: u64 = guard_drivers
        .iter()
        .map(|d| d.metrics.snapshot().rows_prefetched)
        .sum();
    assert_eq!(guard_prefetched, 0, "prefetch_rows = 0 must prefetch nothing");

    let total_rows = rows as usize * DRIVERS * ARMS_PER_DRIVER;
    let json = format!(
        r#"{{
  "bench": "row_pipeline",
  "description": "Row-pipelined execution: per-driver worker pools prefetch up to Capabilities::prefetch_rows rows into bounded buffers ahead of the consumer, overlapping real per-row transfer latency across union arms, versus the PR-3 lazy baseline (prefetch_rows = 0: requests overlap, rows ship on the consumer's clock). Same plan, results asserted identical; the prefetch_rows = 0 path is byte-identical to the eager answer with zero rows prefetched.",
  "command": "cargo run -p bench-harness --bin row_pipeline_report --release",
  "smoke": {smoke},
  "row_heavy_scans": {{
    "workload": "union of {arms} remote scans across {drivers} drivers, {rows} rows per scan ({total_rows} rows), {per_row_us} us per row + {per_request_ms} ms per request (real sleeps)",
    "prefetch_rows": {rows},
    "lazy_ms": {lazy:.2},
    "pipelined_ms": {pipelined:.2},
    "speedup": {speedup:.2},
    "rows_prefetched": {prefetched},
    "rows_pulled": {pulled}
  }},
  "fully_lazy_guard": {{
    "prefetch_rows": 0,
    "byte_identical_to_eager": true,
    "rows_prefetched": 0
  }}
}}
"#,
        arms = DRIVERS * ARMS_PER_DRIVER,
        drivers = DRIVERS,
        per_request_ms = per_request.as_millis(),
        lazy = ms(lazy),
        pipelined = ms(pipelined),
        prefetched = pre_metrics.0,
        pulled = pre_metrics.1,
    );
    std::fs::write("BENCH_row_pipeline.json", &json).expect("write BENCH_row_pipeline.json");
    println!("{json}");
    println!(
        "row-heavy scans: lazy {:.2} ms, pipelined {:.2} ms ({speedup:.2}x)",
        ms(lazy),
        ms(pipelined),
    );
}
