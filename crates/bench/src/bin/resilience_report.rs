//! Measure the resilience layer's wins and record them in
//! `BENCH_resilience.json` at the repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin resilience_report --release
//! cargo run -p bench-harness --bin resilience_report --release -- --smoke
//! ```
//!
//! Three experiments over a fault-injecting `SlowDriver`:
//!
//! * **healthy baseline** — per-query p50/p99 with the whole resilience
//!   layer active but every policy off: the all-`None` default must cost
//!   nothing worth seeing next to a 2 ms round-trip.
//! * **tail-latency hedging** — every 10th request takes an extra 40 ms
//!   (the straggler scenario). Unhedged, the straggler *is* the p99.
//!   Hedged, a duplicate request fires once the EWMA-derived delay
//!   passes and its answer wins, so the hedged p99 must undercut the
//!   unhedged p99.
//! * **breaker fail-fast** — the source stops answering entirely and
//!   every request burns its full deadline. With a circuit breaker the
//!   first `failure_threshold` timeouts trip it open and the rest fail
//!   in microseconds, so the breaker's total must undercut the
//!   queue-and-time-out total.
//!
//! `--smoke` shrinks the workload and loosens the floors for CI runners.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kleisli::{BreakerPolicy, HedgePolicy, ResiliencePolicy, Session};
use kleisli_core::testutil::{Fault, SlowDriver};

const SCAN: &str = r#"{x.n | \x <- SRC([class = "any"])}"#;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The `q`-quantile (nearest-rank) of an unsorted sample.
fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    samples.sort();
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// A fresh session over a fresh `SlowDriver` advertising `policy`.
fn session(rows: i64, delay: Duration, limit: usize, policy: ResiliencePolicy) -> (Session, Arc<SlowDriver>) {
    let drv = SlowDriver::new("SRC", rows, delay, limit);
    drv.set_resilience(policy);
    let mut s = Session::new();
    s.register_driver(drv.clone());
    (s, drv)
}

/// Run the compiled scan `n` times, returning per-query latencies.
fn run_queries(s: &Session, n: usize) -> Vec<Duration> {
    let compiled = s.compile(SCAN).expect("compile");
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            s.run_compiled(&compiled).expect("query");
            t0.elapsed()
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup, queries, breaker_queries, hedge_floor) = if smoke {
        (10usize, 30usize, 5usize, 1.0f64)
    } else {
        (20, 60, 6, 2.0)
    };
    let delay = Duration::from_millis(2);
    let spike = Duration::from_millis(40);

    // --- healthy baseline: the all-None default policy ------------------
    let (s, _drv) = session(4, delay, 4, ResiliencePolicy::default());
    let mut base = run_queries(&s, queries);
    let (base_p50, base_p99) = (percentile(&mut base, 0.5), percentile(&mut base, 0.99));

    // --- tail-latency hedging over a 10%-straggler workload -------------
    let straggler = Fault::SpikeEvery {
        every: 10,
        extra: spike,
    };

    let (s, drv) = session(4, delay, 4, ResiliencePolicy::default());
    run_queries(&s, warmup); // same warmup as the hedged run
    drv.set_fault(straggler.clone());
    let mut unhedged = run_queries(&s, queries);
    let (unhedged_p50, unhedged_p99) =
        (percentile(&mut unhedged, 0.5), percentile(&mut unhedged, 0.99));

    let (s, drv) = session(
        4,
        delay,
        4,
        ResiliencePolicy {
            hedge: Some(HedgePolicy::default()),
            ..ResiliencePolicy::default()
        },
    );
    run_queries(&s, warmup); // teach the RTT estimator the healthy shape
    drv.set_fault(straggler);
    let mut hedged = run_queries(&s, queries);
    let (hedged_p50, hedged_p99) = (percentile(&mut hedged, 0.5), percentile(&mut hedged, 0.99));
    let hedge_metrics = s.driver_metrics("SRC").expect("metrics");
    let p99_speedup = ms(unhedged_p99) / ms(hedged_p99);
    assert!(
        p99_speedup >= hedge_floor,
        "hedging stopped cutting the tail: unhedged p99 {unhedged_p99:?} vs \
         hedged p99 {hedged_p99:?} ({p99_speedup:.2}x < {hedge_floor}x floor)"
    );
    assert!(
        hedge_metrics.hedge_wins > 0,
        "no hedge ever won against a 40 ms straggler: {hedge_metrics:?}"
    );

    // --- breaker fail-fast against a dead source ------------------------
    let deadline = Duration::from_millis(30);
    let dead = |breaker: Option<BreakerPolicy>| {
        session(
            4,
            delay,
            4,
            ResiliencePolicy {
                deadline: Some(deadline),
                breaker,
                ..ResiliencePolicy::default()
            },
        )
    };

    let (s, drv) = dead(None);
    drv.set_fault(Fault::NeverRespond);
    let compiled = s.compile(SCAN).expect("compile");
    let t0 = Instant::now();
    for _ in 0..breaker_queries {
        s.run_compiled(&compiled).expect_err("the source is dead");
    }
    let timeout_total = t0.elapsed();
    drv.release_wedged();

    let (s, drv) = dead(Some(BreakerPolicy {
        failure_threshold: 2,
        cooldown: Duration::from_secs(5),
    }));
    drv.set_fault(Fault::NeverRespond);
    let compiled = s.compile(SCAN).expect("compile");
    let t0 = Instant::now();
    for _ in 0..breaker_queries {
        s.run_compiled(&compiled).expect_err("the source is dead");
    }
    let breaker_total = t0.elapsed();
    let breaker_metrics = s.driver_metrics("SRC").expect("metrics");
    drv.release_wedged();
    assert!(
        breaker_total < timeout_total,
        "the breaker must fail faster than burning every deadline: \
         {breaker_total:?} vs {timeout_total:?}"
    );
    assert!(
        breaker_metrics.breaker_opens >= 1,
        "the breaker never opened: {breaker_metrics:?}"
    );
    let fail_fast_speedup = ms(timeout_total) / ms(breaker_total);

    let json = format!(
        r#"{{
  "bench": "resilience",
  "description": "Production resilience: per-request deadlines, tail-latency hedging after an EWMA-p99-derived delay, and per-driver circuit breakers, measured end to end through the session layer against a fault-injecting driver. The all-None default policy is the baseline; hedging must cut the p99 of a 10%-straggler workload; a tripped breaker must fail faster than burning every request's deadline against a dead source.",
  "command": "cargo run -p bench-harness --bin resilience_report --release",
  "smoke": {smoke},
  "healthy_baseline": {{
    "workload": "{queries} sequential 4-row queries, {delay_ms} ms per request (real sleeps), all policies off",
    "p50_ms": {base_p50:.2},
    "p99_ms": {base_p99:.2}
  }},
  "hedging": {{
    "workload": "{queries} sequential queries, every 10th request +{spike_ms} ms, after {warmup} healthy warmup queries",
    "unhedged": {{ "p50_ms": {unhedged_p50:.2}, "p99_ms": {unhedged_p99:.2} }},
    "hedged": {{
      "p50_ms": {hedged_p50:.2},
      "p99_ms": {hedged_p99:.2},
      "hedges_fired": {hedges_fired},
      "hedge_wins": {hedge_wins}
    }},
    "p99_speedup": {p99_speedup:.2}
  }},
  "breaker_fail_fast": {{
    "workload": "{breaker_queries} sequential queries against a never-responding source, {deadline_ms} ms deadline each",
    "without_breaker_total_ms": {timeout_total:.2},
    "with_breaker_total_ms": {breaker_total:.2},
    "breaker_opens": {breaker_opens},
    "fail_fast_speedup": {fail_fast_speedup:.2}
  }}
}}
"#,
        delay_ms = delay.as_millis(),
        spike_ms = spike.as_millis(),
        deadline_ms = deadline.as_millis(),
        base_p50 = ms(base_p50),
        base_p99 = ms(base_p99),
        unhedged_p50 = ms(unhedged_p50),
        unhedged_p99 = ms(unhedged_p99),
        hedged_p50 = ms(hedged_p50),
        hedged_p99 = ms(hedged_p99),
        hedges_fired = hedge_metrics.hedges_fired,
        hedge_wins = hedge_metrics.hedge_wins,
        timeout_total = ms(timeout_total),
        breaker_total = ms(breaker_total),
        breaker_opens = breaker_metrics.breaker_opens,
    );
    std::fs::write("BENCH_resilience.json", &json).expect("write BENCH_resilience.json");
    println!("{json}");
    println!(
        "hedging: p99 {:.2} ms -> {:.2} ms ({p99_speedup:.2}x); \
         breaker: {:.2} ms -> {:.2} ms ({fail_fast_speedup:.2}x)",
        ms(unhedged_p99),
        ms(hedged_p99),
        ms(timeout_total),
        ms(breaker_total),
    );
}
