//! Regenerate every experiment table of EXPERIMENTS.md in one run:
//!
//! ```sh
//! cargo run -p bench-harness --bin report --release
//! ```
//!
//! Unlike the Criterion benches (statistical, per-operation), this harness
//! prints the *shape* results the paper reports: who wins, by what factor,
//! and the traffic counters behind each optimization.

use std::time::{Duration, Instant};

use bench_harness::*;
use kleisli_exec::{eval, Context, Env};
use kleisli_opt::OptConfig;
use nrc::Expr;

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    // warm-up
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed() / reps as u32
}

fn main() {
    println!("Kleisli/CPL reproduction — experiment report");
    println!("============================================\n");
    t3_remy();
    t1_pushdown();
    t2_path_extraction();
    e4_fusion();
    e8_joins();
    e9_caching();
    e10_laziness();
    e11_concurrency();
}

/// E3 / Table T3: the ≥2x Rémy projection claim.
fn t3_remy() {
    println!("-- T3: Rémy projection, homogeneous fast path (paper: >2x) --");
    println!("{:>8} {:>12} {:>12} {:>8}", "fields", "plain", "homog.", "speedup");
    for width in [4usize, 8, 16, 32] {
        let rows = remy_rows(200_000, width);
        let field = format!("field{}", width / 2);
        let plain = time(20, || project_plain(&rows, &field));
        let homog = time(20, || project_cached(&rows, &field));
        println!(
            "{width:>8} {plain:>12.2?} {homog:>12.2?} {:>7.2}x",
            plain.as_secs_f64() / homog.as_secs_f64()
        );
    }
    println!();
}

/// E7 / Table T1: Loci22 query migration.
fn t1_pushdown() {
    println!("-- T1: Loci22 pushdown (300 loci, 2 ms/request, 2 us/row) --");
    println!(
        "{:>18} {:>10} {:>10} {:>12} {:>12}",
        "plan", "requests", "rows", "bytes", "time"
    );
    let (mut session, fed) = latency_federation(300, Duration::from_millis(2));
    for (label, config) in config_variants() {
        session.set_opt_config(config);
        let compiled = session.compile(LOCI22).expect("compile");
        session.reset_metrics();
        fed.gdb.latency().reset();
        let t = time(3, || session.run_compiled(&compiled).expect("run"));
        let m = session.driver_metrics("GDB").expect("metrics");
        println!(
            "{label:>18} {:>10} {:>10} {:>12} {t:>12.2?}",
            m.requests / 4, // warm-up + 3 reps
            m.rows_shipped / 4,
            m.bytes_shipped / 4
        );
    }
    println!();
}

/// E13 / Table T2: ASN.1 path extraction at the driver.
fn t2_path_extraction() {
    println!("-- T2: Entrez path extraction (400 loci worth of entries, 200 us/request) --");
    let (mut session, _fed) = latency_federation(400, Duration::from_micros(200));
    let with_path = session
        .compile(
            r#"flatten(GenBank([db = "na", select = "organism \"Homo sapiens\"",
                          path = "Seq-entry.seq.id..giim"]))"#,
        )
        .expect("compile");
    // Baseline with pushdown disabled, otherwise the path-migration rule
    // rewrites this into the pushed form automatically.
    session.set_opt_config(OptConfig {
        enable_pushdown: false,
        ..OptConfig::default()
    });
    let without = session
        .compile(
            r#"{g | \e <- GenBank([db = "na", select = "organism \"Homo sapiens\""]),
               <giim = \g> <- e.seq.id}"#,
        )
        .expect("compile");
    session.set_opt_config(OptConfig::default());
    println!(
        "{:>20} {:>10} {:>12} {:>12}",
        "plan", "rows", "bytes", "time"
    );
    for (label, compiled) in [("path-at-driver", &with_path), ("whole-entries", &without)] {
        session.reset_metrics();
        let t = time(5, || session.run_compiled(compiled).expect("run"));
        let m = session.driver_metrics("GenBank").expect("metrics");
        println!(
            "{label:>20} {:>10} {:>12} {t:>12.2?}",
            m.rows_shipped / 6,
            m.bytes_shipped / 6
        );
    }
    println!();
}

/// E4–E6: the monadic rules.
fn e4_fusion() {
    println!("-- E4/E5/E6: monadic rules (n = 100k) --");
    let config = OptConfig {
        enable_pushdown: false,
        enable_joins: false,
        enable_cache: false,
        enable_parallel: false,
        ..OptConfig::default()
    };
    let ctx = Context::new();
    let cases = [
        ("R1 vertical fusion", vertical_pipeline(100_000)),
        ("R2 horizontal fusion", horizontal_pipeline(50_000)),
        ("R3 filter promotion (false)", invariant_filter(100_000, 0)),
    ];
    println!(
        "{:>28} {:>12} {:>12} {:>8}",
        "rule", "unoptimized", "optimized", "speedup"
    );
    for (label, raw) in cases {
        let optd = kleisli_opt::optimize(raw.clone(), &kleisli_opt::NullCatalog, &config).0;
        let t_raw = time(5, || eval(&raw, &Env::empty(), &ctx).expect("eval"));
        let t_opt = time(5, || eval(&optd, &Env::empty(), &ctx).expect("eval"));
        println!(
            "{label:>28} {t_raw:>12.2?} {t_opt:>12.2?} {:>7.2}x",
            t_raw.as_secs_f64() / t_opt.as_secs_f64()
        );
    }
    println!();
}

/// E8: join operator crossover.
fn e8_joins() {
    println!("-- E8: local join operators (|R| = |S| = n, 10% key selectivity) --");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "n", "naive-nl", "blocked-nl", "indexed-nl"
    );
    let ctx = Context::new();
    for n in [100i64, 400, 1600] {
        let (l, r) = join_inputs(n, (n / 10).max(1));
        let naive = join_query(l.clone(), r.clone(), None);
        let blocked = join_query(
            l.clone(),
            r.clone(),
            Some(nrc::JoinStrategy::BlockedNl { block_size: 256 }),
        );
        let indexed = join_query(l, r, Some(nrc::JoinStrategy::IndexedNl));
        let tn = time(3, || eval(&naive, &Env::empty(), &ctx).expect("eval"));
        let tb = time(3, || eval(&blocked, &Env::empty(), &ctx).expect("eval"));
        let ti = time(3, || eval(&indexed, &Env::empty(), &ctx).expect("eval"));
        println!("{n:>8} {tn:>12.2?} {tb:>12.2?} {ti:>12.2?}");
    }
    println!();
}

/// E9: subquery caching.
fn e9_caching() {
    println!("-- E9: caching the outer-independent inner subquery (60 loci, 500 us/request) --");
    let (mut session, _fed) = latency_federation(60, Duration::from_micros(500));
    let base = OptConfig {
        enable_pushdown: false,
        enable_joins: false,
        enable_parallel: false,
        ..OptConfig::default()
    };
    println!("{:>12} {:>10} {:>12}", "plan", "requests", "time");
    for (label, cache) in [("cached", true), ("uncached", false)] {
        session.set_opt_config(OptConfig {
            enable_cache: cache,
            ..base.clone()
        });
        let compiled = session.compile(CACHEABLE).expect("compile");
        session.reset_metrics();
        let t = time(3, || session.run_compiled(&compiled).expect("run"));
        let m = session.driver_metrics("GDB").expect("metrics");
        println!("{label:>12} {:>10} {t:>12.2?}", m.requests / 4);
    }
    println!();
}

/// E10: time-to-first-result.
fn e10_laziness() {
    println!("-- E10: laziness, 20k-row remote scan (100 us/request, 20 us/row) --");
    let (session, _fed) = latency_federation_rows(
        20_000,
        Duration::from_micros(100),
        Duration::from_micros(20),
    );
    let scan = r#"{[s = l.locus_symbol] | \l <- GDB-Tab("locus")}"#;
    let t_first = time(5, || session.query_first_n(scan, 10).expect("query"));
    let compiled = session.compile(scan).expect("compile");
    let t_full = time(3, || session.run_compiled(&compiled).expect("run"));
    println!("first 10 rows (pipelined): {t_first:>10.2?}");
    println!("full materialization:      {t_full:>10.2?}");
    println!(
        "time-to-first-result advantage: {:.0}x\n",
        t_full.as_secs_f64() / t_first.as_secs_f64()
    );
}

/// E11: bounded concurrency.
fn e11_concurrency() {
    println!("-- E11: parallel retrieval, 40 link lookups at 5 ms/request (server cap 5) --");
    let (mut session, fed) = latency_federation(60, Duration::from_millis(5));
    bind_uids(&mut session, &fed, 40);
    session.set_opt_config(OptConfig {
        enable_cache: false,
        ..OptConfig::default()
    });
    let compiled = session.compile(CONCURRENCY).expect("compile");
    println!("{:>4} {:>12} {:>8}", "K", "time", "speedup");
    let mut base = None;
    for width in [1usize, 2, 5, 10] {
        let mut c2 = compiled.clone();
        c2.optimized = set_width(&compiled.optimized, width);
        let t = time(3, || session.run_compiled(&c2).expect("run"));
        let b = *base.get_or_insert(t);
        println!(
            "{width:>4} {t:>12.2?} {:>7.2}x",
            b.as_secs_f64() / t.as_secs_f64()
        );
    }
    println!();
}

fn set_width(e: &Expr, width: usize) -> Expr {
    set_par_width(e, width)
}
