//! Measure the structural-sharing win and record it in
//! `BENCH_plan_sharing.json` at the repo root:
//!
//! ```sh
//! cargo run -p bench-harness --bin plan_sharing_report --release
//! ```
//!
//! Two numbers per phase: the sharing engine (`Arc<Expr>` plans,
//! pointer-equal no-op passes, `Arc::ptr_eq` fixpoint) and the
//! pre-refactor baseline (rebuild every node every pass / deep-clone
//! bodies at stream construction), produced by the same rule sets over
//! the same plan.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::{
    deep_comprehension, legacy_fixpoint, legacy_stream_clone_cost, shared_fixpoint,
    stream_first,
};
use kleisli_opt::OptConfig;

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed() / reps as u32
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let depth = 10usize;
    let width = 4i64;
    let config = OptConfig::default();
    let plan = Arc::new(deep_comprehension(depth, width));
    let nodes = plan.size();

    let reps = 50;
    let fix_shared = time(reps, || shared_fixpoint(Arc::clone(&plan), &config));
    let fix_legacy = time(reps, || legacy_fixpoint(Arc::clone(&plan), &config));

    let normalized = shared_fixpoint(Arc::clone(&plan), &config);
    let noop_shared = time(reps, || shared_fixpoint(Arc::clone(&normalized), &config));
    let noop_legacy = time(reps, || legacy_fixpoint(Arc::clone(&normalized), &config));

    let stream_shared = time(reps, || stream_first(&plan));
    let stream_legacy = time(reps, || {
        std::hint::black_box(legacy_stream_clone_cost(&plan));
        stream_first(&plan)
    });

    let json = format!(
        r#"{{
  "bench": "plan_sharing",
  "description": "Structural-sharing plan representation (Arc<Expr>) vs the pre-refactor deep-copy baseline; same rule sets, same plan. Baseline reproduces the old engine's rebuild-every-node-per-pass and the old executor's per-level deep body clones.",
  "command": "cargo run -p bench-harness --bin plan_sharing_report --release",
  "plan": {{ "depth": {depth}, "width": {width}, "nodes": {nodes} }},
  "optimizer_fixpoint": {{
    "baseline_deep_rebuild_us": {fl:.2},
    "shared_us": {fs:.2},
    "speedup": {fsp:.2}
  }},
  "noop_fixpoint": {{
    "baseline_deep_rebuild_us": {nl:.2},
    "shared_us": {ns:.2},
    "speedup": {nsp:.2}
  }},
  "stream_construction_first_row": {{
    "baseline_deep_clone_us": {sl:.2},
    "shared_us": {ss:.2},
    "speedup": {ssp:.2}
  }}
}}
"#,
        fl = us(fix_legacy),
        fs = us(fix_shared),
        fsp = us(fix_legacy) / us(fix_shared),
        nl = us(noop_legacy),
        ns = us(noop_shared),
        nsp = us(noop_legacy) / us(noop_shared),
        sl = us(stream_legacy),
        ss = us(stream_shared),
        ssp = us(stream_legacy) / us(stream_shared),
    );
    print!("{json}");
    std::fs::write("BENCH_plan_sharing.json", &json).expect("write BENCH_plan_sharing.json");
    eprintln!("wrote BENCH_plan_sharing.json");
}
