//! # kleisli-server
//!
//! Kleisli as a *service*: the paper casts the system as a mediator
//! many users query at once, and this crate is that deployment shape —
//! a `kleislid` daemon accepting CPL over length-prefixed TCP
//! ([`proto`]), multiplexing concurrent client connections onto the
//! process-wide compute executor, with **process-wide shared caches**:
//! one compiled-plan cache ([`kleisli::PlanCache`]) and one
//! memory-budgeted single-flight result cache
//! ([`kleisli_exec::ResultCache`], keyed by
//! [`kleisli::Compiled::plan_hash`]), so the thousandth user asking the
//! paper's GenBank question costs a cache hit, not a compile and a
//! federation round-trip.
//!
//! * [`serve`] / [`serve_ephemeral`] start a server around a *registrar*
//!   closure that prepares each connection's [`kleisli::Session`];
//! * [`Client`] is the blocking client the bench harness and tests use;
//! * [`proto`] documents the wire format.
//!
//! See `ARCHITECTURE.md` §9 for the protocol and admission-control
//! design; `examples/server_roundtrip.rs` for an end-to-end tour; and
//! the `server_report` bench binary for the cold/warm latency numbers.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, QueryReply};
pub use proto::{Request, Response, ServedFrom, MAX_FRAME_LEN};
pub use server::{serve, serve_ephemeral, DrainReport, Registrar, ServerConfig, ServerHandle};
