//! The `kleislid` wire protocol: length-prefixed frames over TCP.
//!
//! A frame is a 4-byte big-endian payload length followed by the
//! payload; a payload is a 1-byte opcode, an 8-byte big-endian request
//! id, and an opcode-specific body. The id is chosen by the client and
//! echoed on the matching response, so responses to pipelined requests
//! can arrive in any order (queries on one connection run concurrently,
//! bounded by the server's per-connection admission limits).
//!
//! Requests: [`Request::Query`] (body: CPL source, UTF-8),
//! [`Request::Cancel`] (empty body; the id names the query to stop),
//! [`Request::Stats`] (empty body), [`Request::Flush`] (body: a source
//! name, UTF-8 — the wire-level cache-invalidation verb: drop every
//! cached plan and result derived from that source).
//!
//! Responses: [`Response::Result`] (body: one served-from byte — `0`
//! freshly evaluated, `1` shared result cache — then the value in the
//! core exchange format, UTF-8), [`Response::Error`] (message, UTF-8),
//! [`Response::Stats`] (a JSON document, UTF-8), [`Response::Flushed`]
//! (two 8-byte big-endian counts: plans flushed, results flushed).
//!
//! Values cross the wire in the [`kleisli_core::write_exchange`] token
//! format — the same self-describing exchange format drivers use, per
//! the paper's uniform-exchange-language design.

use std::io::{self, Read, Write};

use kleisli_core::{read_exchange, write_exchange, Value};

/// Frames larger than this are rejected as malformed (64 MiB — far
/// beyond any sane query text, and a backstop for result payloads).
pub const MAX_FRAME_LEN: usize = 64 << 20;

const OP_QUERY: u8 = 0x01;
const OP_CANCEL: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_FLUSH: u8 = 0x04;
const OP_RESULT: u8 = 0x81;
const OP_ERROR: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;
const OP_FLUSHED: u8 = 0x84;

/// Where a query result came from (the first body byte of a
/// [`Response::Result`] frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Evaluated for this request.
    Fresh,
    /// Served from the process-wide shared result cache.
    SharedCache,
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile and evaluate `src`; reply with `Result` or `Error` under
    /// the same id.
    Query { id: u64, src: String },
    /// Cooperatively stop the in-flight query with this id (idempotent;
    /// unknown ids are ignored — the query may have just finished).
    Cancel { id: u64 },
    /// Reply with a `Stats` frame (shared-cache and admission counters).
    Stats { id: u64 },
    /// Invalidate every cached plan and result derived from `source`
    /// (a refreshed driver or binding); reply with a `Flushed` frame.
    /// Entries derived only from other sources survive.
    Flush { id: u64, source: String },
}

impl Request {
    /// The request id (echoed by the matching response).
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Cancel { id }
            | Request::Stats { id }
            | Request::Flush { id, .. } => *id,
        }
    }
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query finished with a value.
    Result {
        id: u64,
        served: ServedFrom,
        value: Value,
    },
    /// The query failed (compile error, evaluation error, cancellation,
    /// or admission rejection — the message says which).
    Error { id: u64, message: String },
    /// Server statistics as a JSON document.
    Stats { id: u64, json: String },
    /// Acknowledgement of a [`Request::Flush`]: how many cached plans
    /// and how many cached results were dropped.
    Flushed { id: u64, plans: u64, results: u64 },
}

impl Response {
    /// The id of the request this responds to.
    pub fn id(&self) -> u64 {
        match self {
            Response::Result { id, .. }
            | Response::Error { id, .. }
            | Response::Stats { id, .. }
            | Response::Flushed { id, .. } => *id,
        }
    }
}

fn malformed(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn header(op: u8, id: u64, body_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + body_len);
    out.push(op);
    out.extend_from_slice(&id.to_be_bytes());
    out
}

fn split_header(payload: &[u8]) -> io::Result<(u8, u64, &[u8])> {
    if payload.len() < 9 {
        return Err(malformed("frame shorter than opcode + id"));
    }
    let id = u64::from_be_bytes(payload[1..9].try_into().expect("9-byte header"));
    Ok((payload[0], id, &payload[9..]))
}

fn utf8_body(body: &[u8], what: &str) -> io::Result<String> {
    String::from_utf8(body.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
}

/// Serialize a request payload (no length prefix; see [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Query { id, src } => {
            let mut out = header(OP_QUERY, *id, src.len());
            out.extend_from_slice(src.as_bytes());
            out
        }
        Request::Cancel { id } => header(OP_CANCEL, *id, 0),
        Request::Stats { id } => header(OP_STATS, *id, 0),
        Request::Flush { id, source } => {
            let mut out = header(OP_FLUSH, *id, source.len());
            out.extend_from_slice(source.as_bytes());
            out
        }
    }
}

/// Parse a request payload.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let (op, id, body) = split_header(payload)?;
    match op {
        OP_QUERY => Ok(Request::Query {
            id,
            src: utf8_body(body, "query source")?,
        }),
        OP_CANCEL => Ok(Request::Cancel { id }),
        OP_STATS => Ok(Request::Stats { id }),
        OP_FLUSH => Ok(Request::Flush {
            id,
            source: utf8_body(body, "flush source name")?,
        }),
        other => Err(malformed(format!("unknown request opcode {other:#04x}"))),
    }
}

/// Serialize a response payload (no length prefix; see [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Result { id, served, value } => {
            encode_result_text(*id, *served, &write_exchange(value))
        }
        Response::Error { id, message } => {
            let mut out = header(OP_ERROR, *id, message.len());
            out.extend_from_slice(message.as_bytes());
            out
        }
        Response::Stats { id, json } => {
            let mut out = header(OP_STATS_REPLY, *id, json.len());
            out.extend_from_slice(json.as_bytes());
            out
        }
        Response::Flushed { id, plans, results } => {
            let mut out = header(OP_FLUSHED, *id, 16);
            out.extend_from_slice(&plans.to_be_bytes());
            out.extend_from_slice(&results.to_be_bytes());
            out
        }
    }
}

/// Serialize a [`Response::Result`] payload from an already-serialized
/// exchange text. The server's warm fast path keeps results in this form
/// (one serialization per cache generation instead of one per hit); the
/// ordinary [`encode_response`] path funnels through here too, so the
/// two encodings cannot drift.
pub fn encode_result_text(id: u64, served: ServedFrom, text: &str) -> Vec<u8> {
    let mut out = header(OP_RESULT, id, 1 + text.len());
    out.push(match served {
        ServedFrom::Fresh => 0,
        ServedFrom::SharedCache => 1,
    });
    out.extend_from_slice(text.as_bytes());
    out
}

/// Parse a response payload.
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let (op, id, body) = split_header(payload)?;
    match op {
        OP_RESULT => {
            let Some((&served, text)) = body.split_first() else {
                return Err(malformed("result frame missing served-from byte"));
            };
            let served = match served {
                0 => ServedFrom::Fresh,
                1 => ServedFrom::SharedCache,
                other => return Err(malformed(format!("bad served-from byte {other}"))),
            };
            let text = utf8_body(text, "result value")?;
            let value = read_exchange(&text)
                .map_err(|e| malformed(format!("bad value payload: {e}")))?;
            Ok(Response::Result { id, served, value })
        }
        OP_ERROR => Ok(Response::Error {
            id,
            message: utf8_body(body, "error message")?,
        }),
        OP_STATS_REPLY => Ok(Response::Stats {
            id,
            json: utf8_body(body, "stats json")?,
        }),
        OP_FLUSHED => {
            if body.len() != 16 {
                return Err(malformed("flushed frame body must be 16 bytes"));
            }
            let plans = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
            let results = u64::from_be_bytes(body[8..].try_into().expect("8 bytes"));
            Ok(Response::Flushed { id, plans, results })
        }
        other => Err(malformed(format!("unknown response opcode {other:#04x}"))),
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(malformed(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
            payload.len()
        )));
    }
    // One coalesced write: a separate 4-byte length write would let
    // Nagle hold the payload back until the peer ACKs the prefix —
    // ~40 ms of delayed-ACK stall per frame on loopback.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF (the peer
/// closed between frames); EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(malformed(format!(
            "peer announced a {len}-byte frame (limit {MAX_FRAME_LEN})"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query {
                id: 7,
                src: "{x | \\x <- DB}".to_string(),
            },
            Request::Cancel { id: u64::MAX },
            Request::Stats { id: 0 },
            Request::Flush {
                id: 9,
                source: "GDB-Tab".to_string(),
            },
        ] {
            let decoded = decode_request(&encode_request(&req)).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Result {
                id: 3,
                served: ServedFrom::SharedCache,
                value: Value::set(vec![Value::Int(1), Value::str("két")]),
            },
            Response::Error {
                id: 4,
                message: "eval: boom".to_string(),
            },
            Response::Stats {
                id: 5,
                json: "{\"queries\":{\"total\":1}}".to_string(),
            },
            Response::Flushed {
                id: 6,
                plans: 2,
                results: 3,
            },
        ] {
            let decoded = decode_response(&encode_response(&resp)).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_and_bad_opcodes_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        let mut truncated = &wire[..wire.len() - 2];
        assert!(read_frame(&mut truncated).is_err(), "EOF mid-frame");

        let mut oversize = Vec::new();
        oversize.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut &oversize[..]).is_err());

        assert!(decode_request(&[0xff; 9]).is_err());
        assert!(decode_request(&[0x01]).is_err(), "short header");
        assert!(decode_response(&[0x81, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}
