//! A small blocking client for the `kleislid` protocol — used by the
//! bench load generator, the tests, and the roundtrip example. One
//! [`Client`] owns one connection (one tenant); queries can be
//! pipelined with [`Client::send_query`] / [`Client::read_response`] or
//! issued call-and-response with [`Client::query`].

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use kleisli_core::Value;

use crate::proto::{
    encode_request, read_frame, write_frame, Request, Response, ServedFrom,
};

/// The terminal outcome of one query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// The query produced a value (and the server says where from).
    Value { value: Value, served: ServedFrom },
    /// The server reported an error (compile, evaluation, cancellation,
    /// or admission rejection — `busy:` prefix).
    Error(String),
}

impl QueryReply {
    /// The value, treating a server-side error as `Err` with the
    /// message wrapped in [`io::ErrorKind::Other`].
    pub fn into_value(self) -> io::Result<(Value, ServedFrom)> {
        match self {
            QueryReply::Value { value, served } => Ok((value, served)),
            QueryReply::Error(message) => Err(io::Error::other(message)),
        }
    }
}

/// One connection to a `kleislid` server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(req))
    }

    /// Fire a QUERY frame without waiting; returns the id to match the
    /// eventual response (see [`Client::read_response`]).
    pub fn send_query(&mut self, src: &str) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&Request::Query {
            id,
            src: src.to_string(),
        })?;
        Ok(id)
    }

    /// Fire a CANCEL frame for an in-flight query id (the query's
    /// terminal response still arrives).
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.send(&Request::Cancel { id })
    }

    /// Read the next response frame, whatever request it answers.
    pub fn read_response(&mut self) -> io::Result<Response> {
        match read_frame(&mut self.stream)? {
            Some(payload) => crate::proto::decode_response(&payload),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Read responses until the one answering `id` arrives (responses to
    /// other pipelined requests are discarded — use raw
    /// [`Client::read_response`] to multiplex).
    pub fn wait_reply(&mut self, id: u64) -> io::Result<QueryReply> {
        loop {
            match self.read_response()? {
                Response::Result { id: got, served, value } if got == id => {
                    return Ok(QueryReply::Value { value, served });
                }
                Response::Error { id: got, message } if got == id => {
                    return Ok(QueryReply::Error(message));
                }
                _ => continue,
            }
        }
    }

    /// Call-and-response: send one query, block for its reply.
    pub fn query(&mut self, src: &str) -> io::Result<QueryReply> {
        let id = self.send_query(src)?;
        self.wait_reply(id)
    }

    /// Fetch the server's statistics JSON.
    pub fn stats(&mut self) -> io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })?;
        loop {
            if let Response::Stats { id: got, json } = self.read_response()? {
                if got == id {
                    return Ok(json);
                }
            }
        }
    }
}
