//! A small blocking client for the `kleislid` protocol — used by the
//! bench load generator, the tests, and the roundtrip example. One
//! [`Client`] owns one connection (one tenant); queries can be
//! pipelined with [`Client::send_query`] / [`Client::read_response`] or
//! issued call-and-response with [`Client::query`].

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use kleisli_core::Value;

use crate::proto::{
    encode_request, read_frame, write_frame, Request, Response, ServedFrom,
};

/// The terminal outcome of one query. The server's admission and drain
/// rejections arrive as `Error` frames with well-known message
/// prefixes; the client surfaces them as their own variants so callers
/// can retry (`Busy`), fail over (`ShuttingDown`), or report
/// (`Error`) without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// The query produced a value (and the server says where from).
    Value { value: Value, served: ServedFrom },
    /// Admission rejection (`busy:` prefix): this tenant's queue or the
    /// server's connection capacity is full; retrying later is safe.
    Busy(String),
    /// Drain rejection (`shutting-down:` prefix): the server is
    /// draining and takes no new queries.
    ShuttingDown(String),
    /// Any other server-side error (compile, evaluation, cancellation).
    Error(String),
}

impl QueryReply {
    /// The value, treating every server-side rejection or error as
    /// `Err` with the message wrapped in [`io::ErrorKind::Other`].
    pub fn into_value(self) -> io::Result<(Value, ServedFrom)> {
        match self {
            QueryReply::Value { value, served } => Ok((value, served)),
            QueryReply::Busy(message)
            | QueryReply::ShuttingDown(message)
            | QueryReply::Error(message) => Err(io::Error::other(message)),
        }
    }

    /// Classify a server error message by its rejection prefix.
    fn from_error(message: String) -> QueryReply {
        if message.starts_with("busy:") {
            QueryReply::Busy(message)
        } else if message.starts_with("shutting-down:") {
            QueryReply::ShuttingDown(message)
        } else {
            QueryReply::Error(message)
        }
    }
}

/// One connection to a `kleislid` server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    /// [`Client::connect`] bounded by `timeout` — a server that is not
    /// accepting fails fast instead of riding the OS connect timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    /// Bound every subsequent response read: a server that stops
    /// writing surfaces as a timed-out `Err` instead of a hung client.
    /// `None` restores blocking reads.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(req))
    }

    /// Fire a QUERY frame without waiting; returns the id to match the
    /// eventual response (see [`Client::read_response`]).
    pub fn send_query(&mut self, src: &str) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&Request::Query {
            id,
            src: src.to_string(),
        })?;
        Ok(id)
    }

    /// Fire a CANCEL frame for an in-flight query id (the query's
    /// terminal response still arrives).
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.send(&Request::Cancel { id })
    }

    /// Read the next response frame, whatever request it answers.
    pub fn read_response(&mut self) -> io::Result<Response> {
        match read_frame(&mut self.stream)? {
            Some(payload) => crate::proto::decode_response(&payload),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Read responses until the one answering `id` arrives (responses to
    /// other pipelined requests are discarded — use raw
    /// [`Client::read_response`] to multiplex).
    pub fn wait_reply(&mut self, id: u64) -> io::Result<QueryReply> {
        loop {
            match self.read_response()? {
                Response::Result { id: got, served, value } if got == id => {
                    return Ok(QueryReply::Value { value, served });
                }
                Response::Error { id: got, message } if got == id => {
                    return Ok(QueryReply::from_error(message));
                }
                _ => continue,
            }
        }
    }

    /// Call-and-response: send one query, block for its reply.
    pub fn query(&mut self, src: &str) -> io::Result<QueryReply> {
        let id = self.send_query(src)?;
        self.wait_reply(id)
    }

    /// Fetch the server's statistics JSON.
    pub fn stats(&mut self) -> io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })?;
        loop {
            if let Response::Stats { id: got, json } = self.read_response()? {
                if got == id {
                    return Ok(json);
                }
            }
        }
    }

    /// Flush every cached plan and result derived from `source` — the
    /// wire-level invalidation verb for a refreshed source. Returns
    /// `(plans, results)` dropped; a server-side error (for instance an
    /// unknown source name) comes back as `Err`.
    pub fn flush(&mut self, source: &str) -> io::Result<(u64, u64)> {
        let id = self.fresh_id();
        self.send(&Request::Flush {
            id,
            source: source.to_string(),
        })?;
        loop {
            match self.read_response()? {
                Response::Flushed { id: got, plans, results } if got == id => {
                    return Ok((plans, results));
                }
                Response::Error { id: got, message } if got == id => {
                    return Err(io::Error::other(message));
                }
                _ => continue,
            }
        }
    }
}
