//! The `kleislid` server: many client connections, one process-wide set
//! of caches.
//!
//! # Topology
//!
//! Each accepted connection gets its own reader thread, its own writer
//! thread, and its own [`Session`] — built by the server's *registrar*
//! (the closure that registers drivers and bindings), then attached to
//! the **shared** [`PlanCache`] and [`ResultCache`]. Driver `Arc`s
//! captured by the registrar are shared across sessions, so per-driver
//! admission gates, resilience policies, and metrics are process-wide,
//! exactly as they were per-session; and every session evaluates on the
//! process-wide compute [`Executor`](kleisli_core::Executor).
//!
//! # Admission (per-tenant fair share)
//!
//! A connection is a tenant. Each gets a private
//! [`RequestGate`] admitting at most
//! [`ServerConfig::max_queries_per_connection`] concurrently-running
//! queries, plus a bounded wait queue of
//! [`ServerConfig::queue_depth_per_connection`]; a QUERY arriving with
//! the queue full is rejected immediately with an `Error` response
//! (message prefix `"busy:"`) instead of stalling the connection. A hot
//! tenant therefore saturates *its own* gate and queue while every other
//! tenant's queries keep flowing — downstream, the shared executor and
//! the per-driver gates arbitrate between tenants' admitted queries on
//! equal terms. Process-wide, at most
//! [`ServerConfig::max_connections`] reader threads exist at once;
//! further connections are shed at accept time with a best-effort
//! `busy:` frame (counted in `connections_shed`).
//!
//! # Slow-client isolation
//!
//! Responses are never written from a worker or reader thread directly.
//! Every frame goes onto a bounded per-connection outbound queue
//! ([`ServerConfig::writer_queue_frames`]) drained by the connection's
//! writer thread under a write deadline
//! ([`ServerConfig::write_deadline`]). A client that stops reading
//! fills its kernel send buffer, the writer's next write times out (or
//! the queue overflows first), and the connection is *condemned*: the
//! socket is shut down, pending frames are dropped, and its in-flight
//! queries are cancelled. The stall costs the stalled tenant its
//! connection and nothing else — no worker thread, and no other
//! tenant's responses, ever block on a hostile peer's socket.
//!
//! # Graceful drain
//!
//! [`ServerHandle::shutdown`] (and `shutdown_within`) drains rather
//! than drops: accepting stops, new QUERY frames are rejected with a
//! `shutting-down:` error, in-flight queries run to completion and
//! flush their terminal frames through the writer queues — all bounded
//! by [`ServerConfig::drain_deadline`], after which stragglers are
//! cancelled. Connection reader/writer/worker threads are all joined
//! before `shutdown` returns.
//!
//! # Cancellation
//!
//! CANCEL frames act on the query id: a queued or running query is
//! stopped cooperatively (the client still receives a terminal frame for
//! that id, normally an `Error` reporting the cancellation). Cancelling
//! a query that is populating the shared result cache drops its populate
//! ticket, waking any waiting sessions to compute the result themselves
//! — the shared cache is never poisoned by a cancelled flight. CANCEL
//! for an unknown or already-finished id is an acknowledged no-op.
//!
//! # Wire-level cache invalidation
//!
//! A FLUSH frame names a refreshed source. The connection's session
//! flushes exactly the cached plans and results derived from it
//! ([`Session::flush_source`]), the server prunes its serialized-frame
//! copies, and the client gets back a `Flushed` frame with the drop
//! counts. Source generations are observable through the caches'
//! `generation` accessors.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use kleisli::{PlanCache, QueryCanceller, Session, SharedQuery};
use kleisli_core::RequestGate;
use kleisli_exec::ResultCache;

use crate::proto::{
    decode_request, encode_response, encode_result_text, write_frame, Request, Response,
    ServedFrom, MAX_FRAME_LEN,
};

/// Entries kept in the serialized-response cache before a wholesale
/// clear. Each entry mirrors one result-cache entry, so the bound only
/// matters when the plan cache churns faster than the wire cache.
const WIRE_CACHE_CAP: usize = 128;

/// Tuning knobs for a [`serve`] call. `Default` gives a 64-plan shared
/// cache, the result cache's default 64 MiB budget, per-connection
/// limits of 4 running + 16 queued queries, a 256-connection process
/// cap, a 64-frame writer queue with a 5 s write deadline, and a 5 s
/// drain deadline.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Capacity of the shared compiled-plan cache (entries).
    pub plan_cache_capacity: usize,
    /// Memory budget of the shared result cache (bytes of approximate
    /// resident `Value` footprint; see `Value::approx_bytes`).
    pub result_cache_budget: u64,
    /// Queries one connection may have *running* at once.
    pub max_queries_per_connection: usize,
    /// Queries one connection may have *waiting* for its gate beyond the
    /// running ones; the excess is rejected with a `busy:` error.
    pub queue_depth_per_connection: usize,
    /// Connections served at once, process-wide; the excess is shed at
    /// accept time with a best-effort `busy:` frame. Bounds the
    /// thread-per-connection model.
    pub max_connections: usize,
    /// Response frames buffered per connection before the client is
    /// condemned as a non-reader (see the module docs on slow-client
    /// isolation).
    pub writer_queue_frames: usize,
    /// Longest a single frame write may block on the client's socket
    /// before the connection is condemned.
    pub write_deadline: Duration,
    /// Longest [`ServerHandle::shutdown`] lets in-flight queries finish
    /// before cancelling the stragglers.
    pub drain_deadline: Duration,
    /// Largest result frame the server will send (capped by the
    /// protocol's `MAX_FRAME_LEN`); a larger result becomes a clean
    /// `Error` frame instead of a hung client.
    pub max_result_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            plan_cache_capacity: 64,
            result_cache_budget: kleisli_exec::DEFAULT_RESULT_CACHE_BUDGET,
            max_queries_per_connection: 4,
            queue_depth_per_connection: 16,
            max_connections: 256,
            writer_queue_frames: 64,
            write_deadline: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(5),
            max_result_frame: MAX_FRAME_LEN,
        }
    }
}

/// The closure that prepares each connection's [`Session`]: register
/// drivers, bind values, run defines. It runs *before* the shared caches
/// are attached, so its registrations never clear them.
pub type Registrar = dyn Fn(&mut Session) + Send + Sync;

/// Process-wide server state shared by every connection.
struct ServerShared {
    plan_cache: Arc<PlanCache>,
    result_cache: Arc<ResultCache>,
    /// Serialized responses by plan hash, validated against the result
    /// cache's commit sequence: a warm hit reuses the exchange text
    /// instead of deep-cloning the `Value` and re-serializing it. A
    /// stale sequence (the entry was evicted and re-committed) misses
    /// here and is re-serialized once.
    wire_cache: Mutex<HashMap<u64, (u64, Arc<String>)>>,
    registrar: Arc<Registrar>,
    config: ServerConfig,
    /// Stop accepting and reject new QUERYs; in-flight work continues.
    draining: AtomicBool,
    /// Final stop: connection readers exit at the next poll tick.
    shutdown: AtomicBool,
    started: Instant,
    /// Live connections by id: reader join handle + per-connection
    /// state, so shutdown can cancel stragglers and join every thread.
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn_id: AtomicU64,
    /// Queries admitted (queued or running) but not yet terminal —
    /// what the drain phase waits on.
    active_queries: AtomicU64,
    connections_total: AtomicU64,
    connections_open: AtomicU64,
    connections_shed: AtomicU64,
    queries: AtomicU64,
    served_fresh: AtomicU64,
    served_cached: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    cancel_requests: AtomicU64,
    flush_requests: AtomicU64,
}

/// One live connection as seen by the accept loop and shutdown.
struct ConnEntry {
    handle: Option<JoinHandle<()>>,
    conn: Arc<Conn>,
}

impl ServerShared {
    /// The STATS payload: one JSON document over the shared-cache and
    /// admission counters (also what `ServerHandle::stats_json` returns).
    fn stats_json(&self) -> String {
        let p = self.plan_cache.stats();
        let r = self.result_cache.stats();
        format!(
            concat!(
                "{{\"uptime_ms\":{},",
                "\"connections\":{{\"total\":{},\"open\":{},\"shed\":{}}},",
                "\"queries\":{{\"total\":{},\"served_fresh\":{},\"served_cached\":{},",
                "\"errors\":{},\"rejected\":{},\"cancel_requests\":{},\"flush_requests\":{}}},",
                "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"flushes\":{},",
                "\"entries\":{},\"capacity\":{}}},",
                "\"result_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"flushes\":{},",
                "\"entries\":{},\"bytes\":{},\"peak_bytes\":{},\"budget\":{}}}}}"
            ),
            self.started.elapsed().as_millis(),
            self.connections_total.load(Ordering::Relaxed),
            self.connections_open.load(Ordering::Relaxed),
            self.connections_shed.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.served_fresh.load(Ordering::Relaxed),
            self.served_cached.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.cancel_requests.load(Ordering::Relaxed),
            self.flush_requests.load(Ordering::Relaxed),
            p.hits,
            p.misses,
            p.evictions,
            p.flushes,
            p.entries,
            p.capacity,
            r.hits,
            r.misses,
            r.evictions,
            r.flushes,
            r.entries,
            r.bytes,
            r.peak_bytes,
            r.budget,
        )
    }
}

/// What a graceful shutdown accomplished; see
/// [`ServerHandle::shutdown_within`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Every in-flight query finished (and its terminal frame was
    /// handed to its writer) before the deadline; `false` means
    /// stragglers were cancelled.
    pub drained: bool,
    /// Wall-clock time the whole shutdown took, joins included.
    pub elapsed: Duration,
}

/// A running server: the accept loop lives on its own thread. Dropping
/// the handle shuts the server down gracefully (drain in-flight queries
/// up to the configured deadline, then join every connection thread).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    stopped: bool,
}

impl ServerHandle {
    /// The bound address (with the real port when `serve_ephemeral` was
    /// asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-wide compiled-plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.shared.plan_cache
    }

    /// The process-wide result cache.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.shared.result_cache
    }

    /// The same JSON document a STATS frame returns.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Connections currently being served.
    pub fn connections_open(&self) -> u64 {
        self.shared.connections_open.load(Ordering::Relaxed)
    }

    /// Connections accepted and handed to a reader thread, ever.
    pub fn connections_total(&self) -> u64 {
        self.shared.connections_total.load(Ordering::Relaxed)
    }

    /// Connections refused at accept time (connection cap, or resource
    /// exhaustion spawning their reader).
    pub fn connections_shed(&self) -> u64 {
        self.shared.connections_shed.load(Ordering::Relaxed)
    }

    /// Queries admitted but not yet terminal — the quantity the drain
    /// phase waits on; `0` means no query worker holds a gate ticket
    /// anywhere in the server (what the chaos suite asserts after every
    /// injected fault).
    pub fn active_queries(&self) -> u64 {
        self.shared.active_queries.load(Ordering::SeqCst)
    }

    /// Block on the accept loop (for a daemon main: serve until killed).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Gracefully shut down within the configured
    /// [`ServerConfig::drain_deadline`]; see
    /// [`ServerHandle::shutdown_within`].
    pub fn shutdown(mut self) -> DrainReport {
        let deadline = self.shared.config.drain_deadline;
        self.stop(deadline)
    }

    /// Gracefully shut down: stop accepting, let in-flight queries
    /// finish and flush their terminal frames (new QUERYs are rejected
    /// with a `shutting-down:` error meanwhile), cancel any query still
    /// running at the deadline, and join every connection thread —
    /// readers, writers, and query workers alike.
    pub fn shutdown_within(mut self, deadline: Duration) -> DrainReport {
        self.stop(deadline)
    }

    fn stop(&mut self, deadline: Duration) -> DrainReport {
        if self.stopped {
            return DrainReport {
                drained: true,
                elapsed: Duration::ZERO,
            };
        }
        self.stopped = true;
        let start = Instant::now();
        // Phase 1: stop accepting. New QUERYs on live connections are
        // rejected by the readers once `draining` is up.
        self.shared.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // nudge the listener
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Phase 2: drain — wait out admitted queries, bounded.
        let mut drained = true;
        while self.shared.active_queries.load(Ordering::SeqCst) > 0 {
            if start.elapsed() >= deadline {
                drained = false;
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        // Phase 3: stop the readers (they poll `shutdown` at 50 ms) and
        // cancel whatever outlived the deadline so worker joins are
        // prompt.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let entries: Vec<ConnEntry> = {
            let mut conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            conns.drain().map(|(_, e)| e).collect()
        };
        if !drained {
            for entry in &entries {
                entry.conn.cancel_all_pending();
            }
        }
        for mut entry in entries {
            if let Some(handle) = entry.handle.take() {
                let _ = handle.join();
            }
        }
        DrainReport {
            drained,
            elapsed: start.elapsed(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let deadline = self.shared.config.drain_deadline;
        self.stop(deadline);
    }
}

/// Bind `addr` and serve connections until the handle is shut down.
/// `registrar` prepares each connection's session (drivers, bindings)
/// before the shared caches are attached.
pub fn serve(
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    registrar: Arc<Registrar>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        plan_cache: PlanCache::new(config.plan_cache_capacity),
        result_cache: ResultCache::new(config.result_cache_budget),
        wire_cache: Mutex::new(HashMap::new()),
        registrar,
        config,
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        conns: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
        active_queries: AtomicU64::new(0),
        connections_total: AtomicU64::new(0),
        connections_open: AtomicU64::new(0),
        connections_shed: AtomicU64::new(0),
        queries: AtomicU64::new(0),
        served_fresh: AtomicU64::new(0),
        served_cached: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        cancel_requests: AtomicU64::new(0),
        flush_requests: AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = thread::Builder::new()
        .name("kleislid-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        stopped: false,
    })
}

/// [`serve`] on `127.0.0.1` with an OS-assigned port — for tests,
/// examples, and the bench harness.
pub fn serve_ephemeral(config: ServerConfig, registrar: Arc<Registrar>) -> io::Result<ServerHandle> {
    serve("127.0.0.1:0", config, registrar)
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for incoming in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        stream.set_nodelay(true).ok();
        // Reap finished connections so the registry (and the live count
        // it implies) tracks reality.
        let open = {
            let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            let done: Vec<u64> = conns
                .iter()
                .filter(|(_, e)| e.handle.as_ref().is_none_or(|h| h.is_finished()))
                .map(|(id, _)| *id)
                .collect();
            for id in done {
                if let Some(mut entry) = conns.remove(&id) {
                    if let Some(handle) = entry.handle.take() {
                        let _ = handle.join();
                    }
                }
            }
            conns.len()
        };
        if open >= shared.config.max_connections {
            shed(stream, &shared);
            continue;
        }
        let Ok(socket) = stream.try_clone() else {
            shed(stream, &shared);
            continue;
        };
        // The write deadline is a socket option shared by both handles;
        // reads are governed separately by the reader's poll timeout.
        let _ = stream.set_write_timeout(Some(shared.config.write_deadline));
        let conn = Arc::new(Conn {
            socket,
            writer: WriterQueue {
                state: Mutex::new(WriterState {
                    frames: VecDeque::new(),
                    closing: false,
                    dead: false,
                }),
                cv: Condvar::new(),
                capacity: shared.config.writer_queue_frames.max(1),
            },
            gate: RequestGate::new(shared.config.max_queries_per_connection),
            queued: AtomicUsize::new(0),
            pending: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
        });
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let reader_conn = Arc::clone(&conn);
        let spawned = thread::Builder::new()
            .name(format!("kleislid-conn-{id}"))
            .spawn(move || {
                conn_shared.connections_open.fetch_add(1, Ordering::Relaxed);
                handle_connection(stream, reader_conn, &conn_shared);
                conn_shared.connections_open.fetch_sub(1, Ordering::Relaxed);
            });
        match spawned {
            Ok(handle) => {
                // Counted only now: a connection is "handled" once its
                // reader thread actually exists.
                shared.connections_total.fetch_add(1, Ordering::Relaxed);
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(
                        id,
                        ConnEntry {
                            handle: Some(handle),
                            conn,
                        },
                    );
            }
            Err(_) => {
                // Thread exhaustion: shed the connection rather than
                // dropping the whole server.
                match conn.socket.try_clone() {
                    Ok(socket) => shed(socket, &shared),
                    Err(_) => {
                        shared.connections_shed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Refuse a connection at accept time: count it, tell the client why
/// (best effort, briefly bounded — a peer that won't read its rejection
/// doesn't get to block the accept loop), drop the socket.
fn shed(stream: TcpStream, shared: &ServerShared) {
    shared.connections_shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let payload = encode_response(&Response::Error {
        id: 0,
        message: format!(
            "busy: connection limit {} reached",
            shared.config.max_connections
        ),
    });
    let _ = write_frame(&mut &stream, &payload);
    let _ = stream.shutdown(Shutdown::Both);
}

/// The lifecycle of one query id on a connection, from QUERY frame to
/// terminal response. Tracked so a CANCEL can land in the window before
/// the query thread has a handle to cancel.
enum Pending {
    /// QUERY received, evaluation not yet started.
    Requested,
    /// CANCEL received before evaluation started.
    Cancelled,
    /// Evaluating; cancel through the handle's canceller.
    Running(QueryCanceller),
}

/// The bounded outbound frame queue one writer thread drains; see the
/// module docs on slow-client isolation.
struct WriterQueue {
    state: Mutex<WriterState>,
    cv: Condvar,
    capacity: usize,
}

struct WriterState {
    frames: VecDeque<Vec<u8>>,
    /// No further enqueues; the writer drains what's left, then exits.
    closing: bool,
    /// The connection is condemned: frames are dropped, not sent.
    dead: bool,
}

/// Per-connection state shared between the reader thread, the writer
/// thread, and the query worker threads.
struct Conn {
    /// The connection's socket (a second handle to the reader's): the
    /// writer thread writes through it, and condemnation shuts it down
    /// — which unblocks the reader too.
    socket: TcpStream,
    writer: WriterQueue,
    /// This tenant's admission gate (`max_queries_per_connection` wide).
    gate: Arc<RequestGate>,
    /// Queries waiting on the gate (admission queue occupancy).
    queued: AtomicUsize,
    /// In-flight queries by id, for CANCEL routing.
    pending: Mutex<HashMap<u64, Pending>>,
    /// Query worker threads, joined when the reader exits.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Conn {
    fn send(&self, resp: &Response) {
        self.send_payload(encode_response(resp));
    }

    /// Hand a frame to the writer thread. Never blocks: a full queue
    /// means the client has stopped reading, and the connection is
    /// condemned on the spot.
    fn send_payload(&self, payload: Vec<u8>) {
        let overflow = {
            let mut st = self.lock_writer();
            if st.dead || st.closing {
                // Condemned or draining shut: the frame has nowhere to
                // go; its query already ran.
                return;
            }
            if st.frames.len() >= self.writer.capacity {
                true
            } else {
                st.frames.push_back(payload);
                false
            }
        };
        self.writer.cv.notify_all();
        if overflow {
            self.condemn();
        }
    }

    /// Kill a connection whose peer has stopped reading (queue overflow
    /// or write deadline): drop undeliverable frames, shut the socket
    /// (unblocking the reader), cancel this tenant's in-flight queries.
    fn condemn(&self) {
        {
            let mut st = self.lock_writer();
            st.dead = true;
            st.frames.clear();
        }
        self.writer.cv.notify_all();
        let _ = self.socket.shutdown(Shutdown::Both);
        self.cancel_all_pending();
    }

    /// Stop cooperatively everything this connection has in flight;
    /// queries not yet started are marked cancelled so their workers
    /// short-circuit.
    fn cancel_all_pending(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        for p in pending.values_mut() {
            match p {
                Pending::Requested => *p = Pending::Cancelled,
                Pending::Running(canceller) => canceller.cancel(),
                Pending::Cancelled => {}
            }
        }
    }

    /// Flag the queue closed and wait for the writer to drain it (each
    /// residual frame write is bounded by the write deadline).
    fn finish_writer(&self) {
        {
            let mut st = self.lock_writer();
            st.closing = true;
        }
        self.writer.cv.notify_all();
    }

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, WriterState> {
        self.writer.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The writer thread: drain the queue one frame at a time, each write
/// bounded by the socket's write deadline. Any write failure — timeout
/// included — condemns the connection.
fn writer_loop(conn: &Conn) {
    loop {
        let frame = {
            let mut st = conn.lock_writer();
            loop {
                if st.dead {
                    return;
                }
                if let Some(frame) = st.frames.pop_front() {
                    break frame;
                }
                if st.closing {
                    return;
                }
                st = conn
                    .writer
                    .cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        if write_frame(&mut &conn.socket, &frame).is_err() {
            conn.condemn();
            return;
        }
    }
}

fn handle_connection(mut reader: TcpStream, conn: Arc<Conn>, shared: &Arc<ServerShared>) {
    // Idle readers must notice shutdown: poll with a short read timeout.
    let _ = reader.set_read_timeout(Some(Duration::from_millis(50)));

    let writer_conn = Arc::clone(&conn);
    let Ok(writer) = thread::Builder::new()
        .name("kleislid-writer".to_string())
        .spawn(move || writer_loop(&writer_conn))
    else {
        conn.condemn();
        return;
    };

    // Build this tenant's session: registrar first (drivers, bindings),
    // shared caches after, so registration never clears them.
    let mut session = Session::new();
    (shared.registrar)(&mut session);
    session.share_plan_cache(Arc::clone(&shared.plan_cache));
    session.share_result_cache(Arc::clone(&shared.result_cache));
    let session = Arc::new(session);

    loop {
        let payload = match read_frame_with_shutdown(&mut reader, &shared.shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // An oversized length announcement: the stream cannot be
                // resynchronized, but the client can at least be told
                // before its connection (and only its connection) goes.
                conn.send(&Response::Error {
                    id: 0,
                    message: format!("protocol error: {e}"),
                });
                break;
            }
            Err(_) => break,
        };
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                // The length prefix framed correctly, only the payload
                // was bad — the stream stays in sync, so report and go
                // on rather than dropping the connection.
                conn.send(&Response::Error {
                    id: 0,
                    message: format!("malformed request: {e}"),
                });
                continue;
            }
        };
        match req {
            Request::Stats { id } => {
                conn.send(&Response::Stats {
                    id,
                    json: shared.stats_json(),
                });
            }
            Request::Cancel { id } => {
                shared.cancel_requests.fetch_add(1, Ordering::Relaxed);
                let mut pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
                match pending.get_mut(&id) {
                    Some(p @ Pending::Requested) => *p = Pending::Cancelled,
                    Some(Pending::Running(canceller)) => canceller.cancel(),
                    // Already finished (or never existed): nothing to do.
                    Some(Pending::Cancelled) | None => {}
                }
            }
            Request::Flush { id, source } => {
                shared.flush_requests.fetch_add(1, Ordering::Relaxed);
                match session.flush_source(&source) {
                    Ok(flush) => {
                        let mut wire =
                            shared.wire_cache.lock().unwrap_or_else(|e| e.into_inner());
                        if flush.conservative {
                            wire.clear();
                        } else {
                            for key in &flush.flushed_keys {
                                wire.remove(key);
                            }
                        }
                        drop(wire);
                        conn.send(&Response::Flushed {
                            id,
                            plans: flush.plans,
                            results: flush.results,
                        });
                    }
                    Err(e) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        conn.send(&Response::Error {
                            id,
                            message: e.to_string(),
                        });
                    }
                }
            }
            Request::Query { id, src } => {
                if shared.draining.load(Ordering::SeqCst) {
                    conn.send(&Response::Error {
                        id,
                        message: "shutting-down: server is draining; no new queries".to_string(),
                    });
                    continue;
                }
                start_query(shared, &conn, &session, id, src);
            }
        }
    }

    // Reader gone (EOF, condemned, or shutdown): stop this tenant's
    // in-flight queries, join the workers so every terminal frame is
    // enqueued, then let the writer drain and join it. After this no
    // thread of the connection survives.
    conn.cancel_all_pending();
    let workers = std::mem::take(&mut *conn.workers.lock().unwrap_or_else(|e| e.into_inner()));
    for worker in workers {
        let _ = worker.join();
    }
    conn.finish_writer();
    let _ = writer.join();
    // The registry ([`ServerShared::conns`]) still holds this
    // connection's socket clone until the accept loop reaps it, which
    // may be much later: actively shut the socket down so the peer sees
    // EOF now, not at the next accept.
    let _ = conn.socket.shutdown(Shutdown::Both);
}

/// Send a result frame, unless it exceeds the configured frame bound —
/// then the client gets a clean `Error` frame instead of a frame it
/// would refuse to read (a silently hung client).
fn send_bounded(shared: &ServerShared, conn: &Conn, id: u64, payload: Vec<u8>) {
    let limit = shared.config.max_result_frame.min(MAX_FRAME_LEN);
    if payload.len() > limit {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        conn.send(&Response::Error {
            id,
            message: format!(
                "result too large: {}-byte frame exceeds the {limit}-byte limit",
                payload.len()
            ),
        });
    } else {
        conn.send_payload(payload);
    }
}

/// Admission-check a QUERY frame and, if admitted, run it on its own
/// thread (the thread count is bounded by gate width + queue depth).
fn start_query(
    shared: &Arc<ServerShared>,
    conn: &Arc<Conn>,
    session: &Arc<Session>,
    id: u64,
    src: String,
) {
    {
        let pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
        if pending.contains_key(&id) {
            conn.send(&Response::Error {
                id,
                message: format!("protocol error: query id {id} already in flight"),
            });
            return;
        }
    }
    if try_fast_path(shared, conn, session, id, &src) {
        return;
    }
    // Claim a free run slot inline if one exists: an *admitted* query
    // must never count against (or be rejected by) the wait-queue depth
    // just because its worker thread has not been scheduled yet.
    let inline_ticket = conn.gate.try_acquire();
    let was_queued = inline_ticket.is_none();
    {
        let mut pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
        if was_queued {
            // Admission: reject instead of queueing without bound.
            if conn.queued.load(Ordering::Acquire) >= shared.config.queue_depth_per_connection {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                conn.send(&Response::Error {
                    id,
                    message: format!(
                        "busy: connection queue depth {} exceeded",
                        shared.config.queue_depth_per_connection
                    ),
                });
                return;
            }
            conn.queued.fetch_add(1, Ordering::AcqRel);
        }
        pending.insert(id, Pending::Requested);
    }
    shared.active_queries.fetch_add(1, Ordering::SeqCst);
    let worker_shared = Arc::clone(shared);
    let worker_conn = Arc::clone(conn);
    let worker_session = Arc::clone(session);
    let spawned = thread::Builder::new()
        .name(format!("kleislid-query-{id}"))
        .spawn(move || {
            let ticket = match inline_ticket {
                Some(ticket) => ticket,
                None => {
                    let ticket = worker_conn.gate.acquire();
                    worker_conn.queued.fetch_sub(1, Ordering::AcqRel);
                    ticket
                }
            };
            // A connection that died (or a CANCEL that landed) while
            // this query sat in the admission queue: don't evaluate a
            // query nobody is waiting for.
            let cancelled_early = matches!(
                worker_conn
                    .pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get(&id),
                Some(Pending::Cancelled)
            );
            if cancelled_early {
                worker_conn
                    .pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&id);
                worker_shared.queries.fetch_add(1, Ordering::Relaxed);
                worker_shared.errors.fetch_add(1, Ordering::Relaxed);
                worker_conn.send(&Response::Error {
                    id,
                    message: "query cancelled before it started".to_string(),
                });
            } else {
                run_query(&worker_shared, &worker_conn, &worker_session, id, &src);
            }
            drop(ticket);
            worker_shared.active_queries.fetch_sub(1, Ordering::SeqCst);
        });
    match spawned {
        Ok(handle) => {
            let mut workers = conn.workers.lock().unwrap_or_else(|e| e.into_inner());
            workers.retain(|w| !w.is_finished());
            workers.push(handle);
        }
        Err(_) => {
            shared.active_queries.fetch_sub(1, Ordering::SeqCst);
            // The unrun closure was dropped with it, releasing any inline
            // ticket; only the queued counter needs undoing by hand.
            if was_queued {
                conn.queued.fetch_sub(1, Ordering::AcqRel);
            }
            conn.pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Error {
                id,
                message: "busy: cannot spawn query worker".to_string(),
            });
        }
    }
}

/// Warm fast path: a fully cached query is served inline on the reader
/// thread — no worker thread, no admission (the per-tenant gate guards
/// *evaluation* capacity; a memory read needs none), and at most one
/// serialization per result-cache commit generation: the exchange text
/// lives in the wire cache, so the steady-state hit neither deep-clones
/// the `Value` nor re-serializes it. Returns `false` (caller takes the
/// ordinary admission path) unless both the plan and its committed
/// result are cached.
fn try_fast_path(
    shared: &ServerShared,
    conn: &Conn,
    session: &Session,
    id: u64,
    src: &str,
) -> bool {
    let Some(compiled) = session.plan_cache().peek(src, session.opt_config()) else {
        return false;
    };
    let hash = compiled.plan_hash();
    // `get_seq` does the hit accounting and LRU refresh for the whole
    // fast path (`peek` below is counter-neutral).
    let Some(seq) = shared.result_cache.get_seq(hash) else {
        return false;
    };
    let cached = {
        let wire = shared.wire_cache.lock().unwrap_or_else(|e| e.into_inner());
        match wire.get(&hash) {
            Some((s, text)) if *s == seq => Some(Arc::clone(text)),
            _ => None,
        }
    };
    let text = match cached {
        Some(text) => text,
        None => {
            // First hit of this commit generation (or the entry was
            // re-committed since): serialize once and remember it.
            let Some(value) = shared.result_cache.peek(hash) else {
                // Evicted between `get_seq` and here; evaluate normally.
                return false;
            };
            let text = Arc::new(kleisli_core::write_exchange(&value));
            let mut wire = shared.wire_cache.lock().unwrap_or_else(|e| e.into_inner());
            if wire.len() >= WIRE_CACHE_CAP && !wire.contains_key(&hash) {
                wire.clear();
            }
            wire.insert(hash, (seq, Arc::clone(&text)));
            text
        }
    };
    shared.queries.fetch_add(1, Ordering::Relaxed);
    shared.served_cached.fetch_add(1, Ordering::Relaxed);
    send_bounded(
        shared,
        conn,
        id,
        encode_result_text(id, ServedFrom::SharedCache, &text),
    );
    true
}

/// The body of one admitted query: submit through the shared-cache path,
/// keep the canceller reachable for CANCEL frames, send the terminal
/// response, and maintain the counters.
fn run_query(shared: &ServerShared, conn: &Conn, session: &Session, id: u64, src: &str) {
    shared.queries.fetch_add(1, Ordering::Relaxed);
    let outcome = match session.submit_shared(src) {
        Err(e) => Err(e),
        Ok(SharedQuery::Cached(value)) => {
            conn.pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            shared.served_cached.fetch_add(1, Ordering::Relaxed);
            send_bounded(
                shared,
                conn,
                id,
                encode_response(&Response::Result {
                    id,
                    served: ServedFrom::SharedCache,
                    value,
                }),
            );
            return;
        }
        Ok(SharedQuery::Fresh { handle, commit }) => {
            arm_canceller(conn, id, handle.canceller());
            let result = handle.wait();
            if let Ok(v) = &result {
                // Publish to waiters and the cache; on error the commit
                // is dropped instead, waking waiters to retry.
                commit.commit(v.clone());
            }
            result
        }
        Ok(SharedQuery::Uncached(handle)) => {
            arm_canceller(conn, id, handle.canceller());
            handle.wait()
        }
    };
    conn.pending
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&id);
    match outcome {
        Ok(value) => {
            shared.served_fresh.fetch_add(1, Ordering::Relaxed);
            send_bounded(
                shared,
                conn,
                id,
                encode_response(&Response::Result {
                    id,
                    served: ServedFrom::Fresh,
                    value,
                }),
            );
        }
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Error {
                id,
                message: e.to_string(),
            });
        }
    }
}

/// Make a just-started query cancellable by id — and apply a CANCEL that
/// raced in before the handle existed.
fn arm_canceller(conn: &Conn, id: u64, canceller: QueryCanceller) {
    let mut pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
    match pending.get(&id) {
        Some(Pending::Cancelled) => canceller.cancel(),
        _ => {
            pending.insert(id, Pending::Running(canceller));
        }
    }
}

/// [`crate::proto::read_frame`] for the server side: the stream has a
/// short read timeout so readers can observe `shutdown` — idle or
/// mid-frame alike (a peer trickling bytes must not pin the drain);
/// otherwise timeouts mid-frame keep waiting (the peer is mid-write,
/// not gone).
fn read_frame_with_shutdown(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_full(stream, &mut len, shutdown)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (limit {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_full(stream, &mut payload, shutdown)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "EOF mid-frame",
        ));
    }
    Ok(Some(payload))
}

/// Fill `buf`, riding out read timeouts. `Ok(false)`: clean EOF (or
/// shutdown) before the first byte; EOF after the first byte is an
/// error. At shutdown a partially read frame is abandoned — the
/// connection is closing either way.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> io::Result<bool> {
    if buf.is_empty() {
        return Ok(true);
    }
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}
