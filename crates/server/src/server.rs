//! The `kleislid` server: many client connections, one process-wide set
//! of caches.
//!
//! # Topology
//!
//! Each accepted connection gets its own reader thread and its own
//! [`Session`] — built by the server's *registrar* (the closure that
//! registers drivers and bindings), then attached to the **shared**
//! [`PlanCache`] and [`ResultCache`]. Driver `Arc`s captured by the
//! registrar are shared across sessions, so per-driver admission gates,
//! resilience policies, and metrics are process-wide, exactly as they
//! were per-session; and every session evaluates on the process-wide
//! compute [`Executor`](kleisli_core::Executor).
//!
//! # Admission (per-tenant fair share)
//!
//! A connection is a tenant. Each gets a private
//! [`RequestGate`] admitting at most
//! [`ServerConfig::max_queries_per_connection`] concurrently-running
//! queries, plus a bounded wait queue of
//! [`ServerConfig::queue_depth_per_connection`]; a QUERY arriving with
//! the queue full is rejected immediately with an `Error` response
//! (message prefix `"busy:"`) instead of stalling the connection. A hot
//! tenant therefore saturates *its own* gate and queue while every other
//! tenant's queries keep flowing — downstream, the shared executor and
//! the per-driver gates arbitrate between tenants' admitted queries on
//! equal terms.
//!
//! # Cancellation
//!
//! CANCEL frames act on the query id: a queued or running query is
//! stopped cooperatively (the client still receives a terminal frame for
//! that id, normally an `Error` reporting the cancellation). Cancelling
//! a query that is populating the shared result cache drops its populate
//! ticket, waking any waiting sessions to compute the result themselves
//! — the shared cache is never poisoned by a cancelled flight.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use kleisli::{PlanCache, QueryCanceller, Session, SharedQuery};
use kleisli_core::{write_exchange, RequestGate};
use kleisli_exec::ResultCache;

use crate::proto::{
    decode_request, encode_response, encode_result_text, write_frame, Request, Response,
    ServedFrom, MAX_FRAME_LEN,
};

/// Entries kept in the serialized-response cache before a wholesale
/// clear. Each entry mirrors one result-cache entry, so the bound only
/// matters when the plan cache churns faster than the wire cache.
const WIRE_CACHE_CAP: usize = 128;

/// Tuning knobs for a [`serve`] call. `Default` gives a 64-plan shared
/// cache, the result cache's default 64 MiB budget, and per-connection
/// limits of 4 running + 16 queued queries.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Capacity of the shared compiled-plan cache (entries).
    pub plan_cache_capacity: usize,
    /// Memory budget of the shared result cache (bytes of approximate
    /// resident `Value` footprint; see `Value::approx_bytes`).
    pub result_cache_budget: u64,
    /// Queries one connection may have *running* at once.
    pub max_queries_per_connection: usize,
    /// Queries one connection may have *waiting* for its gate beyond the
    /// running ones; the excess is rejected with a `busy:` error.
    pub queue_depth_per_connection: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            plan_cache_capacity: 64,
            result_cache_budget: kleisli_exec::DEFAULT_RESULT_CACHE_BUDGET,
            max_queries_per_connection: 4,
            queue_depth_per_connection: 16,
        }
    }
}

/// The closure that prepares each connection's [`Session`]: register
/// drivers, bind values, run defines. It runs *before* the shared caches
/// are attached, so its registrations never clear them.
pub type Registrar = dyn Fn(&mut Session) + Send + Sync;

/// Process-wide server state shared by every connection.
struct ServerShared {
    plan_cache: Arc<PlanCache>,
    result_cache: Arc<ResultCache>,
    /// Serialized responses by plan hash, validated against the result
    /// cache's commit sequence: a warm hit reuses the exchange text
    /// instead of deep-cloning the `Value` and re-serializing it. A
    /// stale sequence (the entry was evicted and re-committed) misses
    /// here and is re-serialized once.
    wire_cache: Mutex<HashMap<u64, (u64, Arc<String>)>>,
    registrar: Arc<Registrar>,
    config: ServerConfig,
    shutdown: AtomicBool,
    started: Instant,
    connections_total: AtomicU64,
    connections_open: AtomicU64,
    queries: AtomicU64,
    served_fresh: AtomicU64,
    served_cached: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    cancel_requests: AtomicU64,
}

impl ServerShared {
    /// The STATS payload: one JSON document over the shared-cache and
    /// admission counters (also what `ServerHandle::stats_json` returns).
    fn stats_json(&self) -> String {
        let p = self.plan_cache.stats();
        let r = self.result_cache.stats();
        format!(
            concat!(
                "{{\"uptime_ms\":{},",
                "\"connections\":{{\"total\":{},\"open\":{}}},",
                "\"queries\":{{\"total\":{},\"served_fresh\":{},\"served_cached\":{},",
                "\"errors\":{},\"rejected\":{},\"cancel_requests\":{}}},",
                "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},",
                "\"entries\":{},\"capacity\":{}}},",
                "\"result_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},",
                "\"entries\":{},\"bytes\":{},\"peak_bytes\":{},\"budget\":{}}}}}"
            ),
            self.started.elapsed().as_millis(),
            self.connections_total.load(Ordering::Relaxed),
            self.connections_open.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.served_fresh.load(Ordering::Relaxed),
            self.served_cached.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.cancel_requests.load(Ordering::Relaxed),
            p.hits,
            p.misses,
            p.evictions,
            p.entries,
            p.capacity,
            r.hits,
            r.misses,
            r.evictions,
            r.entries,
            r.bytes,
            r.peak_bytes,
            r.budget,
        )
    }
}

/// A running server: the accept loop lives on its own thread. Dropping
/// the handle shuts the server down (set the flag, nudge the listener,
/// join the accept thread); in-flight queries finish on their own
/// threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `serve_ephemeral` was
    /// asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-wide compiled-plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.shared.plan_cache
    }

    /// The process-wide result cache.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.shared.result_cache
    }

    /// The same JSON document a STATS frame returns.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Block on the accept loop (for a daemon main: serve until killed).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stop accepting, wake idle connection readers, and join the accept
    /// thread. Queries already running complete on their worker threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve connections until the handle is shut down.
/// `registrar` prepares each connection's session (drivers, bindings)
/// before the shared caches are attached.
pub fn serve(
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    registrar: Arc<Registrar>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        plan_cache: PlanCache::new(config.plan_cache_capacity),
        result_cache: ResultCache::new(config.result_cache_budget),
        wire_cache: Mutex::new(HashMap::new()),
        registrar,
        config,
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        connections_total: AtomicU64::new(0),
        connections_open: AtomicU64::new(0),
        queries: AtomicU64::new(0),
        served_fresh: AtomicU64::new(0),
        served_cached: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        cancel_requests: AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = thread::Builder::new()
        .name("kleislid-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

/// [`serve`] on `127.0.0.1` with an OS-assigned port — for tests,
/// examples, and the bench harness.
pub fn serve_ephemeral(config: ServerConfig, registrar: Arc<Registrar>) -> io::Result<ServerHandle> {
    serve("127.0.0.1:0", config, registrar)
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        stream.set_nodelay(true).ok();
        let n = shared.connections_total.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name(format!("kleislid-conn-{n}"))
            .spawn(move || {
                conn_shared.connections_open.fetch_add(1, Ordering::Relaxed);
                handle_connection(stream, &conn_shared);
                conn_shared.connections_open.fetch_sub(1, Ordering::Relaxed);
            });
        if spawned.is_err() {
            // Thread exhaustion: drop the connection rather than the
            // whole server.
            continue;
        }
    }
}

/// The lifecycle of one query id on a connection, from QUERY frame to
/// terminal response. Tracked so a CANCEL can land in the window before
/// the query thread has a handle to cancel.
enum Pending {
    /// QUERY received, evaluation not yet started.
    Requested,
    /// CANCEL received before evaluation started.
    Cancelled,
    /// Evaluating; cancel through the handle's canceller.
    Running(QueryCanceller),
}

/// Per-connection state shared between the reader thread and its query
/// threads.
struct Conn {
    writer: Mutex<TcpStream>,
    /// This tenant's admission gate (`max_queries_per_connection` wide).
    gate: Arc<RequestGate>,
    /// Queries waiting on the gate (admission queue occupancy).
    queued: AtomicUsize,
    /// In-flight queries by id, for CANCEL routing.
    pending: Mutex<HashMap<u64, Pending>>,
}

impl Conn {
    fn send(&self, resp: &Response) {
        self.send_payload(&encode_response(resp));
    }

    fn send_payload(&self, payload: &[u8]) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // A dead client socket is the client's problem; its queries
        // already ran. Errors here just mean nobody is listening.
        let _ = write_frame(&mut *w, payload);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut reader = stream;
    // Idle readers must notice shutdown: poll with a short read timeout.
    let _ = reader.set_read_timeout(Some(Duration::from_millis(50)));

    // Build this tenant's session: registrar first (drivers, bindings),
    // shared caches after, so registration never clears them.
    let mut session = Session::new();
    (shared.registrar)(&mut session);
    session.share_plan_cache(Arc::clone(&shared.plan_cache));
    session.share_result_cache(Arc::clone(&shared.result_cache));
    let session = Arc::new(session);

    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
        gate: RequestGate::new(shared.config.max_queries_per_connection),
        queued: AtomicUsize::new(0),
        pending: Mutex::new(HashMap::new()),
    });

    while let Ok(Some(payload)) = read_frame_with_shutdown(&mut reader, &shared.shutdown) {
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                // The length prefix framed correctly, only the payload
                // was bad — the stream stays in sync, so report and go
                // on rather than dropping the connection.
                conn.send(&Response::Error {
                    id: 0,
                    message: format!("malformed request: {e}"),
                });
                continue;
            }
        };
        match req {
            Request::Stats { id } => {
                conn.send(&Response::Stats {
                    id,
                    json: shared.stats_json(),
                });
            }
            Request::Cancel { id } => {
                shared.cancel_requests.fetch_add(1, Ordering::Relaxed);
                let mut pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
                match pending.get_mut(&id) {
                    Some(p @ Pending::Requested) => *p = Pending::Cancelled,
                    Some(Pending::Running(canceller)) => canceller.cancel(),
                    // Already finished (or never existed): nothing to do.
                    Some(Pending::Cancelled) | None => {}
                }
            }
            Request::Query { id, src } => {
                start_query(shared, &conn, &session, id, src);
            }
        }
    }

    // Reader gone: stop this tenant's in-flight queries; their threads
    // drain (writing to the dead socket is a no-op).
    let pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
    for p in pending.values() {
        if let Pending::Running(canceller) = p {
            canceller.cancel();
        }
    }
}

/// Admission-check a QUERY frame and, if admitted, run it on its own
/// thread (the thread count is bounded by gate width + queue depth).
fn start_query(
    shared: &Arc<ServerShared>,
    conn: &Arc<Conn>,
    session: &Arc<Session>,
    id: u64,
    src: String,
) {
    {
        let pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
        if pending.contains_key(&id) {
            conn.send(&Response::Error {
                id,
                message: format!("protocol error: query id {id} already in flight"),
            });
            return;
        }
    }
    if try_fast_path(shared, conn, session, id, &src) {
        return;
    }
    // Claim a free run slot inline if one exists: an *admitted* query
    // must never count against (or be rejected by) the wait-queue depth
    // just because its worker thread has not been scheduled yet.
    let inline_ticket = conn.gate.try_acquire();
    let was_queued = inline_ticket.is_none();
    {
        let mut pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
        if was_queued {
            // Admission: reject instead of queueing without bound.
            if conn.queued.load(Ordering::Acquire) >= shared.config.queue_depth_per_connection {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                conn.send(&Response::Error {
                    id,
                    message: format!(
                        "busy: connection queue depth {} exceeded",
                        shared.config.queue_depth_per_connection
                    ),
                });
                return;
            }
            conn.queued.fetch_add(1, Ordering::AcqRel);
        }
        pending.insert(id, Pending::Requested);
    }
    let worker_shared = Arc::clone(shared);
    let worker_conn = Arc::clone(conn);
    let worker_session = Arc::clone(session);
    let spawned = thread::Builder::new()
        .name(format!("kleislid-query-{id}"))
        .spawn(move || {
            let ticket = match inline_ticket {
                Some(ticket) => ticket,
                None => {
                    let ticket = worker_conn.gate.acquire();
                    worker_conn.queued.fetch_sub(1, Ordering::AcqRel);
                    ticket
                }
            };
            run_query(&worker_shared, &worker_conn, &worker_session, id, &src);
            drop(ticket);
        });
    if spawned.is_err() {
        // The unrun closure was dropped with it, releasing any inline
        // ticket; only the queued counter needs undoing by hand.
        if was_queued {
            conn.queued.fetch_sub(1, Ordering::AcqRel);
        }
        conn.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        conn.send(&Response::Error {
            id,
            message: "busy: cannot spawn query worker".to_string(),
        });
    }
}

/// Warm fast path: a fully cached query is served inline on the reader
/// thread — no worker thread, no admission (the per-tenant gate guards
/// *evaluation* capacity; a memory read needs none), and at most one
/// serialization per result-cache commit generation: the exchange text
/// lives in the wire cache, so the steady-state hit neither deep-clones
/// the `Value` nor re-serializes it. Returns `false` (caller takes the
/// ordinary admission path) unless both the plan and its committed
/// result are cached.
fn try_fast_path(
    shared: &ServerShared,
    conn: &Conn,
    session: &Session,
    id: u64,
    src: &str,
) -> bool {
    let Some(compiled) = session.plan_cache().peek(src, session.opt_config()) else {
        return false;
    };
    let hash = compiled.plan_hash();
    // `get_seq` does the hit accounting and LRU refresh for the whole
    // fast path (`peek` below is counter-neutral).
    let Some(seq) = shared.result_cache.get_seq(hash) else {
        return false;
    };
    let cached = {
        let wire = shared.wire_cache.lock().unwrap_or_else(|e| e.into_inner());
        match wire.get(&hash) {
            Some((s, text)) if *s == seq => Some(Arc::clone(text)),
            _ => None,
        }
    };
    let text = match cached {
        Some(text) => text,
        None => {
            // First hit of this commit generation (or the entry was
            // re-committed since): serialize once and remember it.
            let Some(value) = shared.result_cache.peek(hash) else {
                // Evicted between `get_seq` and here; evaluate normally.
                return false;
            };
            let text = Arc::new(write_exchange(&value));
            let mut wire = shared.wire_cache.lock().unwrap_or_else(|e| e.into_inner());
            if wire.len() >= WIRE_CACHE_CAP && !wire.contains_key(&hash) {
                wire.clear();
            }
            wire.insert(hash, (seq, Arc::clone(&text)));
            text
        }
    };
    shared.queries.fetch_add(1, Ordering::Relaxed);
    shared.served_cached.fetch_add(1, Ordering::Relaxed);
    conn.send_payload(&encode_result_text(id, ServedFrom::SharedCache, &text));
    true
}

/// The body of one admitted query: submit through the shared-cache path,
/// keep the canceller reachable for CANCEL frames, send the terminal
/// response, and maintain the counters.
fn run_query(shared: &ServerShared, conn: &Conn, session: &Session, id: u64, src: &str) {
    shared.queries.fetch_add(1, Ordering::Relaxed);
    let outcome = match session.submit_shared(src) {
        Err(e) => Err(e),
        Ok(SharedQuery::Cached(value)) => {
            conn.pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            shared.served_cached.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Result {
                id,
                served: ServedFrom::SharedCache,
                value,
            });
            return;
        }
        Ok(SharedQuery::Fresh { handle, commit }) => {
            arm_canceller(conn, id, handle.canceller());
            let result = handle.wait();
            if let Ok(v) = &result {
                // Publish to waiters and the cache; on error the commit
                // is dropped instead, waking waiters to retry.
                commit.commit(v.clone());
            }
            result
        }
        Ok(SharedQuery::Uncached(handle)) => {
            arm_canceller(conn, id, handle.canceller());
            handle.wait()
        }
    };
    conn.pending
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&id);
    match outcome {
        Ok(value) => {
            shared.served_fresh.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Result {
                id,
                served: ServedFrom::Fresh,
                value,
            });
        }
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Error {
                id,
                message: e.to_string(),
            });
        }
    }
}

/// Make a just-started query cancellable by id — and apply a CANCEL that
/// raced in before the handle existed.
fn arm_canceller(conn: &Conn, id: u64, canceller: QueryCanceller) {
    let mut pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
    match pending.get(&id) {
        Some(Pending::Cancelled) => canceller.cancel(),
        _ => {
            pending.insert(id, Pending::Running(canceller));
        }
    }
}

/// [`crate::proto::read_frame`] for the server side: the stream has a
/// short read timeout so idle readers can observe `shutdown`; timeouts
/// mid-frame keep waiting (the peer is mid-write, not gone).
fn read_frame_with_shutdown(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_full(stream, &mut len, shutdown)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (limit {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_full(stream, &mut payload, shutdown)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "EOF mid-frame",
        ));
    }
    Ok(Some(payload))
}

/// Fill `buf`, riding out read timeouts. `Ok(false)`: clean EOF (or
/// shutdown) before the first byte; EOF after the first byte is an
/// error.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> io::Result<bool> {
    if buf.is_empty() {
        return Ok(true);
    }
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) && filled == 0 {
                    return Ok(false);
                }
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}
