//! `kleislid` — the Kleisli query daemon.
//!
//! Serves CPL over the framed TCP protocol (see `kleisli_server::proto`)
//! against the paper's two-source biological federation (a generated
//! GDB/Sybase simulator and a GenBank/Entrez simulator), with the
//! process-wide shared plan and result caches.
//!
//! ```text
//! kleislid [--addr 127.0.0.1:4455] [--loci 500] [--latency-ms 5]
//!          [--plan-cache 64] [--budget-mb 64]
//!          [--max-concurrent 4] [--queue-depth 16]
//! ```

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::bio_federation;
use kleisli_core::LatencyModel;
use kleisli_server::{serve, ServerConfig};

struct Args {
    addr: String,
    loci: usize,
    latency: Duration,
    plan_cache: usize,
    budget_mb: u64,
    max_concurrent: usize,
    queue_depth: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: kleislid [--addr HOST:PORT] [--loci N] [--latency-ms MS] \
         [--plan-cache N] [--budget-mb MB] [--max-concurrent N] [--queue-depth N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:4455".to_string(),
        loci: 500,
        latency: Duration::from_millis(5),
        plan_cache: 64,
        budget_mb: 64,
        max_concurrent: 4,
        queue_depth: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        });
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--loci" => args.loci = parse(&value("--loci")),
            "--latency-ms" => args.latency = Duration::from_millis(parse(&value("--latency-ms"))),
            "--plan-cache" => args.plan_cache = parse(&value("--plan-cache")),
            "--budget-mb" => args.budget_mb = parse(&value("--budget-mb")),
            "--max-concurrent" => args.max_concurrent = parse(&value("--max-concurrent")),
            "--queue-depth" => args.queue_depth = parse(&value("--queue-depth")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {s:?}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let fed = bio_federation(
        &GdbConfig {
            loci: args.loci,
            seed: 97,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 50,
            links_per_entry: 3,
            seq_len: 60,
            seed: 97,
        },
        LatencyModel::real(args.latency, Duration::ZERO),
        LatencyModel::real(args.latency, Duration::ZERO),
    )
    .unwrap_or_else(|e| {
        eprintln!("kleislid: cannot generate federation: {e}");
        exit(1);
    });
    let gdb = fed.gdb.clone();
    let genbank = fed.genbank.clone();
    let config = ServerConfig {
        plan_cache_capacity: args.plan_cache,
        result_cache_budget: args.budget_mb * 1024 * 1024,
        max_queries_per_connection: args.max_concurrent,
        queue_depth_per_connection: args.queue_depth,
        ..ServerConfig::default()
    };
    let handle = serve(
        args.addr.as_str(),
        config,
        Arc::new(move |session: &mut kleisli::Session| {
            session.register_driver(gdb.clone());
            session.register_driver(genbank.clone());
        }),
    )
    .unwrap_or_else(|e| {
        eprintln!("kleislid: cannot bind {}: {e}", args.addr);
        exit(1);
    });
    println!("kleislid listening on {}", handle.addr());
    handle.wait();
}
