//! End-to-end tests of the `kleislid` server over real loopback
//! sockets: roundtrips, cross-session shared-cache behavior,
//! cancellation, admission control, and the memory budget.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bio_data::{GdbConfig, GenBankConfig, MemorySource};
use kleisli::{bio_federation, BioFederation, Session};
use kleisli_core::{LatencyModel, Value};
use kleisli_server::{serve_ephemeral, Client, QueryReply, Response, ServedFrom, ServerConfig};

/// A registrar binding a small local publications-like dataset — instant
/// queries, no federation generation cost.
fn local_registrar() -> Arc<kleisli_server::Registrar> {
    Arc::new(|session: &mut Session| {
        session.bind_value(
            "DB",
            Value::set(
                (0..50)
                    .map(|i| {
                        Value::record_from(vec![
                            ("k", Value::Int(i % 7)),
                            ("v", Value::Int(i)),
                        ])
                    })
                    .collect(),
            ),
        );
    })
}

/// A federation whose every driver request costs `latency_ms` — slow
/// enough that concurrent clients overlap and cancels land mid-flight.
fn slow_federation(latency_ms: u64) -> BioFederation {
    bio_federation(
        &GdbConfig {
            loci: 40,
            seed: 11,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 5,
            links_per_entry: 2,
            seq_len: 20,
            seed: 11,
        },
        LatencyModel::real(Duration::from_millis(latency_ms), Duration::ZERO),
        LatencyModel::real(Duration::from_millis(latency_ms), Duration::ZERO),
    )
    .expect("federation")
}

fn federation_registrar(fed: &BioFederation) -> Arc<kleisli_server::Registrar> {
    let gdb = fed.gdb.clone();
    let genbank = fed.genbank.clone();
    Arc::new(move |session: &mut Session| {
        session.register_driver(gdb.clone());
        session.register_driver(genbank.clone());
    })
}

#[test]
fn roundtrip_fresh_then_shared_cache_hit() {
    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let (v1, served1) = client
        .query(r"sum({x.v | \x <- DB})")
        .unwrap()
        .into_value()
        .unwrap();
    assert_eq!(v1, Value::Int((0..50).sum::<i64>()));
    assert_eq!(served1, ServedFrom::Fresh);

    // Same plan again — even from a *different* connection — is served
    // from the shared result cache.
    let mut other = Client::connect(server.addr()).unwrap();
    let (v2, served2) = other
        .query(r"sum({x.v | \x <- DB})")
        .unwrap()
        .into_value()
        .unwrap();
    assert_eq!(v2, v1);
    assert_eq!(served2, ServedFrom::SharedCache);

    let stats = other.stats().unwrap();
    for field in [
        "\"plan_cache\"",
        "\"result_cache\"",
        "\"queries\"",
        "\"served_cached\":1",
        "\"budget\"",
    ] {
        assert!(stats.contains(field), "missing {field} in {stats}");
    }
}

#[test]
fn compile_errors_come_back_as_error_frames() {
    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query(r"{x | \x <- NoSuchSource}").unwrap() {
        QueryReply::Error(message) => {
            assert!(message.contains("NoSuchSource"), "{message}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The connection survives an error and still serves queries.
    let (v, _) = client
        .query(r"count(DB)")
        .unwrap()
        .into_value()
        .unwrap();
    assert_eq!(v, Value::Int(50));
}

#[test]
fn n_identical_concurrent_queries_compile_once_and_evaluate_once() {
    const N: usize = 8;
    let fed = slow_federation(30);
    let server = serve_ephemeral(ServerConfig::default(), federation_registrar(&fed)).unwrap();
    let addr = server.addr();
    let src = r#"count({l | \l <- GDB-Tab("locus")})"#;

    let values: Vec<(Value, ServedFrom)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.query(src).unwrap().into_value().unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (v, _) in &values {
        assert_eq!(*v, Value::Int(40));
    }
    let fresh = values
        .iter()
        .filter(|(_, s)| *s == ServedFrom::Fresh)
        .count();
    assert_eq!(fresh, 1, "exactly one evaluation for {N} identical queries");

    let plans = server.plan_cache().stats();
    assert_eq!(plans.misses, 1, "exactly one compile: {plans:?}");
    // Every non-compiling query hits at least once; a query landing
    // between the plan commit and the result commit hits twice (the
    // warm fast path peeks the plan, finds no committed result, and
    // falls through to the ordinary lookup).
    assert!(plans.hits as usize >= N - 1, "{plans:?}");
    let results = server.result_cache().stats();
    assert_eq!(results.misses, 1, "one populate flight: {results:?}");
    assert_eq!(results.hits as usize, N - 1);
}

#[test]
fn cancel_mid_flight_reports_error_and_does_not_poison_the_cache() {
    let fed = slow_federation(400);
    let server = serve_ephemeral(ServerConfig::default(), federation_registrar(&fed)).unwrap();
    let src = r#"count({l | \l <- GDB-Tab("locus")})"#;

    let mut victim = Client::connect(server.addr()).unwrap();
    let id = victim.send_query(src).unwrap();
    thread::sleep(Duration::from_millis(50));
    victim.cancel(id).unwrap();
    match victim.wait_reply(id).unwrap() {
        QueryReply::Error(message) => {
            assert!(
                message.to_lowercase().contains("cancel"),
                "expected a cancellation error, got: {message}"
            );
        }
        other => panic!("cancelled query must end in a cancellation error, got {other:?}"),
    }

    // The aborted populate flight must not wedge the shared cell: a new
    // client computes the same plan to completion.
    let mut retry = Client::connect(server.addr()).unwrap();
    let (v, served) = retry.query(src).unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(40));
    assert_eq!(served, ServedFrom::Fresh, "aborted flight cached nothing");
}

#[test]
fn queue_depth_overflow_is_rejected_not_stalled() {
    let fed = slow_federation(300);
    let config = ServerConfig {
        max_queries_per_connection: 1,
        queue_depth_per_connection: 1,
        ..ServerConfig::default()
    };
    let server = serve_ephemeral(config, federation_registrar(&fed)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Distinct plans so the shared result cache cannot absorb the burst.
    let sources = [
        r#"count({l | \l <- GDB-Tab("locus")})"#,
        r#"count({l.locus_symbol | \l <- GDB-Tab("locus")})"#,
        r#"count({l | \l <- GDB-Tab("object_genbank_eref")})"#,
        r#"count({l | \l <- GDB-Tab("locus_cyto_location")})"#,
    ];
    let ids: Vec<u64> = sources
        .iter()
        .map(|src| client.send_query(src).unwrap())
        .collect();

    let mut busy = 0;
    let mut ok = 0;
    for _ in &ids {
        match client.read_response().unwrap() {
            Response::Error { message, .. } if message.starts_with("busy:") => busy += 1,
            Response::Error { message, .. } => panic!("unexpected error: {message}"),
            Response::Result { .. } => ok += 1,
            other => panic!("unrequested frame: {other:?}"),
        }
    }
    // 1 running + 1 queued; with 4 pipelined queries at least one must
    // overflow the queue (scheduling may let an early finisher admit a
    // later arrival, so the exact split varies).
    assert!(busy >= 1, "no busy rejection in {busy}/{ok} split");
    assert!(ok >= 2, "admitted queries must still complete ({ok})");
    assert_eq!(busy + ok, 4);

    let stats = server.stats_json();
    assert!(stats.contains("\"rejected\":"), "{stats}");
}

#[test]
fn result_cache_budget_is_enforced_over_the_wire() {
    // A tiny budget: every distinct query's result evicts the previous
    // one, and resident bytes never exceed the cap.
    let config = ServerConfig {
        result_cache_budget: 4096,
        ..ServerConfig::default()
    };
    let server = serve_ephemeral(config, local_registrar()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for k in 0..7 {
        let src = format!(r"{{[a = x.v, b = {k}] | \x <- DB}}");
        let (v, _) = client.query(&src).unwrap().into_value().unwrap();
        assert_eq!(v.len(), Some(50));
        let stats = server.result_cache().stats();
        assert!(
            stats.bytes <= stats.budget,
            "resident {} exceeds budget {}",
            stats.bytes,
            stats.budget
        );
        assert!(
            stats.peak_bytes <= stats.budget,
            "peak {} exceeds budget {}",
            stats.peak_bytes,
            stats.budget
        );
    }
    let stats = server.result_cache().stats();
    assert!(stats.evictions > 0, "budget pressure must evict: {stats:?}");
}

// ---------------------------------------------------------------------
// CANCEL edge cases: every shape of misdirected cancel is an
// acknowledged no-op, never an error or a wedged connection.
// ---------------------------------------------------------------------

#[test]
fn cancel_for_an_unknown_id_is_a_noop() {
    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client.cancel(999).unwrap();
    // The connection is unharmed and still serves queries.
    let (v, _) = client.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(50));
    assert!(server.stats_json().contains("\"cancel_requests\":1"));
}

#[test]
fn cancel_after_the_terminal_frame_is_a_noop() {
    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let id = client.send_query(r"count(DB)").unwrap();
    let reply = client.wait_reply(id).unwrap();
    assert!(matches!(reply, QueryReply::Value { .. }));

    // The query is already terminal; cancelling its id does nothing.
    client.cancel(id).unwrap();
    let (v, _) = client.query(r"sum({x.v | \x <- DB})").unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int((0..50).sum::<i64>()));
}

#[test]
fn double_cancel_is_idempotent() {
    let fed = slow_federation(400);
    let server = serve_ephemeral(ServerConfig::default(), federation_registrar(&fed)).unwrap();
    let src = r#"count({l | \l <- GDB-Tab("locus")})"#;

    let mut client = Client::connect(server.addr()).unwrap();
    let id = client.send_query(src).unwrap();
    thread::sleep(Duration::from_millis(50));
    client.cancel(id).unwrap();
    client.cancel(id).unwrap();
    match client.wait_reply(id).unwrap() {
        QueryReply::Error(message) => {
            assert!(message.to_lowercase().contains("cancel"), "{message}");
        }
        other => panic!("expected exactly one cancellation error, got {other:?}"),
    }
    // One terminal frame only; the connection still serves.
    let (v, _) = client.query(src).unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(40));
}

// ---------------------------------------------------------------------
// The outbound frame-size limit: a result too large for the configured
// bound becomes a clean ERROR frame, not a hung or killed connection.
// (The inbound direction — an oversized length announcement — is
// covered in tests/chaos.rs.)
// ---------------------------------------------------------------------

#[test]
fn oversized_results_become_clean_error_frames() {
    let config = ServerConfig {
        max_result_frame: 64,
        ..ServerConfig::default()
    };
    let server = serve_ephemeral(config, local_registrar()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    match client.query(r"{x | \x <- DB}").unwrap() {
        QueryReply::Error(message) => {
            assert!(message.contains("result too large"), "{message}");
            assert!(message.contains("64-byte limit"), "{message}");
        }
        other => panic!("expected a too-large error, got {other:?}"),
    }
    // Small results still fit, on the same connection.
    let (v, _) = client.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(50));
}

// ---------------------------------------------------------------------
// FLUSH over the wire: refreshing a source invalidates exactly the
// entries derived from it, and the invalidation generations move.
// ---------------------------------------------------------------------

#[test]
fn flush_invalidates_exactly_the_refreshed_source() {
    let src_a = Arc::new(
        MemorySource::new("SrcA")
            .with_table("t", Value::set(vec![Value::Int(1), Value::Int(2)])),
    );
    let src_b = Arc::new(
        MemorySource::new("SrcB").with_table("t", Value::set(vec![Value::Int(10)])),
    );
    let registrar: Arc<kleisli_server::Registrar> = {
        let (a, b) = (src_a.clone(), src_b.clone());
        Arc::new(move |session: &mut Session| {
            session.register_driver(a.clone());
            session.register_driver(b.clone());
        })
    };
    let server = serve_ephemeral(ServerConfig::default(), registrar).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let qa = r#"sum(SrcA([table = "t"]))"#;
    let qb = r#"sum(SrcB([table = "t"]))"#;

    // Warm both sources into the shared caches.
    let (v, _) = client.query(qa).unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(3));
    let (v, served) = client.query(qa).unwrap().into_value().unwrap();
    assert_eq!((v, served), (Value::Int(3), ServedFrom::SharedCache));
    let (v, _) = client.query(qb).unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(10));

    // The source changes underneath the mediator; FLUSH tells it so.
    src_a.replace_table("t", Value::set(vec![Value::Int(5), Value::Int(7)]));
    let (plans, results) = client.flush("SrcA").unwrap();
    assert!(plans >= 1, "the SrcA plan was resident ({plans})");
    assert_eq!(results, 1, "exactly SrcA's result entry dropped");

    // The same query text now recompiles and re-evaluates fresh...
    let (v, served) = client.query(qa).unwrap().into_value().unwrap();
    assert_eq!(
        (v, served),
        (Value::Int(12), ServedFrom::Fresh),
        "the flushed plan must re-evaluate against the new rows"
    );
    // ...while the untouched source's entry survives the flush.
    let (v, served) = client.query(qb).unwrap().into_value().unwrap();
    assert_eq!((v, served), (Value::Int(10), ServedFrom::SharedCache));

    // The refresh is observable in the invalidation generations.
    assert_eq!(server.plan_cache().generation("SrcA"), 1);
    assert_eq!(server.plan_cache().generation("SrcB"), 0);
    assert_eq!(server.result_cache().generation("SrcA"), 1);
    assert_eq!(server.result_cache().generation("SrcB"), 0);
    assert!(server.stats_json().contains("\"flush_requests\":1"));
}

#[test]
fn flush_of_a_value_binding_is_conservative_and_typos_are_errors() {
    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let (v, _) = client.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(50));
    let (_, served) = client.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(served, ServedFrom::SharedCache);

    // A binding is inlined at desugar time and cannot be traced in the
    // plan: the flush falls back to clearing everything resident.
    let (plans, results) = client.flush("DB").unwrap();
    assert_eq!((plans, results), (1, 1));
    let (_, served) = client.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(served, ServedFrom::Fresh, "conservative flush dropped the entry");

    // Unknown names are refused — flushing everything on a typo would
    // be an availability incident, not a refresh.
    let err = client.flush("NoSuchSource").unwrap_err();
    assert!(err.to_string().contains("no such source"), "{err}");
}
