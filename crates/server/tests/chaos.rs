//! Protocol torture tests: a fault-injecting TCP proxy
//! ([`kleisli_core::testutil::ChaosProxy`]) sits between a client and a
//! live `kleislid` server and misbehaves on the wire — truncated
//! frames, garbage opcodes, mid-query disconnects, stalled readers —
//! while a healthy tenant keeps querying. Every test ends by asserting
//! the server *settled*: the faulty connection (and only it) is gone,
//! no query worker still holds a gate ticket anywhere
//! (`active_queries == 0`), and the connection counters balance.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bio_data::{GdbConfig, GenBankConfig};
use kleisli::{bio_federation, BioFederation, Session};
use kleisli_core::testutil::{ChaosPlan, ChaosProxy, WireFault};
use kleisli_core::{LatencyModel, Value};
use kleisli_server::proto::{decode_response, encode_request, read_frame, write_frame};
use kleisli_server::{
    serve_ephemeral, Client, QueryReply, Request, Response, ServedFrom, ServerConfig,
    ServerHandle, MAX_FRAME_LEN,
};

/// A registrar binding a small instant local dataset.
fn local_registrar() -> Arc<kleisli_server::Registrar> {
    Arc::new(|session: &mut Session| {
        session.bind_value(
            "DB",
            Value::set(
                (0..50)
                    .map(|i| {
                        Value::record_from(vec![
                            ("k", Value::Int(i % 7)),
                            ("v", Value::Int(i)),
                        ])
                    })
                    .collect(),
            ),
        );
    })
}

/// A registrar binding a dataset whose every full scan serializes to a
/// multi-megabyte result frame — enough to overwhelm kernel socket
/// buffers and expose a reader that stopped reading.
fn big_registrar(rows: usize) -> Arc<kleisli_server::Registrar> {
    let pad = "x".repeat(200);
    let big = Value::set(
        (0..rows)
            .map(|i| {
                Value::record_from(vec![
                    ("i", Value::Int(i as i64)),
                    ("pad", Value::str(&pad)),
                ])
            })
            .collect(),
    );
    Arc::new(move |session: &mut Session| {
        session.bind_value("BIG", big.clone());
    })
}

/// A federation whose every driver request costs `latency_ms`.
fn slow_federation(latency_ms: u64) -> BioFederation {
    bio_federation(
        &GdbConfig {
            loci: 40,
            seed: 11,
            ..Default::default()
        },
        &GenBankConfig {
            extra_entries: 5,
            links_per_entry: 2,
            seq_len: 20,
            seed: 11,
        },
        LatencyModel::real(Duration::from_millis(latency_ms), Duration::ZERO),
        LatencyModel::real(Duration::from_millis(latency_ms), Duration::ZERO),
    )
    .expect("federation")
}

fn federation_registrar(fed: &BioFederation) -> Arc<kleisli_server::Registrar> {
    let gdb = fed.gdb.clone();
    let genbank = fed.genbank.clone();
    Arc::new(move |session: &mut Session| {
        session.register_driver(gdb.clone());
        session.register_driver(genbank.clone());
    })
}

/// Poll until the server reports exactly `open` live connections and
/// zero active queries — the "nothing leaked" invariant every fault
/// scenario must restore. Panics (with the stats document) if the
/// server has not settled within ten seconds.
fn settle(server: &ServerHandle, open: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.connections_open() == open && server.active_queries() == 0 {
            return;
        }
        if Instant::now() >= deadline {
            panic!(
                "server did not settle to {open} open connections / 0 active queries \
                 (open={}, active={}): {}",
                server.connections_open(),
                server.active_queries(),
                server.stats_json()
            );
        }
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn truncated_frame_sheds_only_the_faulty_connection() {
    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let proxy = ChaosProxy::new(server.addr()).unwrap();
    // Forward six bytes of the QUERY frame (the length prefix and a bit
    // of payload), then close: the server sees EOF mid-frame.
    proxy.set_plan(ChaosPlan {
        up: WireFault::TruncateAfter(6),
        down: WireFault::Pass,
    });

    let mut victim = Client::connect(proxy.addr()).unwrap();
    let _ = victim.send_query(r"count(DB)");

    // A healthy tenant, connected directly, is untouched by the fault.
    let mut healthy = Client::connect(server.addr()).unwrap();
    let (v, _) = healthy.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(50));

    settle(&server, 1); // only the healthy connection remains
    assert_eq!(server.connections_shed(), 0, "EOF is not accept-time shedding");
    drop(healthy);
    settle(&server, 0);
}

#[test]
fn garbage_opcode_is_reported_and_the_connection_survives() {
    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();

    // A correctly framed payload with a nonsense opcode: the stream
    // stays in sync, so the server reports and keeps serving.
    let mut payload = vec![0x7F];
    payload.extend_from_slice(&42u64.to_be_bytes());
    payload.extend_from_slice(b"junk");
    write_frame(&mut stream, &payload).unwrap();

    let reply = read_frame(&mut stream).unwrap().expect("an error frame");
    match decode_response(&reply).unwrap() {
        Response::Error { id, message } => {
            assert_eq!(id, 0, "no request id to blame: {message}");
            assert!(message.contains("malformed request"), "{message}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }

    // The same connection still answers a well-formed query.
    write_frame(
        &mut stream,
        &encode_request(&Request::Query {
            id: 7,
            src: r"count(DB)".to_string(),
        }),
    )
    .unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("a result frame");
    match decode_response(&reply).unwrap() {
        Response::Result { id, value, .. } => {
            assert_eq!(id, 7);
            assert_eq!(value, Value::Int(50));
        }
        other => panic!("expected a result, got {other:?}"),
    }

    drop(stream);
    settle(&server, 0);
}

#[test]
fn oversized_length_announcement_is_rejected_then_closed() {
    use std::io::Write;

    let server = serve_ephemeral(ServerConfig::default(), local_registrar()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();

    // Announce a frame one byte over the protocol bound. The stream
    // cannot be resynchronized, so the server reports once and closes
    // — this connection only.
    let announced = (MAX_FRAME_LEN as u32) + 1;
    stream.write_all(&announced.to_be_bytes()).unwrap();

    let reply = read_frame(&mut stream).unwrap().expect("an error frame");
    match decode_response(&reply).unwrap() {
        Response::Error { id, message } => {
            assert_eq!(id, 0);
            assert!(message.contains("protocol error"), "{message}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // ... then EOF (or a reset, depending on timing).
    assert!(
        matches!(read_frame(&mut stream), Ok(None) | Err(_)),
        "connection must close after an unsyncable frame"
    );

    // The server itself survives and serves new connections.
    let mut healthy = Client::connect(server.addr()).unwrap();
    let (v, _) = healthy.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(50));
    drop(healthy);
    settle(&server, 0);
}

#[test]
fn mid_query_disconnect_does_not_poison_the_shared_flight() {
    let fed = slow_federation(400);
    let server = serve_ephemeral(ServerConfig::default(), federation_registrar(&fed)).unwrap();
    let proxy = ChaosProxy::new(server.addr()).unwrap();
    // The connection dies ~100 ms in — mid-evaluation for a 400 ms
    // federation round-trip.
    proxy.set_plan(ChaosPlan {
        up: WireFault::CloseAfter(Duration::from_millis(100)),
        down: WireFault::Pass,
    });

    let src = r#"count({l | \l <- GDB-Tab("locus")})"#;
    let mut victim = Client::connect(proxy.addr()).unwrap();
    victim.send_query(src).unwrap();
    // The victim's reply never arrives; the read fails with the cut.
    victim.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert!(victim.read_response().is_err(), "the proxy cut this connection");

    // The aborted populate flight must not wedge the shared cache cell:
    // a retry computes the same plan to completion.
    settle(&server, 0);
    let mut retry = Client::connect(server.addr()).unwrap();
    let (v, served) = retry.query(src).unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(40));
    assert_eq!(served, ServedFrom::Fresh, "aborted flight cached nothing");
    drop(retry);
    settle(&server, 0);
}

#[test]
fn slow_loris_reader_is_condemned_without_blocking_other_tenants() {
    // Multi-megabyte results, a two-frame writer queue, and a short
    // write deadline: a tenant that stops reading is condemned fast,
    // either by queue overflow or by the blocked write timing out.
    let config = ServerConfig {
        writer_queue_frames: 2,
        write_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = serve_ephemeral(config, big_registrar(6000)).unwrap();
    let proxy = ChaosProxy::new(server.addr()).unwrap();
    // The proxy forwards the queries but never reads a single response
    // byte: backpressure fills the server's kernel buffers.
    proxy.set_plan(ChaosPlan {
        up: WireFault::Pass,
        down: WireFault::StallAfter(0),
    });

    let mut victim = Client::connect(proxy.addr()).unwrap();
    // Distinct plans, each a ~2 MiB result frame, pipelined without
    // reading anything back.
    for k in 0..6 {
        victim
            .send_query(&format!(r"{{[i = x.i, p = x.pad, tag = {k}] | \x <- BIG}}"))
            .unwrap();
    }

    // Meanwhile a healthy tenant keeps getting answers promptly.
    let mut healthy = Client::connect(server.addr()).unwrap();
    for _ in 0..5 {
        let (v, _) = healthy.query(r"count(BIG)").unwrap().into_value().unwrap();
        assert_eq!(v, Value::Int(6000));
        thread::sleep(Duration::from_millis(50));
    }

    // The stalled reader's connection is condemned and fully reaped —
    // workers joined, writer joined, no gate ticket leaked.
    settle(&server, 1);
    drop(healthy);
    settle(&server, 0);
}

#[test]
fn connection_cap_sheds_excess_with_a_busy_frame() {
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = serve_ephemeral(config, local_registrar()).unwrap();

    let mut first = Client::connect(server.addr()).unwrap();
    let mut second = Client::connect(server.addr()).unwrap();
    // Prove both are live (and their reader threads registered) before
    // the third arrives.
    first.query(r"count(DB)").unwrap().into_value().unwrap();
    second.query(r"count(DB)").unwrap().into_value().unwrap();

    let mut third = Client::connect(server.addr()).unwrap();
    match third.read_response().unwrap() {
        Response::Error { id, message } => {
            assert_eq!(id, 0);
            assert!(message.starts_with("busy:"), "{message}");
        }
        other => panic!("expected a busy frame, got {other:?}"),
    }
    assert!(server.connections_shed() >= 1, "the third connection was shed");

    // The tenants inside the cap are unaffected.
    let (v, _) = first.query(r"count(DB)").unwrap().into_value().unwrap();
    assert_eq!(v, Value::Int(50));
    drop((first, second, third));
    settle(&server, 0);
}

#[test]
fn drain_finishes_in_flight_work_and_rejects_new_queries() {
    let fed = slow_federation(500);
    let server = serve_ephemeral(ServerConfig::default(), federation_registrar(&fed)).unwrap();
    let addr = server.addr();
    let src = r#"count({l | \l <- GDB-Tab("locus")})"#;

    // Tenant A starts a slow query; tenant B connects before the drain
    // begins but only sends once the server is draining.
    let mut a = Client::connect(addr).unwrap();
    let a_id = a.send_query(src).unwrap();
    let a_thread = thread::spawn(move || a.wait_reply(a_id).unwrap());
    let b_thread = thread::spawn(move || {
        let mut b = Client::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(200));
        b.query(src).unwrap()
    });

    thread::sleep(Duration::from_millis(100));
    let report = server.shutdown();
    assert!(
        report.drained,
        "the in-flight query finished inside the deadline: {report:?}"
    );

    // A's query ran to completion and its terminal frame was flushed.
    match a_thread.join().unwrap() {
        QueryReply::Value { value, .. } => assert_eq!(value, Value::Int(40)),
        other => panic!("in-flight query must finish during drain, got {other:?}"),
    }
    // B's query, sent mid-drain, was rejected with the typed variant.
    match b_thread.join().unwrap() {
        QueryReply::ShuttingDown(message) => {
            assert!(message.starts_with("shutting-down:"), "{message}");
        }
        other => panic!("expected a drain rejection, got {other:?}"),
    }
}
