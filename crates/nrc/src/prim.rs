//! Primitive operations of NRC/CPL.
//!
//! Comprehensions alone cannot express aggregates or ordering — the paper
//! notes these come from the more general *structural recursion* paradigm
//! [Breazu-Tannen, Buneman, Naqvi 91]. Kleisli surfaces them as primitives;
//! the aggregate group here (`Sum`, `Count`, ...) are exactly the
//! structural-recursion folds the paper mentions.

use std::fmt;

/// A primitive operation, with fixed arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    // arithmetic (int and float, dynamically dispatched)
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    // comparison (total order over all values)
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // boolean
    And,
    Or,
    Not,
    // strings
    StrCat,
    StrLen,
    StrUpper,
    StrLower,
    StrContains,
    StrStartsWith,
    Substr,
    ToString,
    // collections
    IsEmpty,
    Member,
    Flatten,
    Distinct,
    SetOf,
    BagOf,
    ListOf,
    Append,
    Nth,
    Range,
    // aggregates (structural recursion folds)
    Count,
    Sum,
    Max,
    Min,
    Avg,
    // object identity
    Deref,
    // record introspection (pattern-match support; not surface syntax)
    HasField,
    RecordWidth,
    /// Abort evaluation with a message (compiled from inexhaustive
    /// pattern alternatives).
    Fail,
}

impl Prim {
    /// Number of arguments the primitive takes.
    pub fn arity(self) -> usize {
        use Prim::*;
        match self {
            Neg | Not | StrLen | StrUpper | StrLower | ToString | IsEmpty | Flatten
            | Distinct | SetOf | BagOf | ListOf | Count | Sum | Max | Min | Avg | Deref
            | RecordWidth | Fail => 1,
            Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or | StrCat
            | StrContains | StrStartsWith | Member | Append | Nth | Range | HasField => 2,
            Substr => 3,
        }
    }

    /// The CPL surface name (used by the parser and pretty printer).
    pub fn cpl_name(self) -> &'static str {
        use Prim::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "mod",
            Neg => "neg",
            Eq => "=",
            Ne => "<>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            And => "and",
            Or => "or",
            Not => "not",
            StrCat => "^",
            StrLen => "strlen",
            StrUpper => "strupper",
            StrLower => "strlower",
            StrContains => "strcontains",
            StrStartsWith => "strstartswith",
            Substr => "substr",
            ToString => "tostring",
            IsEmpty => "isempty",
            Member => "member",
            Flatten => "flatten",
            Distinct => "distinct",
            SetOf => "setof",
            BagOf => "bagof",
            ListOf => "listof",
            Append => "append",
            Nth => "nth",
            Range => "range",
            Count => "count",
            Sum => "sum",
            Max => "max",
            Min => "min",
            Avg => "avg",
            Deref => "deref",
            HasField => "hasfield",
            RecordWidth => "recordwidth",
            Fail => "fail",
        }
    }

    /// Named (identifier-like) primitives callable as functions in CPL,
    /// i.e. everything that is not an infix operator.
    pub fn by_name(name: &str) -> Option<Prim> {
        use Prim::*;
        Some(match name {
            "strlen" => StrLen,
            "strupper" => StrUpper,
            "strlower" => StrLower,
            "strcontains" => StrContains,
            "strstartswith" => StrStartsWith,
            "substr" => Substr,
            "tostring" => ToString,
            "isempty" => IsEmpty,
            "member" => Member,
            "flatten" => Flatten,
            "distinct" => Distinct,
            "setof" => SetOf,
            "bagof" => BagOf,
            "listof" => ListOf,
            "append" => Append,
            "nth" => Nth,
            "range" => Range,
            "count" => Count,
            "sum" => Sum,
            "max" => Max,
            "min" => Min,
            "avg" => Avg,
            "deref" => Deref,
            "not" => Not,
            "neg" => Neg,
            _ => return None,
        })
    }

    /// Is this primitive free of effects and cheap? (All are, but `Deref`
    /// consults the object store, which pushdown must not assume.)
    pub fn is_pure_local(self) -> bool {
        !matches!(self, Prim::Deref | Prim::Fail)
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cpl_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_is_consistent_with_name_lookup() {
        for p in [
            Prim::Count,
            Prim::Sum,
            Prim::Member,
            Prim::Substr,
            Prim::Range,
        ] {
            if let Some(q) = Prim::by_name(p.cpl_name()) {
                assert_eq!(p, q);
                assert_eq!(p.arity(), q.arity());
            }
        }
        assert_eq!(Prim::Substr.arity(), 3);
        assert_eq!(Prim::Not.arity(), 1);
        assert!(Prim::by_name("no-such-prim").is_none());
    }
}
