//! Pretty printer for NRC expressions, in the paper's notation:
//! `U{ e1 | \x <- e2 }` for extension, `{e}` for singletons, and explicit
//! markers for the physical operators so that `explain` output reads well.

use std::fmt;

use kleisli_core::CollKind;

use crate::expr::{Expr, JoinStrategy};

fn union_symbol(kind: CollKind) -> &'static str {
    match kind {
        CollKind::Set => "U",
        CollKind::Bag => "U+",
        CollKind::List => "U++",
    }
}

/// Write `e` at the given indentation depth (used by `Display`).
pub fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr, depth: usize) -> fmt::Result {
    if depth > 64 {
        return write!(f, "...");
    }
    match e {
        Expr::Const(v) => write!(f, "{v}"),
        Expr::Var(n) => write!(f, "{n}"),
        Expr::Let { var, def, body } => {
            write!(f, "let {var} = ")?;
            write_expr(f, def, depth + 1)?;
            write!(f, " in ")?;
            write_expr(f, body, depth + 1)
        }
        Expr::Lambda { var, body } => {
            write!(f, "(\\{var} => ")?;
            write_expr(f, body, depth + 1)?;
            write!(f, ")")
        }
        Expr::Apply(a, b) => {
            write_expr(f, a, depth + 1)?;
            write!(f, "(")?;
            write_expr(f, b, depth + 1)?;
            write!(f, ")")
        }
        Expr::Record(fields) => {
            write!(f, "[")?;
            for (i, (n, fe)) in fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n} = ")?;
                write_expr(f, fe, depth + 1)?;
            }
            write!(f, "]")
        }
        Expr::Proj(inner, field) => {
            write_expr(f, inner, depth + 1)?;
            write!(f, ".{field}")
        }
        Expr::Inject(tag, inner) => {
            write!(f, "<{tag} = ")?;
            write_expr(f, inner, depth + 1)?;
            write!(f, ">")
        }
        Expr::Case {
            scrutinee,
            arms,
            default,
        } => {
            write!(f, "case ")?;
            write_expr(f, scrutinee, depth + 1)?;
            write!(f, " of ")?;
            for (i, arm) in arms.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "<{} = \\{}> => ", arm.tag, arm.var)?;
                write_expr(f, &arm.body, depth + 1)?;
            }
            if let Some(d) = default {
                write!(f, " | _ => ")?;
                write_expr(f, d, depth + 1)?;
            }
            write!(f, " end")
        }
        Expr::Empty(kind) => {
            let (open, close) = kind.brackets();
            write!(f, "{open}{close}")
        }
        Expr::Single(kind, inner) => {
            let (open, close) = kind.brackets();
            write!(f, "{open}")?;
            write_expr(f, inner, depth + 1)?;
            write!(f, "{close}")
        }
        Expr::Union(kind, a, b) => {
            write!(f, "(")?;
            write_expr(f, a, depth + 1)?;
            write!(f, " {} ", union_symbol(*kind))?;
            write_expr(f, b, depth + 1)?;
            write!(f, ")")
        }
        Expr::Ext {
            kind,
            var,
            body,
            source,
        } => {
            write!(f, "{}{{ ", union_symbol(*kind))?;
            write_expr(f, body, depth + 1)?;
            write!(f, " | \\{var} <- ")?;
            write_expr(f, source, depth + 1)?;
            write!(f, " }}")
        }
        Expr::If(c, t, e2) => {
            write!(f, "if ")?;
            write_expr(f, c, depth + 1)?;
            write!(f, " then ")?;
            write_expr(f, t, depth + 1)?;
            write!(f, " else ")?;
            write_expr(f, e2, depth + 1)
        }
        Expr::Prim(p, args) => {
            if p.arity() == 2 && !p.cpl_name().chars().next().unwrap().is_alphabetic() {
                write!(f, "(")?;
                write_expr(f, &args[0], depth + 1)?;
                write!(f, " {p} ")?;
                write_expr(f, &args[1], depth + 1)?;
                write!(f, ")")
            } else {
                write!(f, "{p}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_expr(f, a, depth + 1)?;
                }
                write!(f, ")")
            }
        }
        Expr::RemoteApp { driver, arg } => {
            write!(f, "REMOTE-APP[{driver}](")?;
            write_expr(f, arg, depth + 1)?;
            write!(f, ")")
        }
        Expr::Remote { driver, request } => {
            write!(f, "REMOTE[{driver}: {}]", request.describe())
        }
        Expr::Join {
            strategy,
            left,
            right,
            lvar,
            rvar,
            cond,
            body,
            ..
        } => {
            let tag = match strategy {
                JoinStrategy::BlockedNl { block_size } => format!("BLOCKED-NL-JOIN[b={block_size}]"),
                JoinStrategy::IndexedNl => "INDEXED-NL-JOIN".to_string(),
            };
            write!(f, "{tag}(\\{lvar} <- ")?;
            write_expr(f, left, depth + 1)?;
            write!(f, ", \\{rvar} <- ")?;
            write_expr(f, right, depth + 1)?;
            write!(f, " on ")?;
            write_expr(f, cond, depth + 1)?;
            write!(f, " yield ")?;
            write_expr(f, body, depth + 1)?;
            write!(f, ")")
        }
        Expr::Cached { id, expr } => {
            write!(f, "CACHED[{id}](")?;
            write_expr(f, expr, depth + 1)?;
            write!(f, ")")
        }
        Expr::ParExt {
            kind,
            var,
            body,
            source,
            max_in_flight,
            batch,
        } => {
            write!(f, "PAR[{max_in_flight}]")?;
            if let Some(b) = batch {
                write!(f, "BATCH[{}≥{},≤{}]", b.driver, b.min_keys, b.max_keys)?;
            }
            write!(f, "{}{{ ", union_symbol(*kind))?;
            write_expr(f, body, depth + 1)?;
            write!(f, " | \\{var} <- ")?;
            write_expr(f, source, depth + 1)?;
            write!(f, " }}")
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::Expr;
    use crate::prim::Prim;
    use kleisli_core::CollKind;

    #[test]
    fn ext_prints_paper_notation() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::proj(Expr::var("x"), "title")),
            Expr::var("DB"),
        );
        assert_eq!(e.to_string(), "U{ {x.title} | \\x <- DB }");
    }

    #[test]
    fn infix_prims_print_infix() {
        let e = Expr::eq(Expr::int(1), Expr::int(2));
        assert_eq!(e.to_string(), "(1 = 2)");
        let e = Expr::prim(Prim::Count, vec![Expr::var("xs")]);
        assert_eq!(e.to_string(), "count(xs)");
    }

    #[test]
    fn bag_and_list_markers_differ() {
        let b = Expr::ext(CollKind::Bag, "x", Expr::var("x"), Expr::var("B"));
        assert!(b.to_string().starts_with("U+{"));
        let l = Expr::ext(CollKind::List, "x", Expr::var("x"), Expr::var("L"));
        assert!(l.to_string().starts_with("U++{"));
    }
}
