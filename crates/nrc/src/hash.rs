//! Structural hashing and hash-consing for NRC plans.
//!
//! Two facilities, both built on the same per-node digest:
//!
//! * [`plan_hash`] — a deterministic 64-bit hash of a subplan's
//!   *structure* (constructors, names, constants, child hashes). The hash
//!   is a pure function of the tree shape: it never involves pointer
//!   values, so two pointer-distinct but structurally identical plans —
//!   for example, the same CPL source compiled twice — hash identically.
//!   The cache rule derives [`Expr::Cached`] ids from this hash, which is
//!   what makes `Context` cache slots stable across recompiles.
//! * [`Interner`] — a hash-consing table: [`Interner::intern`] rebuilds a
//!   plan bottom-up so that every structurally identical subtree is
//!   represented by **one** `Arc<Expr>`. Interning only changes the
//!   sharing, never the structure, so evaluation results are unaffected
//!   (property-tested in `crates/opt/tests/semantics.rs`); what it buys is
//!   that pointer-identity-keyed machinery downstream — the memoized
//!   rewrite engine, `Arc::ptr_eq` fixpoint checks, `Env::lookup`'s
//!   fast path — sees repeated subplans as *one* subplan.
//!
//! Shared subtrees are hashed once per [`plan_hash`] call (the traversal
//! memoizes on `Arc` identity), so hashing a heavily shared DAG costs the
//! DAG's node count, not the tree size of its unfolding.
//!
//! # Collisions
//!
//! Equal hashes are verified structurally before the interner unifies two
//! nodes, so interning is collision-safe. `Cached` ids use the raw 64-bit
//! hash without a verification step: two *different* subqueries colliding
//! would share a cache slot. The ids only ever compare against other ids
//! from the same hash function, so the risk is the generic birthday bound
//! (~2⁻⁶⁴ per pair) — the same order of risk as any content-addressed
//! store — and is accepted.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::expr::Expr;

/// FNV-1a with the standard 64-bit offset basis and prime. Implemented
/// here (rather than relying on `DefaultHasher`) so the digest is stable
/// across processes and toolchain versions — cache ids derived from it
/// must not change between runs.
#[derive(Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Stable constructor tags. `std::mem::discriminant` is hashable but its
/// layout is unspecified, so each variant gets an explicit code instead.
fn tag(e: &Expr) -> u8 {
    match e {
        Expr::Const(_) => 0,
        Expr::Var(_) => 1,
        Expr::Let { .. } => 2,
        Expr::Lambda { .. } => 3,
        Expr::Apply(..) => 4,
        Expr::Record(_) => 5,
        Expr::Proj(..) => 6,
        Expr::Inject(..) => 7,
        Expr::Case { .. } => 8,
        Expr::Empty(_) => 9,
        Expr::Single(..) => 10,
        Expr::Union(..) => 11,
        Expr::Ext { .. } => 12,
        Expr::If(..) => 13,
        Expr::Prim(..) => 14,
        Expr::RemoteApp { .. } => 15,
        Expr::Remote { .. } => 16,
        Expr::Join { .. } => 17,
        Expr::Cached { .. } => 18,
        Expr::ParExt { .. } => 19,
    }
}

/// Hash one node given a function producing the hashes of its children:
/// constructor tag, every non-child field (names, kinds, constants,
/// strategies, key-presence flags), then the child hashes in
/// `for_each_child` order.
fn shallow_hash(e: &Expr, child_hash: &mut dyn FnMut(&Arc<Expr>) -> u64) -> u64 {
    let mut h = FnvHasher::default();
    tag(e).hash(&mut h);
    match e {
        Expr::Const(v) => v.hash(&mut h),
        Expr::Var(n) => n.hash(&mut h),
        Expr::Let { var, .. } | Expr::Lambda { var, .. } => var.hash(&mut h),
        Expr::Apply(..) | Expr::If(..) => {}
        Expr::Union(k, ..) => k.hash(&mut h),
        Expr::Record(fields) => {
            fields.len().hash(&mut h);
            for (n, _) in fields {
                n.hash(&mut h);
            }
        }
        Expr::Proj(_, n) | Expr::Inject(n, _) => n.hash(&mut h),
        Expr::Case { arms, default, .. } => {
            arms.len().hash(&mut h);
            for arm in arms {
                arm.tag.hash(&mut h);
                arm.var.hash(&mut h);
            }
            default.is_some().hash(&mut h);
        }
        Expr::Empty(k) | Expr::Single(k, _) => k.hash(&mut h),
        Expr::Ext { kind, var, .. } => {
            kind.hash(&mut h);
            var.hash(&mut h);
        }
        Expr::Prim(p, args) => {
            p.hash(&mut h);
            args.len().hash(&mut h);
        }
        Expr::RemoteApp { driver, .. } => driver.hash(&mut h),
        Expr::Remote { driver, request } => {
            driver.hash(&mut h);
            request.hash(&mut h);
        }
        Expr::Join {
            kind,
            strategy,
            lvar,
            rvar,
            left_key,
            right_key,
            ..
        } => {
            kind.hash(&mut h);
            strategy.hash(&mut h);
            lvar.hash(&mut h);
            rvar.hash(&mut h);
            // Presence flags disambiguate the variable-length child list:
            // without them, a key migrating between the left and right
            // slot could produce the same child sequence.
            left_key.is_some().hash(&mut h);
            right_key.is_some().hash(&mut h);
        }
        Expr::Cached { id, .. } => id.hash(&mut h),
        Expr::ParExt {
            kind,
            var,
            max_in_flight,
            batch,
            ..
        } => {
            kind.hash(&mut h);
            var.hash(&mut h);
            max_in_flight.hash(&mut h);
            // The batching mark changes execution strategy, so marked
            // and unmarked plans must not collide in the plan cache.
            // The request argument is derived from the body (already
            // hashed as a child); the scalar fields identify the mark.
            if let Some(b) = batch {
                b.driver.hash(&mut h);
                b.min_keys.hash(&mut h);
                b.max_keys.hash(&mut h);
            } else {
                false.hash(&mut h);
            }
        }
    }
    e.for_each_child(&mut |c| child_hash(c).hash(&mut h));
    h.finish()
}

/// The deterministic 64-bit structural hash of a plan. Pointer-blind:
/// structurally identical plans hash equal no matter how they were built
/// or shared. Shared subtrees are hashed once per call.
pub fn plan_hash(e: &Expr) -> u64 {
    fn go(e: &Expr, memo: &mut HashMap<usize, u64>) -> u64 {
        shallow_hash(e, &mut |c: &Arc<Expr>| {
            let key = Arc::as_ptr(c) as usize;
            if let Some(hit) = memo.get(&key) {
                return *hit;
            }
            let h = go(c, memo);
            memo.insert(key, h);
            h
        })
    }
    go(e, &mut HashMap::new())
}

/// A hash-consing table for plans.
///
/// [`Interner::intern`] maps a plan to a canonical representative in which
/// every structurally identical subtree is one shared `Arc`. The interner
/// holds a strong reference to each canonical node, which is also what
/// makes its internal pointer-keyed hash cache sound: a keyed node can
/// never be deallocated (and its address reused) while the entry exists.
///
/// The table is append-only for the lifetime of the interner (typically a
/// [`kleisli` `Session`]); [`Interner::clear`] drops everything.
#[derive(Default)]
pub struct Interner {
    /// hash → canonical nodes with that hash (almost always exactly one).
    buckets: HashMap<u64, Vec<Arc<Expr>>>,
    /// canonical node address → its structural hash.
    hashes: HashMap<usize, u64>,
    /// canonical nodes interned (for stats; bucket entries total).
    nodes: usize,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct canonical nodes in the table.
    pub fn len(&self) -> usize {
        self.nodes
    }

    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Drop every canonical node (e.g. alongside a plan-cache clear).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.hashes.clear();
        self.nodes = 0;
    }

    /// The canonical representative of `e`: structurally identical to the
    /// input, with every repeated subtree (within this plan *and* across
    /// every previously interned plan) collapsed to one shared `Arc`.
    /// Returns the input handle itself when it is already canonical.
    pub fn intern(&mut self, e: &Arc<Expr>) -> Arc<Expr> {
        // Per-call memo over the *input* plan's nodes; keys stay valid
        // because the caller's `e` keeps the whole input alive.
        let mut memo: HashMap<usize, Arc<Expr>> = HashMap::new();
        self.go(e, &mut memo)
    }

    fn go(&mut self, e: &Arc<Expr>, memo: &mut HashMap<usize, Arc<Expr>>) -> Arc<Expr> {
        let key = Arc::as_ptr(e) as usize;
        if let Some(hit) = memo.get(&key) {
            return Arc::clone(hit);
        }
        if self.hashes.contains_key(&key) {
            // Already canonical (interned earlier, possibly via another
            // plan sharing this subtree).
            memo.insert(key, Arc::clone(e));
            return Arc::clone(e);
        }
        // Canonicalize children first; sharing-preserving, so a node whose
        // children were already canonical comes back pointer-equal.
        let node = Expr::map_children_shared(e, &mut |c| self.go(c, memo));
        let h = shallow_hash(&node, &mut |c| {
            *self
                .hashes
                .get(&(Arc::as_ptr(c) as usize))
                .expect("children are canonical before their parent")
        });
        let bucket = self.buckets.entry(h).or_default();
        for cand in bucket.iter() {
            // Children of both sides are canonical, so deep equality here
            // only runs on a genuine hash collision or an actual match.
            if **cand == *node {
                let cand = Arc::clone(cand);
                memo.insert(key, Arc::clone(&cand));
                return cand;
            }
        }
        bucket.push(Arc::clone(&node));
        self.hashes.insert(Arc::as_ptr(&node) as usize, h);
        self.nodes += 1;
        memo.insert(key, Arc::clone(&node));
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kleisli_core::{CollKind, DriverRequest};

    fn remote() -> Expr {
        Expr::Remote {
            driver: crate::name("GDB"),
            request: DriverRequest::TableScan {
                table: "locus".into(),
                columns: None,
            },
        }
    }

    fn sample() -> Expr {
        Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::prim(crate::Prim::Add, vec![Expr::var("x"), Expr::int(1)]),
            ),
            remote(),
        )
    }

    #[test]
    fn hash_is_structural_not_pointer() {
        // Two independently built (pointer-distinct) copies hash equal.
        assert_eq!(plan_hash(&sample()), plan_hash(&sample()));
        // Deep-cloning (un-sharing) does not change the hash either.
        let e = sample();
        assert_eq!(plan_hash(&e), plan_hash(&e.deep_clone()));
    }

    #[test]
    fn hash_distinguishes_structure() {
        let a = plan_hash(&sample());
        let b = plan_hash(&Expr::ext(
            CollKind::Bag, // different kind only
            "x",
            Expr::single(
                CollKind::Set,
                Expr::prim(crate::Prim::Add, vec![Expr::var("x"), Expr::int(1)]),
            ),
            remote(),
        ));
        assert_ne!(a, b);
        assert_ne!(plan_hash(&Expr::int(1)), plan_hash(&Expr::int(2)));
        assert_ne!(plan_hash(&Expr::var("x")), plan_hash(&Expr::var("y")));
    }

    #[test]
    fn join_key_slots_hash_distinctly() {
        let base = |lk: Option<Expr>, rk: Option<Expr>| Expr::Join {
            kind: CollKind::Set,
            strategy: crate::JoinStrategy::IndexedNl,
            left: Arc::new(Expr::var("L")),
            right: Arc::new(Expr::var("R")),
            lvar: crate::name("l"),
            rvar: crate::name("r"),
            left_key: lk.map(Arc::new),
            right_key: rk.map(Arc::new),
            cond: Arc::new(Expr::bool(true)),
            body: Arc::new(Expr::single(CollKind::Set, Expr::var("l"))),
        };
        let only_left = base(Some(Expr::var("k")), None);
        let only_right = base(None, Some(Expr::var("k")));
        assert_ne!(plan_hash(&only_left), plan_hash(&only_right));
    }

    #[test]
    fn interning_collapses_identical_subtrees() {
        // union(S, S') with S and S' structurally equal but pointer-distinct.
        let e = Arc::new(Expr::union(CollKind::Set, sample(), sample()));
        let mut interner = Interner::new();
        let canon = interner.intern(&e);
        let Expr::Union(_, a, b) = &*canon else {
            panic!("shape changed by interning");
        };
        assert!(Arc::ptr_eq(a, b), "identical subtrees must share one Arc");
        assert_eq!(*canon, *e, "interning must not change structure");
    }

    #[test]
    fn interning_is_stable_across_plans() {
        let mut interner = Interner::new();
        let a = interner.intern(&Arc::new(sample()));
        let before = interner.len();
        let b = interner.intern(&Arc::new(sample()));
        assert!(Arc::ptr_eq(&a, &b), "same plan interns to the same node");
        assert_eq!(interner.len(), before, "no new nodes on re-intern");
        // An already-canonical plan comes back pointer-equal.
        let c = interner.intern(&a);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn interning_preserves_hash() {
        let e = Arc::new(Expr::union(CollKind::Set, sample(), sample()));
        let mut interner = Interner::new();
        let canon = interner.intern(&e);
        assert_eq!(plan_hash(&e), plan_hash(&canon));
    }

    #[test]
    fn clear_resets_the_table() {
        let mut interner = Interner::new();
        interner.intern(&Arc::new(sample()));
        assert!(!interner.is_empty());
        interner.clear();
        assert!(interner.is_empty());
    }
}
