//! # nrc — the Nested Relational Calculus
//!
//! The intermediate language of the Kleisli reproduction. CPL queries are
//! desugared into NRC (see the `cpl` crate), the optimizer rewrites NRC
//! terms (see `kleisli-opt`), and the executors interpret them (see
//! `kleisli-exec`).
//!
//! * [`expr`] — the term language, including the physical operators
//!   introduced by optimization, plus substitution and traversals.
//! * [`hash`] — deterministic structural hashing ([`plan_hash`]) and the
//!   hash-consing [`Interner`] that collapses identical subplans onto one
//!   shared `Arc`.
//! * [`prim`] — primitive functions (arithmetic, strings, aggregates).
//! * [`typing`] — gradual static typing over the CPL type system.
//! * [`pretty`] — the `U{ e | \x <- e' }` notation used in explain output.

pub mod expr;
pub mod hash;
pub mod pretty;
pub mod prim;
pub mod typing;

pub use expr::{fresh, name, BatchSpec, CaseArm, Expr, JoinStrategy, Name};
pub use hash::{plan_hash, Interner};
pub use prim::Prim;
pub use typing::{infer, TypeEnv};
