//! The abstract syntax of NRC, the monad algebra CPL is translated into
//! (Section 4 of the paper: "Once submitted to Kleisli, a CPL query is
//! translated into an abstract syntax language in the monad algebra NRC to
//! which the rewrite rules can be applied").
//!
//! The central construct is [`Expr::Ext`], written `U{ e1 | \x <- e2 }` in
//! the paper: the big-union of `e1[o/x]` for each element `o` of the
//! collection `e2`. Comprehensions desugar into `Ext`, `Single`, `Empty`,
//! and `If` via Wadler's identities (implemented in the `cpl` crate).
//!
//! Besides the logical constructs, the enum carries the *physical* nodes
//! introduced by the non-monadic optimizations: [`Expr::Remote`] (a request
//! shipped to a driver), [`Expr::Join`] (blocked / indexed nested-loop
//! joins), [`Expr::Cached`] (memoized subquery), and [`Expr::ParExt`]
//! (bounded-concurrency retrieval).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kleisli_core::{CollKind, DriverRequest, Value};

use crate::prim::Prim;

/// Variable and field names.
pub type Name = Arc<str>;

/// Create a `Name` from a `&str`.
pub fn name(s: impl AsRef<str>) -> Name {
    Arc::from(s.as_ref())
}

/// A fresh variable name, unique within the process.
pub fn fresh(prefix: &str) -> Name {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    Arc::from(format!("{prefix}%{n}"))
}

/// Strategy chosen for a local join by the join rule set.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinStrategy {
    /// Blocked nested-loop join [Kim 80]: the inner collection is scanned
    /// once per block of outer elements.
    BlockedNl { block_size: usize },
    /// Indexed blocked nested-loop join (a variation of the hashed-loop
    /// join of [Nakayama et al. 88]): an index is built on the fly over the
    /// inner collection, keyed by `right_key`; outer elements probe it with
    /// `left_key`.
    IndexedNl,
}

/// One arm of a `Case` expression: tag, bound variable, arm body.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    pub tag: Name,
    pub var: Name,
    pub body: Expr,
}

/// An NRC expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    Var(Name),
    Let {
        var: Name,
        def: Box<Expr>,
        body: Box<Expr>,
    },
    Lambda {
        var: Name,
        body: Box<Expr>,
    },
    Apply(Box<Expr>, Box<Expr>),
    /// Record construction `[l1 = e1, ..., ln = en]`.
    Record(Vec<(Name, Expr)>),
    /// Field projection `e.l`.
    Proj(Box<Expr>, Name),
    /// Variant construction `<tag = e>`.
    Inject(Name, Box<Expr>),
    /// Variant elimination. `default` (if present) binds nothing and
    /// handles unlisted tags; without it an unlisted tag is a runtime error.
    Case {
        scrutinee: Box<Expr>,
        arms: Vec<CaseArm>,
        default: Option<Box<Expr>>,
    },
    /// The empty collection of the given kind.
    Empty(CollKind),
    /// The singleton collection `{e}` / `{|e|}` / `[|e|]`.
    Single(CollKind, Box<Expr>),
    /// Collection union: set union, bag additive union, list append.
    Union(CollKind, Box<Expr>, Box<Expr>),
    /// The monad extension `U{ body | \var <- source }`.
    Ext {
        kind: CollKind,
        var: Name,
        body: Box<Expr>,
        source: Box<Expr>,
    },
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Primitive application.
    Prim(Prim, Vec<Expr>),

    /// A driver call whose request is computed at run time, e.g.
    /// `NA-Links(uid)` where `uid` is bound by an enclosing comprehension.
    /// When the argument is constant the optimizer lowers this to
    /// [`Expr::Remote`] so that pushdown rules can inspect the request.
    RemoteApp { driver: Name, arg: Box<Expr> },

    // ---- physical nodes (introduced by the optimizer) ----
    /// A request shipped to a registered driver; evaluates to the set of
    /// values the driver streams back.
    Remote {
        driver: Name,
        request: DriverRequest,
    },
    /// A local join with an explicit strategy. Semantically equal to
    /// `U{ U{ if cond then body else empty | \rvar <- right } | \lvar <- left }`,
    /// where for `IndexedNl` the condition additionally includes
    /// `left_key(lvar) == right_key(rvar)`.
    Join {
        kind: CollKind,
        strategy: JoinStrategy,
        left: Box<Expr>,
        right: Box<Expr>,
        lvar: Name,
        rvar: Name,
        /// Equi-join keys (over `lvar` / `rvar`), used by `IndexedNl`;
        /// `BlockedNl` folds them into `cond`.
        left_key: Option<Box<Expr>>,
        right_key: Option<Box<Expr>>,
        /// Residual join predicate (may be `Const(true)`).
        cond: Box<Expr>,
        /// Collection-valued output expression for each matching pair.
        body: Box<Expr>,
    },
    /// Memoize the result of an outer-independent subquery (the paper's
    /// disk cache for inner relations; in-memory here).
    Cached { id: u64, expr: Box<Expr> },
    /// `Ext` whose body issues remote requests: evaluate bodies for up to
    /// `max_in_flight` source elements concurrently and take the union of
    /// the results.
    ParExt {
        kind: CollKind,
        var: Name,
        body: Box<Expr>,
        source: Box<Expr>,
        max_in_flight: usize,
    },
}

impl Expr {
    pub fn var(n: impl AsRef<str>) -> Expr {
        Expr::Var(name(n))
    }

    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    pub fn str(s: impl AsRef<str>) -> Expr {
        Expr::Const(Value::str(s))
    }

    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    pub fn proj(e: Expr, field: impl AsRef<str>) -> Expr {
        Expr::Proj(Box::new(e), name(field))
    }

    pub fn ext(kind: CollKind, var: impl AsRef<str>, body: Expr, source: Expr) -> Expr {
        Expr::Ext {
            kind,
            var: name(var),
            body: Box::new(body),
            source: Box::new(source),
        }
    }

    pub fn single(kind: CollKind, e: Expr) -> Expr {
        Expr::Single(kind, Box::new(e))
    }

    pub fn union(kind: CollKind, a: Expr, b: Expr) -> Expr {
        Expr::Union(kind, Box::new(a), Box::new(b))
    }

    pub fn record<I, S>(fields: I) -> Expr
    where
        I: IntoIterator<Item = (S, Expr)>,
        S: AsRef<str>,
    {
        Expr::Record(
            fields
                .into_iter()
                .map(|(n, e)| (name(n), e))
                .collect(),
        )
    }

    pub fn if_(c: Expr, t: Expr, f: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(f))
    }

    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Prim(Prim::Eq, vec![a, b])
    }

    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::Prim(Prim::And, vec![a, b])
    }

    pub fn apply(f: Expr, a: Expr) -> Expr {
        Expr::Apply(Box::new(f), Box::new(a))
    }

    pub fn lambda(var: impl AsRef<str>, body: Expr) -> Expr {
        Expr::Lambda {
            var: name(var),
            body: Box::new(body),
        }
    }

    pub fn let_(var: impl AsRef<str>, def: Expr, body: Expr) -> Expr {
        Expr::Let {
            var: name(var),
            def: Box::new(def),
            body: Box::new(body),
        }
    }

    /// Number of AST nodes; used to bound rewriting and report in explain.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Visit every node (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Empty(_) | Expr::Remote { .. } => {}
            Expr::Let { def, body, .. } => {
                def.visit(f);
                body.visit(f);
            }
            Expr::Lambda { body, .. } => body.visit(f),
            Expr::Apply(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Record(fields) => {
                for (_, e) in fields {
                    e.visit(f);
                }
            }
            Expr::Proj(e, _) | Expr::Inject(_, e) | Expr::Single(_, e) => e.visit(f),
            Expr::RemoteApp { arg, .. } => arg.visit(f),
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => {
                scrutinee.visit(f);
                for arm in arms {
                    arm.body.visit(f);
                }
                if let Some(d) = default {
                    d.visit(f);
                }
            }
            Expr::Union(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Ext { body, source, .. } | Expr::ParExt { body, source, .. } => {
                body.visit(f);
                source.visit(f);
            }
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Prim(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Join {
                left,
                right,
                left_key,
                right_key,
                cond,
                body,
                ..
            } => {
                left.visit(f);
                right.visit(f);
                if let Some(k) = left_key {
                    k.visit(f);
                }
                if let Some(k) = right_key {
                    k.visit(f);
                }
                cond.visit(f);
                body.visit(f);
            }
            Expr::Cached { expr, .. } => expr.visit(f),
        }
    }

    /// Rebuild this node with children transformed by `f` (shallow map).
    pub fn map_children(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        match self {
            e @ (Expr::Const(_) | Expr::Var(_) | Expr::Empty(_) | Expr::Remote { .. }) => e,
            Expr::Let { var, def, body } => Expr::Let {
                var,
                def: Box::new(f(*def)),
                body: Box::new(f(*body)),
            },
            Expr::Lambda { var, body } => Expr::Lambda {
                var,
                body: Box::new(f(*body)),
            },
            Expr::Apply(a, b) => Expr::Apply(Box::new(f(*a)), Box::new(f(*b))),
            Expr::Record(fields) => {
                Expr::Record(fields.into_iter().map(|(n, e)| (n, f(e))).collect())
            }
            Expr::Proj(e, n) => Expr::Proj(Box::new(f(*e)), n),
            Expr::RemoteApp { driver, arg } => Expr::RemoteApp {
                driver,
                arg: Box::new(f(*arg)),
            },
            Expr::Inject(n, e) => Expr::Inject(n, Box::new(f(*e))),
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => Expr::Case {
                scrutinee: Box::new(f(*scrutinee)),
                arms: arms
                    .into_iter()
                    .map(|arm| CaseArm {
                        tag: arm.tag,
                        var: arm.var,
                        body: f(arm.body),
                    })
                    .collect(),
                default: default.map(|d| Box::new(f(*d))),
            },
            Expr::Single(k, e) => Expr::Single(k, Box::new(f(*e))),
            Expr::Union(k, a, b) => Expr::Union(k, Box::new(f(*a)), Box::new(f(*b))),
            Expr::Ext {
                kind,
                var,
                body,
                source,
            } => Expr::Ext {
                kind,
                var,
                body: Box::new(f(*body)),
                source: Box::new(f(*source)),
            },
            Expr::If(c, t, e) => Expr::If(Box::new(f(*c)), Box::new(f(*t)), Box::new(f(*e))),
            Expr::Prim(p, args) => Expr::Prim(p, args.into_iter().map(f).collect()),
            Expr::Join {
                kind,
                strategy,
                left,
                right,
                lvar,
                rvar,
                left_key,
                right_key,
                cond,
                body,
            } => Expr::Join {
                kind,
                strategy,
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                lvar,
                rvar,
                left_key: left_key.map(|k| Box::new(f(*k))),
                right_key: right_key.map(|k| Box::new(f(*k))),
                cond: Box::new(f(*cond)),
                body: Box::new(f(*body)),
            },
            Expr::Cached { id, expr } => Expr::Cached {
                id,
                expr: Box::new(f(*expr)),
            },
            Expr::ParExt {
                kind,
                var,
                body,
                source,
                max_in_flight,
            } => Expr::ParExt {
                kind,
                var,
                body: Box::new(f(*body)),
                source: Box::new(f(*source)),
                max_in_flight,
            },
        }
    }

    /// Free variables of the expression.
    pub fn free_vars(&self) -> Vec<Name> {
        let mut acc = Vec::new();
        self.collect_free(&mut Vec::new(), &mut acc);
        acc.sort();
        acc.dedup();
        acc
    }

    /// Does `var` occur free in the expression?
    pub fn occurs_free(&self, var: &str) -> bool {
        self.free_vars().iter().any(|n| &**n == var)
    }

    fn collect_free(&self, bound: &mut Vec<Name>, acc: &mut Vec<Name>) {
        match self {
            Expr::Var(n) => {
                if !bound.iter().any(|b| b == n) {
                    acc.push(Arc::clone(n));
                }
            }
            Expr::Let { var, def, body } => {
                def.collect_free(bound, acc);
                bound.push(Arc::clone(var));
                body.collect_free(bound, acc);
                bound.pop();
            }
            Expr::Lambda { var, body } => {
                bound.push(Arc::clone(var));
                body.collect_free(bound, acc);
                bound.pop();
            }
            Expr::Ext {
                var, body, source, ..
            }
            | Expr::ParExt {
                var, body, source, ..
            } => {
                source.collect_free(bound, acc);
                bound.push(Arc::clone(var));
                body.collect_free(bound, acc);
                bound.pop();
            }
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => {
                scrutinee.collect_free(bound, acc);
                for arm in arms {
                    bound.push(Arc::clone(&arm.var));
                    arm.body.collect_free(bound, acc);
                    bound.pop();
                }
                if let Some(d) = default {
                    d.collect_free(bound, acc);
                }
            }
            Expr::Join {
                left,
                right,
                lvar,
                rvar,
                left_key,
                right_key,
                cond,
                body,
                ..
            } => {
                left.collect_free(bound, acc);
                right.collect_free(bound, acc);
                bound.push(Arc::clone(lvar));
                if let Some(k) = left_key {
                    k.collect_free(bound, acc);
                }
                bound.push(Arc::clone(rvar));
                if let Some(k) = right_key {
                    // right_key must only see rvar, but binding both is harmless
                    k.collect_free(bound, acc);
                }
                cond.collect_free(bound, acc);
                body.collect_free(bound, acc);
                bound.pop();
                bound.pop();
            }
            other => {
                // All remaining constructs bind nothing; recurse generically.
                let mut children: Vec<&Expr> = Vec::new();
                match other {
                    Expr::Apply(a, b) | Expr::Union(_, a, b) => {
                        children.push(a);
                        children.push(b);
                    }
                    Expr::Record(fs) => children.extend(fs.iter().map(|(_, e)| e)),
                    Expr::Proj(e, _) | Expr::Inject(_, e) | Expr::Single(_, e) => {
                        children.push(e)
                    }
                    Expr::RemoteApp { arg, .. } => children.push(arg),
                    Expr::If(c, t, e) => {
                        children.push(c);
                        children.push(t);
                        children.push(e);
                    }
                    Expr::Prim(_, args) => children.extend(args.iter()),
                    Expr::Cached { expr, .. } => children.push(expr),
                    _ => {}
                }
                for c in children {
                    c.collect_free(bound, acc);
                }
            }
        }
    }

    /// Capture-avoiding substitution of `replacement` for free `var`.
    pub fn subst(self, var: &str, replacement: &Expr) -> Expr {
        let free_in_repl = replacement.free_vars();
        self.subst_inner(var, replacement, &free_in_repl)
    }

    fn subst_inner(self, var: &str, replacement: &Expr, free_in_repl: &[Name]) -> Expr {
        match self {
            Expr::Var(n) => {
                if &*n == var {
                    replacement.clone()
                } else {
                    Expr::Var(n)
                }
            }
            Expr::Let {
                var: v,
                def,
                body,
            } => {
                let def = Box::new(def.subst_inner(var, replacement, free_in_repl));
                if &*v == var {
                    Expr::Let { var: v, def, body }
                } else if free_in_repl.iter().any(|n| *n == v) {
                    let fresh_v = fresh(&v);
                    let renamed = body.subst(&v, &Expr::Var(Arc::clone(&fresh_v)));
                    Expr::Let {
                        var: fresh_v,
                        def,
                        body: Box::new(renamed.subst_inner(var, replacement, free_in_repl)),
                    }
                } else {
                    Expr::Let {
                        var: v,
                        def,
                        body: Box::new(body.subst_inner(var, replacement, free_in_repl)),
                    }
                }
            }
            Expr::Lambda { var: v, body } => {
                if &*v == var {
                    Expr::Lambda { var: v, body }
                } else if free_in_repl.iter().any(|n| *n == v) {
                    let fresh_v = fresh(&v);
                    let renamed = body.subst(&v, &Expr::Var(Arc::clone(&fresh_v)));
                    Expr::Lambda {
                        var: fresh_v,
                        body: Box::new(renamed.subst_inner(var, replacement, free_in_repl)),
                    }
                } else {
                    Expr::Lambda {
                        var: v,
                        body: Box::new(body.subst_inner(var, replacement, free_in_repl)),
                    }
                }
            }
            Expr::Ext {
                kind,
                var: v,
                body,
                source,
            } => {
                let source = Box::new(source.subst_inner(var, replacement, free_in_repl));
                if &*v == var {
                    Expr::Ext {
                        kind,
                        var: v,
                        body,
                        source,
                    }
                } else if free_in_repl.iter().any(|n| *n == v) {
                    let fresh_v = fresh(&v);
                    let renamed = body.subst(&v, &Expr::Var(Arc::clone(&fresh_v)));
                    Expr::Ext {
                        kind,
                        var: fresh_v,
                        body: Box::new(renamed.subst_inner(var, replacement, free_in_repl)),
                        source,
                    }
                } else {
                    Expr::Ext {
                        kind,
                        var: v,
                        body: Box::new(body.subst_inner(var, replacement, free_in_repl)),
                        source,
                    }
                }
            }
            Expr::ParExt {
                kind,
                var: v,
                body,
                source,
                max_in_flight,
            } => {
                // same binding structure as Ext
                let rebuilt = Expr::Ext {
                    kind,
                    var: v,
                    body,
                    source,
                }
                .subst_inner(var, replacement, free_in_repl);
                match rebuilt {
                    Expr::Ext {
                        kind,
                        var,
                        body,
                        source,
                    } => Expr::ParExt {
                        kind,
                        var,
                        body,
                        source,
                        max_in_flight,
                    },
                    other => other,
                }
            }
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => Expr::Case {
                scrutinee: Box::new(scrutinee.subst_inner(var, replacement, free_in_repl)),
                arms: arms
                    .into_iter()
                    .map(|arm| {
                        if &*arm.var == var {
                            arm
                        } else if free_in_repl.iter().any(|n| *n == arm.var) {
                            let fresh_v = fresh(&arm.var);
                            let renamed = arm.body.subst(&arm.var, &Expr::Var(Arc::clone(&fresh_v)));
                            CaseArm {
                                tag: arm.tag,
                                var: fresh_v,
                                body: renamed.subst_inner(var, replacement, free_in_repl),
                            }
                        } else {
                            CaseArm {
                                tag: arm.tag,
                                var: arm.var,
                                body: arm.body.subst_inner(var, replacement, free_in_repl),
                            }
                        }
                    })
                    .collect(),
                default: default
                    .map(|d| Box::new(d.subst_inner(var, replacement, free_in_repl))),
            },
            Expr::Join { .. } => {
                // Joins are introduced after substitution-driven rewriting;
                // handle conservatively via the generic path on components.
                let e = self;
                e.map_children(&mut |c| c.subst_inner(var, replacement, free_in_repl))
            }
            other => other.map_children(&mut |c| c.subst_inner(var, replacement, free_in_repl)),
        }
    }

    /// True when evaluating this expression may contact a driver. Used by
    /// the caching and concurrency rules to find "expensive" subqueries.
    pub fn touches_remote(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Remote { .. } | Expr::RemoteApp { .. }) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        // U{ x + y | \x <- src }
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::Prim(Prim::Add, vec![Expr::var("x"), Expr::var("y")]),
            Expr::var("src"),
        );
        let fv = e.free_vars();
        let names: Vec<&str> = fv.iter().map(|n| &**n).collect();
        assert_eq!(names, vec!["src", "y"]);
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::var("x"),
            Expr::single(CollKind::Set, Expr::var("x")),
        );
        // the source's x is free, the body's x is bound
        let r = e.subst("x", &Expr::int(7));
        match r {
            Expr::Ext { body, source, .. } => {
                assert_eq!(*body, Expr::var("x"));
                assert_eq!(*source, Expr::single(CollKind::Set, Expr::int(7)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_avoids_capture() {
        // U{ y | \x <- src }  with  y := x   must rename the binder
        let e = Expr::ext(CollKind::Set, "x", Expr::var("y"), Expr::var("src"));
        let r = e.subst("y", &Expr::var("x"));
        match r {
            Expr::Ext { var, body, .. } => {
                assert_ne!(&*var, "x", "binder must be renamed");
                assert_eq!(*body, Expr::var("x"), "substituted var stays free");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lambda_subst_shadowing() {
        let e = Expr::lambda("x", Expr::var("x"));
        let r = e.clone().subst("x", &Expr::int(1));
        assert_eq!(r, e, "bound variable is untouched");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::eq(Expr::int(1), Expr::int(2));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn touches_remote_detection() {
        let remote = Expr::Remote {
            driver: name("GDB"),
            request: DriverRequest::TableScan {
                table: "locus".into(),
                columns: None,
            },
        };
        let e = Expr::ext(CollKind::Set, "x", Expr::var("x"), remote);
        assert!(e.touches_remote());
        assert!(!Expr::int(3).touches_remote());
    }

    #[test]
    fn fresh_names_are_unique() {
        let a = fresh("x");
        let b = fresh("x");
        assert_ne!(a, b);
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::write_expr(f, self, 0)
    }
}
