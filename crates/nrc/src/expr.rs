//! The abstract syntax of NRC, the monad algebra CPL is translated into
//! (Section 4 of the paper: "Once submitted to Kleisli, a CPL query is
//! translated into an abstract syntax language in the monad algebra NRC to
//! which the rewrite rules can be applied").
//!
//! The central construct is [`Expr::Ext`], written `U{ e1 | \x <- e2 }` in
//! the paper: the big-union of `e1[o/x]` for each element `o` of the
//! collection `e2`. Comprehensions desugar into `Ext`, `Single`, `Empty`,
//! and `If` via Wadler's identities (implemented in the `cpl` crate).
//!
//! Besides the logical constructs, the enum carries the *physical* nodes
//! introduced by the non-monadic optimizations: [`Expr::Remote`] (a request
//! shipped to a driver), [`Expr::Join`] (blocked / indexed nested-loop
//! joins), [`Expr::Cached`] (memoized subquery), and [`Expr::ParExt`]
//! (bounded-concurrency retrieval).
//!
//! # Structural sharing
//!
//! Every child slot is an [`Arc<Expr>`], which makes a plan a *persistent*
//! (purely functional) DAG rather than an owned tree:
//!
//! * **Cloning is O(1).** `Expr::clone` copies one node and bumps the
//!   reference counts of its children. Handing a plan (or any subplan) to
//!   the streaming executor, a closure, or a cache never deep-copies it.
//! * **Rewrites are persistent-style.** A transformation must never mutate
//!   a node in place (other plans may share it); it builds new nodes along
//!   the changed spine and re-links the unchanged children by `Arc::clone`.
//!   [`Expr::map_children_shared`] and [`Expr::subst_shared`] implement
//!   this discipline and *return the input `Arc` itself* (pointer-equal)
//!   when nothing changed underneath.
//! * **Pointer equality witnesses "no change".** Because every traversal
//!   in the optimizer is sharing-preserving, the rewrite engine detects a
//!   fixpoint with `Arc::ptr_eq` on the root instead of a structural
//!   `PartialEq` walk, and a pass over an already-normalized subtree
//!   allocates nothing at all.
//!
//! Anything that violates the discipline — returning a freshly rebuilt but
//! structurally identical tree from a "no-op" — silently degrades the
//! optimizer back to O(plan-size) per pass, so new rules should be written
//! against the `*_shared` helpers. [`Expr::deep_clone`] exists only to
//! deliberately *un*-share a plan (benchmarks measuring the cost of the
//! old copying representation).
//!
//! # Hashing and interning invariants
//!
//! The [`crate::hash`] module builds on the discipline above:
//!
//! * **Structural hashes are pointer-blind.** [`crate::hash::plan_hash`]
//!   depends only on constructors, names, constants and child hashes —
//!   never on addresses — so structurally identical plans hash equal no
//!   matter how they were built. `Cached { id }` ids are derived from this
//!   hash by the cache rule; anything that rewrites *inside* a `Cached`
//!   node after ids are assigned would silently change what the id
//!   describes, which is why the cache rule set runs after the semantic
//!   rule sets and never descends into an existing `Cached`.
//! * **Interning is sharing-maximal, structure-neutral.** An
//!   [`crate::hash::Interner`] maps a plan to a canonical form where every
//!   structurally identical subtree is one `Arc`. It changes only sharing
//!   (`Arc::ptr_eq` topology), never structure, so evaluation results are
//!   unchanged, and everything keyed on pointer identity — the rewrite
//!   engine's memo table, `Arc::ptr_eq` fixpoint detection — treats
//!   repeated subplans as one.
//! * **Never mutate a node in place** (the base discipline): both the
//!   interner's pointer-keyed hash cache and the engine's memo table
//!   assume a given `Arc<Expr>` address denotes one immutable structure
//!   for as long as it is alive.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kleisli_core::{CollKind, DriverRequest, Value};

use crate::prim::Prim;

/// Variable and field names.
pub type Name = Arc<str>;

/// Create a `Name` from a `&str`.
pub fn name(s: impl AsRef<str>) -> Name {
    Arc::from(s.as_ref())
}

/// A fresh variable name, unique within the process.
pub fn fresh(prefix: &str) -> Name {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    Arc::from(format!("{prefix}%{n}"))
}

/// Strategy chosen for a local join by the join rule set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinStrategy {
    /// Blocked nested-loop join [Kim 80]: the inner collection is scanned
    /// once per block of outer elements.
    BlockedNl { block_size: usize },
    /// Indexed blocked nested-loop join (a variation of the hashed-loop
    /// join of [Nakayama et al. 88]): an index is built on the fly over the
    /// inner collection, keyed by `right_key`; outer elements probe it with
    /// `left_key`.
    IndexedNl,
}

/// One arm of a `Case` expression: tag, bound variable, arm body.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    pub tag: Name,
    pub var: Name,
    pub body: Arc<Expr>,
}

/// An NRC expression. See the module docs for the structural-sharing
/// invariants every producer and consumer relies on.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    Var(Name),
    Let {
        var: Name,
        def: Arc<Expr>,
        body: Arc<Expr>,
    },
    Lambda {
        var: Name,
        body: Arc<Expr>,
    },
    Apply(Arc<Expr>, Arc<Expr>),
    /// Record construction `[l1 = e1, ..., ln = en]`.
    Record(Vec<(Name, Arc<Expr>)>),
    /// Field projection `e.l`.
    Proj(Arc<Expr>, Name),
    /// Variant construction `<tag = e>`.
    Inject(Name, Arc<Expr>),
    /// Variant elimination. `default` (if present) binds nothing and
    /// handles unlisted tags; without it an unlisted tag is a runtime error.
    Case {
        scrutinee: Arc<Expr>,
        arms: Vec<CaseArm>,
        default: Option<Arc<Expr>>,
    },
    /// The empty collection of the given kind.
    Empty(CollKind),
    /// The singleton collection `{e}` / `{|e|}` / `[|e|]`.
    Single(CollKind, Arc<Expr>),
    /// Collection union: set union, bag additive union, list append.
    Union(CollKind, Arc<Expr>, Arc<Expr>),
    /// The monad extension `U{ body | \var <- source }`.
    Ext {
        kind: CollKind,
        var: Name,
        body: Arc<Expr>,
        source: Arc<Expr>,
    },
    If(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// Primitive application.
    Prim(Prim, Vec<Arc<Expr>>),

    /// A driver call whose request is computed at run time, e.g.
    /// `NA-Links(uid)` where `uid` is bound by an enclosing comprehension.
    /// When the argument is constant the optimizer lowers this to
    /// [`Expr::Remote`] so that pushdown rules can inspect the request.
    RemoteApp {
        driver: Name,
        arg: Arc<Expr>,
    },

    // ---- physical nodes (introduced by the optimizer) ----
    /// A request shipped to a registered driver; evaluates to the set of
    /// values the driver streams back.
    Remote {
        driver: Name,
        request: DriverRequest,
    },
    /// A local join with an explicit strategy. Semantically equal to
    /// `U{ U{ if cond then body else empty | \rvar <- right } | \lvar <- left }`,
    /// where for `IndexedNl` the condition additionally includes
    /// `left_key(lvar) == right_key(rvar)`.
    Join {
        kind: CollKind,
        strategy: JoinStrategy,
        left: Arc<Expr>,
        right: Arc<Expr>,
        lvar: Name,
        rvar: Name,
        /// Equi-join keys (over `lvar` / `rvar`), used by `IndexedNl`;
        /// `BlockedNl` folds them into `cond`.
        left_key: Option<Arc<Expr>>,
        right_key: Option<Arc<Expr>>,
        /// Residual join predicate (may be `Const(true)`).
        cond: Arc<Expr>,
        /// Collection-valued output expression for each matching pair.
        body: Arc<Expr>,
    },
    /// Memoize the result of an outer-independent subquery (the paper's
    /// disk cache for inner relations; in-memory here).
    Cached {
        id: u64,
        expr: Arc<Expr>,
    },
    /// `Ext` whose body issues remote requests: evaluate bodies for up to
    /// `max_in_flight` source elements concurrently and take the union of
    /// the results. When `batch` is set, the executor first folds the
    /// per-element requests into batched wire round-trips (the loop body
    /// is unchanged; per-element submissions attach to the pre-seeded
    /// flights).
    ParExt {
        kind: CollKind,
        var: Name,
        body: Arc<Expr>,
        source: Arc<Expr>,
        max_in_flight: usize,
        batch: Option<BatchSpec>,
    },
}

/// The optimizer's batching mark on a [`Expr::ParExt`]: the per-element
/// remote request inside the loop body, abstracted over the loop
/// variable, so the executor can pre-compute the whole key set's
/// requests and ship them as a few multi-key wire round-trips (the
/// paper's Section 4 semijoin strategy — ship the *set* of keys, not
/// one round-trip per element).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// The driver the body's remote call targets.
    pub driver: Name,
    /// The remote request argument (a record, see
    /// `kleisli_exec::request_from_value`), with the loop variable
    /// still free — evaluated once per source element during warm-up.
    pub arg: Arc<Expr>,
    /// Skip warm-up below this many distinct keys: small key sets keep
    /// the plain latency-overlap path.
    pub min_keys: usize,
    /// The driver's advertised per-request key ceiling (warm-up chunk
    /// grain).
    pub max_keys: usize,
}

impl Expr {
    pub fn var(n: impl AsRef<str>) -> Expr {
        Expr::Var(name(n))
    }

    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    pub fn str(s: impl AsRef<str>) -> Expr {
        Expr::Const(Value::str(s))
    }

    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    pub fn proj(e: Expr, field: impl AsRef<str>) -> Expr {
        Expr::Proj(Arc::new(e), name(field))
    }

    pub fn ext(kind: CollKind, var: impl AsRef<str>, body: Expr, source: Expr) -> Expr {
        Expr::Ext {
            kind,
            var: name(var),
            body: Arc::new(body),
            source: Arc::new(source),
        }
    }

    pub fn single(kind: CollKind, e: Expr) -> Expr {
        Expr::Single(kind, Arc::new(e))
    }

    pub fn union(kind: CollKind, a: Expr, b: Expr) -> Expr {
        Expr::Union(kind, Arc::new(a), Arc::new(b))
    }

    pub fn record<I, S>(fields: I) -> Expr
    where
        I: IntoIterator<Item = (S, Expr)>,
        S: AsRef<str>,
    {
        Expr::Record(
            fields
                .into_iter()
                .map(|(n, e)| (name(n), Arc::new(e)))
                .collect(),
        )
    }

    pub fn if_(c: Expr, t: Expr, f: Expr) -> Expr {
        Expr::If(Arc::new(c), Arc::new(t), Arc::new(f))
    }

    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Prim(Prim::Eq, vec![Arc::new(a), Arc::new(b)])
    }

    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::Prim(Prim::And, vec![Arc::new(a), Arc::new(b)])
    }

    /// `eq` over already-shared operands — links the subplans by `Arc`.
    pub fn eq_arc(a: Arc<Expr>, b: Arc<Expr>) -> Expr {
        Expr::Prim(Prim::Eq, vec![a, b])
    }

    /// `and` over already-shared operands — links the subplans by `Arc`.
    pub fn and_arc(a: Arc<Expr>, b: Arc<Expr>) -> Expr {
        Expr::Prim(Prim::And, vec![a, b])
    }

    /// Primitive application over owned arguments (wraps each in an `Arc`).
    pub fn prim(p: Prim, args: Vec<Expr>) -> Expr {
        Expr::Prim(p, args.into_iter().map(Arc::new).collect())
    }

    pub fn apply(f: Expr, a: Expr) -> Expr {
        Expr::Apply(Arc::new(f), Arc::new(a))
    }

    pub fn lambda(var: impl AsRef<str>, body: Expr) -> Expr {
        Expr::Lambda {
            var: name(var),
            body: Arc::new(body),
        }
    }

    pub fn let_(var: impl AsRef<str>, def: Expr, body: Expr) -> Expr {
        Expr::Let {
            var: name(var),
            def: Arc::new(def),
            body: Arc::new(body),
        }
    }

    /// Wrap in a shared handle (sugar for `Arc::new`).
    pub fn arc(self) -> Arc<Expr> {
        Arc::new(self)
    }

    /// Number of AST nodes; used to bound rewriting and report in explain.
    /// Shared subtrees are counted once per occurrence (tree size of the
    /// unfolding), matching the pre-sharing semantics.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Visit every node (pre-order, through sharing).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        let mut go = |c: &'a Arc<Expr>| c.visit(f);
        self.for_each_child(&mut go);
    }

    /// Apply `f` to each direct child handle, in evaluation order.
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a Arc<Expr>)) {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Empty(_) | Expr::Remote { .. } => {}
            Expr::Let { def, body, .. } => {
                f(def);
                f(body);
            }
            Expr::Lambda { body, .. } => f(body),
            Expr::Apply(a, b) | Expr::Union(_, a, b) => {
                f(a);
                f(b);
            }
            Expr::Record(fields) => {
                for (_, e) in fields {
                    f(e);
                }
            }
            Expr::Proj(e, _) | Expr::Inject(_, e) | Expr::Single(_, e) => f(e),
            Expr::RemoteApp { arg, .. } => f(arg),
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => {
                f(scrutinee);
                for arm in arms {
                    f(&arm.body);
                }
                if let Some(d) = default {
                    f(d);
                }
            }
            Expr::Ext { body, source, .. } | Expr::ParExt { body, source, .. } => {
                f(body);
                f(source);
            }
            Expr::If(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            Expr::Prim(_, args) => {
                for a in args {
                    f(a);
                }
            }
            Expr::Join {
                left,
                right,
                left_key,
                right_key,
                cond,
                body,
                ..
            } => {
                f(left);
                f(right);
                if let Some(k) = left_key {
                    f(k);
                }
                if let Some(k) = right_key {
                    f(k);
                }
                f(cond);
                f(body);
            }
            Expr::Cached { expr, .. } => f(expr),
        }
    }

    /// Rebuild this node with each child handle transformed by `f`,
    /// preserving sharing: when every child comes back pointer-equal, the
    /// input handle itself is returned and nothing is allocated. This is
    /// the traversal primitive of the rewrite engine — see the module docs.
    pub fn map_children_shared(
        e: &Arc<Expr>,
        f: &mut impl FnMut(&Arc<Expr>) -> Arc<Expr>,
    ) -> Arc<Expr> {
        // `step` applies f and records whether any child changed.
        fn step<F: FnMut(&Arc<Expr>) -> Arc<Expr>>(
            c: &Arc<Expr>,
            f: &mut F,
            changed: &mut bool,
        ) -> Arc<Expr> {
            let out = f(c);
            if !Arc::ptr_eq(&out, c) {
                *changed = true;
            }
            out
        }
        let mut changed = false;
        let rebuilt = match &**e {
            Expr::Const(_) | Expr::Var(_) | Expr::Empty(_) | Expr::Remote { .. } => {
                return Arc::clone(e)
            }
            Expr::Let { var, def, body } => Expr::Let {
                var: Arc::clone(var),
                def: step(def, f, &mut changed),
                body: step(body, f, &mut changed),
            },
            Expr::Lambda { var, body } => Expr::Lambda {
                var: Arc::clone(var),
                body: step(body, f, &mut changed),
            },
            Expr::Apply(a, b) => Expr::Apply(step(a, f, &mut changed), step(b, f, &mut changed)),
            Expr::Record(fields) => {
                // Rebuild the field vector lazily: an unchanged record
                // must not allocate (the whole point of the sharing pass).
                let mut new_fields: Option<Vec<(Name, Arc<Expr>)>> = None;
                for (i, (n, fe)) in fields.iter().enumerate() {
                    let out = f(fe);
                    if new_fields.is_none() && !Arc::ptr_eq(&out, fe) {
                        let mut v = Vec::with_capacity(fields.len());
                        v.extend(
                            fields[..i]
                                .iter()
                                .map(|(pn, pe)| (Arc::clone(pn), Arc::clone(pe))),
                        );
                        new_fields = Some(v);
                    }
                    if let Some(v) = &mut new_fields {
                        v.push((Arc::clone(n), out));
                    }
                }
                match new_fields {
                    Some(v) => {
                        changed = true;
                        Expr::Record(v)
                    }
                    None => return Arc::clone(e),
                }
            }
            Expr::Proj(inner, n) => Expr::Proj(step(inner, f, &mut changed), Arc::clone(n)),
            Expr::Inject(n, inner) => Expr::Inject(Arc::clone(n), step(inner, f, &mut changed)),
            Expr::RemoteApp { driver, arg } => Expr::RemoteApp {
                driver: Arc::clone(driver),
                arg: step(arg, f, &mut changed),
            },
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => {
                let scrutinee2 = step(scrutinee, f, &mut changed);
                let mut new_arms: Option<Vec<CaseArm>> = None;
                for (i, arm) in arms.iter().enumerate() {
                    let out = f(&arm.body);
                    if new_arms.is_none() && !Arc::ptr_eq(&out, &arm.body) {
                        let mut v = Vec::with_capacity(arms.len());
                        v.extend(arms[..i].iter().cloned());
                        new_arms = Some(v);
                    }
                    if let Some(v) = &mut new_arms {
                        v.push(CaseArm {
                            tag: Arc::clone(&arm.tag),
                            var: Arc::clone(&arm.var),
                            body: out,
                        });
                    }
                }
                let default2 = default.as_ref().map(|d| step(d, f, &mut changed));
                match new_arms {
                    Some(v) => {
                        changed = true;
                        Expr::Case {
                            scrutinee: scrutinee2,
                            arms: v,
                            default: default2,
                        }
                    }
                    None if changed => Expr::Case {
                        scrutinee: scrutinee2,
                        arms: arms.clone(),
                        default: default2,
                    },
                    None => return Arc::clone(e),
                }
            }
            Expr::Single(k, inner) => Expr::Single(*k, step(inner, f, &mut changed)),
            Expr::Union(k, a, b) => {
                Expr::Union(*k, step(a, f, &mut changed), step(b, f, &mut changed))
            }
            Expr::Ext {
                kind,
                var,
                body,
                source,
            } => Expr::Ext {
                kind: *kind,
                var: Arc::clone(var),
                body: step(body, f, &mut changed),
                source: step(source, f, &mut changed),
            },
            Expr::If(c, t, el) => Expr::If(
                step(c, f, &mut changed),
                step(t, f, &mut changed),
                step(el, f, &mut changed),
            ),
            Expr::Prim(p, args) => {
                let mut new_args: Option<Vec<Arc<Expr>>> = None;
                for (i, a) in args.iter().enumerate() {
                    let out = f(a);
                    if new_args.is_none() && !Arc::ptr_eq(&out, a) {
                        let mut v = Vec::with_capacity(args.len());
                        v.extend(args[..i].iter().map(Arc::clone));
                        new_args = Some(v);
                    }
                    if let Some(v) = &mut new_args {
                        v.push(out);
                    }
                }
                match new_args {
                    Some(v) => {
                        changed = true;
                        Expr::Prim(*p, v)
                    }
                    None => return Arc::clone(e),
                }
            }
            Expr::Join {
                kind,
                strategy,
                left,
                right,
                lvar,
                rvar,
                left_key,
                right_key,
                cond,
                body,
            } => Expr::Join {
                kind: *kind,
                strategy: strategy.clone(),
                left: step(left, f, &mut changed),
                right: step(right, f, &mut changed),
                lvar: Arc::clone(lvar),
                rvar: Arc::clone(rvar),
                left_key: left_key.as_ref().map(|k| step(k, f, &mut changed)),
                right_key: right_key.as_ref().map(|k| step(k, f, &mut changed)),
                cond: step(cond, f, &mut changed),
                body: step(body, f, &mut changed),
            },
            Expr::Cached { id, expr } => Expr::Cached {
                id: *id,
                expr: step(expr, f, &mut changed),
            },
            Expr::ParExt {
                kind,
                var,
                body,
                source,
                max_in_flight,
                batch,
            } => Expr::ParExt {
                kind: *kind,
                var: Arc::clone(var),
                body: step(body, f, &mut changed),
                source: step(source, f, &mut changed),
                max_in_flight: *max_in_flight,
                batch: batch.clone(),
            },
        };
        if changed {
            Arc::new(rebuilt)
        } else {
            Arc::clone(e)
        }
    }

    /// Fully un-share: rebuild the expression as a tree of fresh nodes.
    /// Only useful for measuring what plans cost *without* structural
    /// sharing (see the `plan_sharing` bench); never needed in the engine.
    pub fn deep_clone(&self) -> Expr {
        fn dc(c: &Arc<Expr>) -> Arc<Expr> {
            Arc::new(c.deep_clone())
        }
        match self {
            e @ (Expr::Const(_) | Expr::Var(_) | Expr::Empty(_) | Expr::Remote { .. }) => e.clone(),
            Expr::Let { var, def, body } => Expr::Let {
                var: Arc::clone(var),
                def: dc(def),
                body: dc(body),
            },
            Expr::Lambda { var, body } => Expr::Lambda {
                var: Arc::clone(var),
                body: dc(body),
            },
            Expr::Apply(a, b) => Expr::Apply(dc(a), dc(b)),
            Expr::Record(fields) => {
                Expr::Record(fields.iter().map(|(n, e)| (Arc::clone(n), dc(e))).collect())
            }
            Expr::Proj(e, n) => Expr::Proj(dc(e), Arc::clone(n)),
            Expr::Inject(n, e) => Expr::Inject(Arc::clone(n), dc(e)),
            Expr::RemoteApp { driver, arg } => Expr::RemoteApp {
                driver: Arc::clone(driver),
                arg: dc(arg),
            },
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => Expr::Case {
                scrutinee: dc(scrutinee),
                arms: arms
                    .iter()
                    .map(|arm| CaseArm {
                        tag: Arc::clone(&arm.tag),
                        var: Arc::clone(&arm.var),
                        body: dc(&arm.body),
                    })
                    .collect(),
                default: default.as_ref().map(dc),
            },
            Expr::Single(k, e) => Expr::Single(*k, dc(e)),
            Expr::Union(k, a, b) => Expr::Union(*k, dc(a), dc(b)),
            Expr::Ext {
                kind,
                var,
                body,
                source,
            } => Expr::Ext {
                kind: *kind,
                var: Arc::clone(var),
                body: dc(body),
                source: dc(source),
            },
            Expr::If(c, t, f) => Expr::If(dc(c), dc(t), dc(f)),
            Expr::Prim(p, args) => Expr::Prim(*p, args.iter().map(dc).collect()),
            Expr::Join {
                kind,
                strategy,
                left,
                right,
                lvar,
                rvar,
                left_key,
                right_key,
                cond,
                body,
            } => Expr::Join {
                kind: *kind,
                strategy: strategy.clone(),
                left: dc(left),
                right: dc(right),
                lvar: Arc::clone(lvar),
                rvar: Arc::clone(rvar),
                left_key: left_key.as_ref().map(dc),
                right_key: right_key.as_ref().map(dc),
                cond: dc(cond),
                body: dc(body),
            },
            Expr::Cached { id, expr } => Expr::Cached {
                id: *id,
                expr: dc(expr),
            },
            Expr::ParExt {
                kind,
                var,
                body,
                source,
                max_in_flight,
                batch,
            } => Expr::ParExt {
                kind: *kind,
                var: Arc::clone(var),
                body: dc(body),
                source: dc(source),
                max_in_flight: *max_in_flight,
                batch: batch.clone(),
            },
        }
    }

    /// Free variables of the expression.
    pub fn free_vars(&self) -> Vec<Name> {
        let mut acc = Vec::new();
        self.collect_free(&mut Vec::new(), &mut acc);
        acc.sort();
        acc.dedup();
        acc
    }

    /// Does `var` occur free in the expression? Allocation-free early-exit
    /// walk — this is the hottest predicate in the rule sets.
    pub fn occurs_free(&self, var: &str) -> bool {
        fn go(e: &Expr, var: &str) -> bool {
            match e {
                Expr::Var(n) => &**n == var,
                Expr::Let { var: v, def, body } => go(def, var) || (&**v != var && go(body, var)),
                Expr::Lambda { var: v, body } => &**v != var && go(body, var),
                Expr::Ext {
                    var: v,
                    body,
                    source,
                    ..
                }
                | Expr::ParExt {
                    var: v,
                    body,
                    source,
                    ..
                } => go(source, var) || (&**v != var && go(body, var)),
                Expr::Case {
                    scrutinee,
                    arms,
                    default,
                } => {
                    go(scrutinee, var)
                        || arms
                            .iter()
                            .any(|arm| &*arm.var != var && go(&arm.body, var))
                        || default.as_deref().is_some_and(|d| go(d, var))
                }
                Expr::Join {
                    left,
                    right,
                    lvar,
                    rvar,
                    left_key,
                    right_key,
                    cond,
                    body,
                    ..
                } => {
                    // Mirror collect_free's scoping exactly: left_key is
                    // under lvar only; right_key/cond/body under both.
                    go(left, var)
                        || go(right, var)
                        || (&**lvar != var
                            && (left_key.as_deref().is_some_and(|k| go(k, var))
                                || (&**rvar != var
                                    && (right_key.as_deref().is_some_and(|k| go(k, var))
                                        || go(cond, var)
                                        || go(body, var)))))
                }
                other => {
                    let mut found = false;
                    other.for_each_child(&mut |c| {
                        if !found {
                            found = go(c, var);
                        }
                    });
                    found
                }
            }
        }
        go(self, var)
    }

    fn collect_free(&self, bound: &mut Vec<Name>, acc: &mut Vec<Name>) {
        match self {
            Expr::Var(n) => {
                if !bound.iter().any(|b| b == n) {
                    acc.push(Arc::clone(n));
                }
            }
            Expr::Let { var, def, body } => {
                def.collect_free(bound, acc);
                bound.push(Arc::clone(var));
                body.collect_free(bound, acc);
                bound.pop();
            }
            Expr::Lambda { var, body } => {
                bound.push(Arc::clone(var));
                body.collect_free(bound, acc);
                bound.pop();
            }
            Expr::Ext {
                var, body, source, ..
            }
            | Expr::ParExt {
                var, body, source, ..
            } => {
                source.collect_free(bound, acc);
                bound.push(Arc::clone(var));
                body.collect_free(bound, acc);
                bound.pop();
            }
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => {
                scrutinee.collect_free(bound, acc);
                for arm in arms {
                    bound.push(Arc::clone(&arm.var));
                    arm.body.collect_free(bound, acc);
                    bound.pop();
                }
                if let Some(d) = default {
                    d.collect_free(bound, acc);
                }
            }
            Expr::Join {
                left,
                right,
                lvar,
                rvar,
                left_key,
                right_key,
                cond,
                body,
                ..
            } => {
                left.collect_free(bound, acc);
                right.collect_free(bound, acc);
                bound.push(Arc::clone(lvar));
                if let Some(k) = left_key {
                    k.collect_free(bound, acc);
                }
                bound.push(Arc::clone(rvar));
                if let Some(k) = right_key {
                    // right_key must only see rvar, but binding both is harmless
                    k.collect_free(bound, acc);
                }
                cond.collect_free(bound, acc);
                body.collect_free(bound, acc);
                bound.pop();
                bound.pop();
            }
            other => {
                // All remaining constructs bind nothing.
                other.for_each_child(&mut |c| c.collect_free(bound, acc));
            }
        }
    }

    /// Capture-avoiding substitution of `replacement` for free `var`
    /// (owned-value convenience over [`Expr::subst_shared`]).
    pub fn subst(self, var: &str, replacement: &Expr) -> Expr {
        let out = Expr::subst_shared(&Arc::new(self), var, &Arc::new(replacement.clone()));
        (*out).clone()
    }

    /// Capture-avoiding substitution over shared handles. Subtrees in
    /// which `var` does not occur free come back pointer-equal — in
    /// particular, `subst_shared(e, x, r)` returns `e` itself when `x` is
    /// not free in `e` at all.
    pub fn subst_shared(e: &Arc<Expr>, var: &str, replacement: &Arc<Expr>) -> Arc<Expr> {
        let free_in_repl = replacement.free_vars();
        Expr::subst_rec(e, var, replacement, &free_in_repl)
    }

    fn subst_rec(e: &Arc<Expr>, var: &str, repl: &Arc<Expr>, free_in_repl: &[Name]) -> Arc<Expr> {
        // Rebinding of a shadowed binder only matters below a binder whose
        // name collides with a free variable of the replacement; the
        // generic path handles everything that binds nothing.
        match &**e {
            Expr::Var(n) => {
                if &**n == var {
                    Arc::clone(repl)
                } else {
                    Arc::clone(e)
                }
            }
            Expr::Let { var: v, def, body } => {
                let def2 = Expr::subst_rec(def, var, repl, free_in_repl);
                if &**v == var {
                    if Arc::ptr_eq(&def2, def) {
                        Arc::clone(e)
                    } else {
                        Arc::new(Expr::Let {
                            var: Arc::clone(v),
                            def: def2,
                            body: Arc::clone(body),
                        })
                    }
                } else if free_in_repl.iter().any(|n| n == v) {
                    let fresh_v = fresh(v);
                    let renamed =
                        Expr::subst_shared(body, v, &Arc::new(Expr::Var(Arc::clone(&fresh_v))));
                    Arc::new(Expr::Let {
                        var: fresh_v,
                        def: def2,
                        body: Expr::subst_rec(&renamed, var, repl, free_in_repl),
                    })
                } else {
                    let body2 = Expr::subst_rec(body, var, repl, free_in_repl);
                    if Arc::ptr_eq(&def2, def) && Arc::ptr_eq(&body2, body) {
                        Arc::clone(e)
                    } else {
                        Arc::new(Expr::Let {
                            var: Arc::clone(v),
                            def: def2,
                            body: body2,
                        })
                    }
                }
            }
            Expr::Lambda { var: v, body } => {
                if &**v == var {
                    Arc::clone(e)
                } else if free_in_repl.iter().any(|n| n == v) {
                    let fresh_v = fresh(v);
                    let renamed =
                        Expr::subst_shared(body, v, &Arc::new(Expr::Var(Arc::clone(&fresh_v))));
                    Arc::new(Expr::Lambda {
                        var: fresh_v,
                        body: Expr::subst_rec(&renamed, var, repl, free_in_repl),
                    })
                } else {
                    let body2 = Expr::subst_rec(body, var, repl, free_in_repl);
                    if Arc::ptr_eq(&body2, body) {
                        Arc::clone(e)
                    } else {
                        Arc::new(Expr::Lambda {
                            var: Arc::clone(v),
                            body: body2,
                        })
                    }
                }
            }
            Expr::Ext { .. } | Expr::ParExt { .. } => {
                // Shared binding structure; destructure via accessors.
                let (kind, v, body, source, par) = match &**e {
                    Expr::Ext {
                        kind,
                        var,
                        body,
                        source,
                    } => (*kind, var, body, source, None),
                    Expr::ParExt {
                        kind,
                        var,
                        body,
                        source,
                        max_in_flight,
                        ..
                    } => (*kind, var, body, source, Some(*max_in_flight)),
                    _ => unreachable!(),
                };
                // A substitution that actually rebuilds the node would
                // leave a `batch` mark's cached request argument stale,
                // so the rebuilt node drops it — the batch pass runs
                // after every substituting rewrite and re-derives it.
                // (The no-change fast path below keeps the shared node,
                // mark included.)
                let rebuild = |v: Name, body: Arc<Expr>, source: Arc<Expr>| match par {
                    None => Expr::Ext {
                        kind,
                        var: v,
                        body,
                        source,
                    },
                    Some(m) => Expr::ParExt {
                        kind,
                        var: v,
                        body,
                        source,
                        max_in_flight: m,
                        batch: None,
                    },
                };
                let source2 = Expr::subst_rec(source, var, repl, free_in_repl);
                if &**v == var {
                    if Arc::ptr_eq(&source2, source) {
                        Arc::clone(e)
                    } else {
                        Arc::new(rebuild(Arc::clone(v), Arc::clone(body), source2))
                    }
                } else if free_in_repl.iter().any(|n| n == v) {
                    let fresh_v = fresh(v);
                    let renamed =
                        Expr::subst_shared(body, v, &Arc::new(Expr::Var(Arc::clone(&fresh_v))));
                    Arc::new(rebuild(
                        fresh_v,
                        Expr::subst_rec(&renamed, var, repl, free_in_repl),
                        source2,
                    ))
                } else {
                    let body2 = Expr::subst_rec(body, var, repl, free_in_repl);
                    if Arc::ptr_eq(&source2, source) && Arc::ptr_eq(&body2, body) {
                        Arc::clone(e)
                    } else {
                        Arc::new(rebuild(Arc::clone(v), body2, source2))
                    }
                }
            }
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => {
                let mut changed = false;
                let scrutinee2 = Expr::subst_rec(scrutinee, var, repl, free_in_repl);
                changed |= !Arc::ptr_eq(&scrutinee2, scrutinee);
                // Lazy arm rebuild, mirroring map_children_shared: no
                // allocation when the variable occurs in no arm.
                let mut new_arms: Option<Vec<CaseArm>> = None;
                for (i, arm) in arms.iter().enumerate() {
                    let arm2 = if &*arm.var == var {
                        None
                    } else if free_in_repl.contains(&arm.var) {
                        let fresh_v = fresh(&arm.var);
                        let renamed = Expr::subst_shared(
                            &arm.body,
                            &arm.var,
                            &Arc::new(Expr::Var(Arc::clone(&fresh_v))),
                        );
                        Some(CaseArm {
                            tag: Arc::clone(&arm.tag),
                            var: fresh_v,
                            body: Expr::subst_rec(&renamed, var, repl, free_in_repl),
                        })
                    } else {
                        let body2 = Expr::subst_rec(&arm.body, var, repl, free_in_repl);
                        if Arc::ptr_eq(&body2, &arm.body) {
                            None
                        } else {
                            Some(CaseArm {
                                tag: Arc::clone(&arm.tag),
                                var: Arc::clone(&arm.var),
                                body: body2,
                            })
                        }
                    };
                    if new_arms.is_none() && arm2.is_some() {
                        let mut v = Vec::with_capacity(arms.len());
                        v.extend(arms[..i].iter().cloned());
                        new_arms = Some(v);
                    }
                    if let Some(v) = &mut new_arms {
                        v.push(arm2.unwrap_or_else(|| arm.clone()));
                    }
                }
                changed |= new_arms.is_some();
                let default2 = default.as_ref().map(|d| {
                    let d2 = Expr::subst_rec(d, var, repl, free_in_repl);
                    changed |= !Arc::ptr_eq(&d2, d);
                    d2
                });
                if changed {
                    Arc::new(Expr::Case {
                        scrutinee: scrutinee2,
                        arms: new_arms.unwrap_or_else(|| arms.clone()),
                        default: default2,
                    })
                } else {
                    Arc::clone(e)
                }
            }
            // Joins are introduced after substitution-driven rewriting;
            // handle conservatively via the generic (binder-blind) path.
            _ => Expr::map_children_shared(e, &mut |c| Expr::subst_rec(c, var, repl, free_in_repl)),
        }
    }

    /// The collection kind this expression produces, when it is evident
    /// from the plan's syntax. Used by the streaming executor to
    /// canonicalize a cached subquery's rows exactly like the eager
    /// evaluator would, and by `Session::query_first_n` to decide whether
    /// the streamed prefix needs set deduplication. `None` means the kind
    /// is only knowable from types or runtime values (e.g. a bare `Var`).
    pub fn coll_kind_hint(&self) -> Option<CollKind> {
        match self {
            Expr::Empty(k) | Expr::Single(k, _) | Expr::Union(k, ..) => Some(*k),
            Expr::Ext { kind, .. } | Expr::ParExt { kind, .. } | Expr::Join { kind, .. } => {
                Some(*kind)
            }
            // Drivers stream back sets (see `run_remote`).
            Expr::Remote { .. } | Expr::RemoteApp { .. } => Some(CollKind::Set),
            Expr::Cached { expr, .. } => expr.coll_kind_hint(),
            Expr::Let { body, .. } => body.coll_kind_hint(),
            Expr::If(_, t, f) => t.coll_kind_hint().or_else(|| f.coll_kind_hint()),
            Expr::Const(v) => v.coll_kind(),
            _ => None,
        }
    }

    /// True when evaluating this expression may contact a driver. Used by
    /// the caching and concurrency rules to find "expensive" subqueries.
    pub fn touches_remote(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Remote { .. } | Expr::RemoteApp { .. }) {
                found = true;
            }
        });
        found
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::write_expr(f, self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        // U{ x + y | \x <- src }
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::prim(Prim::Add, vec![Expr::var("x"), Expr::var("y")]),
            Expr::var("src"),
        );
        let fv = e.free_vars();
        let names: Vec<&str> = fv.iter().map(|n| &**n).collect();
        assert_eq!(names, vec!["src", "y"]);
        assert!(e.occurs_free("y"));
        assert!(!e.occurs_free("x"));
    }

    #[test]
    fn occurs_free_matches_free_vars_on_join_keys() {
        // left_key is scoped under lvar only: rvar occurring in it is
        // FREE, and both predicates must agree on that.
        let join = Expr::Join {
            kind: CollKind::Set,
            strategy: JoinStrategy::IndexedNl,
            left: Arc::new(Expr::var("L")),
            right: Arc::new(Expr::var("R")),
            lvar: name("l"),
            rvar: name("r"),
            left_key: Some(Arc::new(Expr::var("r"))),
            right_key: Some(Arc::new(Expr::var("r"))),
            cond: Arc::new(Expr::bool(true)),
            body: Arc::new(Expr::single(CollKind::Set, Expr::var("l"))),
        };
        let fv = join.free_vars();
        assert!(fv.iter().any(|n| &**n == "r"), "free_vars: {fv:?}");
        assert!(
            join.occurs_free("r"),
            "occurs_free must agree with free_vars"
        );
        assert!(!join.occurs_free("l"), "lvar never escapes");
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::var("x"),
            Expr::single(CollKind::Set, Expr::var("x")),
        );
        // the source's x is free, the body's x is bound
        let r = e.subst("x", &Expr::int(7));
        match r {
            Expr::Ext { body, source, .. } => {
                assert_eq!(*body, Expr::var("x"));
                assert_eq!(*source, Expr::single(CollKind::Set, Expr::int(7)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_avoids_capture() {
        // U{ y | \x <- src }  with  y := x   must rename the binder
        let e = Expr::ext(CollKind::Set, "x", Expr::var("y"), Expr::var("src"));
        let r = e.subst("y", &Expr::var("x"));
        match r {
            Expr::Ext { var, body, .. } => {
                assert_ne!(&*var, "x", "binder must be renamed");
                assert_eq!(*body, Expr::var("x"), "substituted var stays free");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lambda_subst_shadowing() {
        let e = Expr::lambda("x", Expr::var("x"));
        let r = e.clone().subst("x", &Expr::int(1));
        assert_eq!(r, e, "bound variable is untouched");
    }

    #[test]
    fn subst_shared_is_pointer_preserving_on_miss() {
        // var does not occur: the very same Arc comes back.
        let e = Arc::new(Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::var("x")),
            Expr::var("src"),
        ));
        let out = Expr::subst_shared(&e, "zzz", &Arc::new(Expr::int(1)));
        assert!(Arc::ptr_eq(&e, &out));
        // var occurs only in one branch: the untouched branch is shared.
        let e = Arc::new(Expr::if_(Expr::var("p"), Expr::var("q"), Expr::int(3)));
        let out = Expr::subst_shared(&e, "p", &Arc::new(Expr::bool(true)));
        let (Expr::If(_, t1, f1), Expr::If(_, t2, f2)) = (&*e, &*out) else {
            panic!("shape changed");
        };
        assert!(Arc::ptr_eq(t1, t2), "untouched then-branch must be shared");
        assert!(Arc::ptr_eq(f1, f2), "untouched else-branch must be shared");
    }

    #[test]
    fn map_children_shared_preserves_pointer_on_identity() {
        let e = Arc::new(Expr::eq(Expr::int(1), Expr::var("x")));
        let out = Expr::map_children_shared(&e, &mut Arc::clone);
        assert!(Arc::ptr_eq(&e, &out), "identity map must not reallocate");
        let out = Expr::map_children_shared(&e, &mut |c| match &**c {
            Expr::Var(_) => Arc::new(Expr::int(9)),
            _ => Arc::clone(c),
        });
        assert!(!Arc::ptr_eq(&e, &out));
        assert_eq!(*out, Expr::eq(Expr::int(1), Expr::int(9)));
    }

    #[test]
    fn clone_is_shallow_and_deep_clone_unshares() {
        let shared = Arc::new(Expr::int(5));
        let e = Expr::Union(CollKind::Set, Arc::clone(&shared), Arc::clone(&shared));
        let c = e.clone();
        let (Expr::Union(_, a, _), Expr::Union(_, b, _)) = (&e, &c) else {
            panic!("shape");
        };
        assert!(Arc::ptr_eq(a, b), "clone must share children");
        let d = e.deep_clone();
        assert_eq!(d, e, "deep clone is structurally identical");
        let Expr::Union(_, da, db) = &d else {
            panic!("shape")
        };
        assert!(!Arc::ptr_eq(da, a), "deep clone must not share");
        assert!(!Arc::ptr_eq(da, db), "deep clone unfolds internal sharing");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::eq(Expr::int(1), Expr::int(2));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn touches_remote_detection() {
        let remote = Expr::Remote {
            driver: name("GDB"),
            request: DriverRequest::TableScan {
                table: "locus".into(),
                columns: None,
            },
        };
        let e = Expr::ext(CollKind::Set, "x", Expr::var("x"), remote);
        assert!(e.touches_remote());
        assert!(!Expr::int(3).touches_remote());
    }

    #[test]
    fn fresh_names_are_unique() {
        let a = fresh("x");
        let b = fresh("x");
        assert_ne!(a, b);
    }
}
