//! Best-effort static typing for NRC.
//!
//! The paper stresses that "static type information is both available and
//! useful in specifying and optimizing transformations". Data arriving from
//! drivers is often only dynamically known, so this checker is *gradual*:
//! unknown information is represented by `Type::Any` and only definite
//! mismatches (projecting a field from an integer, unioning a set with a
//! list, ...) are errors. The optimizer consults the inferred types — e.g.
//! homogeneity of records — and the session uses it to reject ill-typed
//! queries early.

use std::collections::HashMap;
use std::sync::Arc;

use kleisli_core::{CollKind, KError, KResult, Type};

use crate::expr::{Expr, Name};
use crate::prim::Prim;

/// Typing environment: variable name → type.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    vars: HashMap<Name, Type>,
}

impl TypeEnv {
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    pub fn bind(&self, name: Name, ty: Type) -> TypeEnv {
        let mut vars = self.vars.clone();
        vars.insert(name, ty);
        TypeEnv { vars }
    }

    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.vars.get(name)
    }
}

/// Infer the type of `e` under `env`, erring only on definite mismatches.
pub fn infer(e: &Expr, env: &TypeEnv) -> KResult<Type> {
    match e {
        Expr::Const(v) => Ok(Type::of(v)),
        Expr::Var(n) => env
            .lookup(n)
            .cloned()
            .ok_or_else(|| KError::Unbound(n.to_string())),
        Expr::Let { var, def, body } => {
            let t = infer(def, env)?;
            infer(body, &env.bind(Arc::clone(var), t))
        }
        Expr::Lambda { var, body } => {
            let r = infer(body, &env.bind(Arc::clone(var), Type::Any))?;
            Ok(Type::Fun(Box::new(Type::Any), Box::new(r)))
        }
        Expr::Apply(f, a) => {
            let tf = infer(f, env)?;
            infer(a, env)?;
            match tf {
                Type::Fun(_, r) => Ok(*r),
                Type::Any => Ok(Type::Any),
                other => Err(KError::ty(format!("cannot apply non-function: {other}"))),
            }
        }
        Expr::Record(fields) => {
            let mut fs = Vec::with_capacity(fields.len());
            for (n, fe) in fields {
                fs.push((Arc::clone(n), infer(fe, env)?));
            }
            fs.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(Type::Record(fs, false))
        }
        Expr::Proj(inner, field) => {
            let t = infer(inner, env)?;
            match t {
                Type::Record(fields, open) => match fields.iter().find(|(n, _)| n == field) {
                    Some((_, ft)) => Ok(ft.clone()),
                    None if open => Ok(Type::Any),
                    None => Err(KError::ty(format!(
                        "record {} has no field '{field}'",
                        Type::Record(fields.clone(), open)
                    ))),
                },
                Type::Any => Ok(Type::Any),
                other => Err(KError::ty(format!(
                    "projection '.{field}' applied to non-record type {other}"
                ))),
            }
        }
        Expr::Inject(tag, inner) => {
            let t = infer(inner, env)?;
            Ok(Type::Variant(vec![(Arc::clone(tag), t)], true))
        }
        Expr::Case {
            scrutinee,
            arms,
            default,
        } => {
            let st = infer(scrutinee, env)?;
            match &st {
                Type::Variant(..) | Type::Any => {}
                other => {
                    return Err(KError::ty(format!(
                        "case on non-variant type {other}"
                    )))
                }
            }
            let mut result: Option<Type> = None;
            for arm in arms {
                let payload = match &st {
                    Type::Variant(tags, _) => tags
                        .iter()
                        .find(|(n, _)| n == &arm.tag)
                        .map(|(_, t)| t.clone())
                        .unwrap_or(Type::Any),
                    _ => Type::Any,
                };
                let bt = infer(&arm.body, &env.bind(Arc::clone(&arm.var), payload))?;
                result = Some(match result {
                    None => bt,
                    Some(r) => r.lub(&bt),
                });
            }
            if let Some(d) = default {
                let dt = infer(d, env)?;
                result = Some(match result {
                    None => dt,
                    Some(r) => r.lub(&dt),
                });
            }
            Ok(result.unwrap_or(Type::Any))
        }
        Expr::Empty(kind) => Ok(Type::Coll(*kind, Box::new(Type::Any))),
        Expr::Single(kind, inner) => Ok(Type::Coll(*kind, Box::new(infer(inner, env)?))),
        Expr::Union(kind, a, b) => {
            let ta = infer(a, env)?;
            let tb = infer(b, env)?;
            let ea = coll_elem(&ta, *kind, "union")?;
            let eb = coll_elem(&tb, *kind, "union")?;
            Ok(Type::Coll(*kind, Box::new(ea.lub(&eb))))
        }
        Expr::Ext {
            kind,
            var,
            body,
            source,
        }
        | Expr::ParExt {
            kind,
            var,
            body,
            source,
            ..
        } => {
            let ts = infer(source, env)?;
            // Generators may draw from any collection kind (the paper:
            // `x <- p.authors` iterates a list inside a set comprehension).
            let elem = any_coll_elem(&ts, "comprehension generator")?;
            let tb = infer(body, &env.bind(Arc::clone(var), elem))?;
            let belem = coll_elem(&tb, *kind, "comprehension body")?;
            Ok(Type::Coll(*kind, Box::new(belem)))
        }
        Expr::If(c, t, e2) => {
            let tc = infer(c, env)?;
            if !matches!(tc, Type::Bool | Type::Any) {
                return Err(KError::ty(format!("if condition must be bool, got {tc}")));
            }
            let tt = infer(t, env)?;
            let te = infer(e2, env)?;
            Ok(tt.lub(&te))
        }
        Expr::Prim(p, args) => {
            if args.len() != p.arity() {
                return Err(KError::ty(format!(
                    "primitive '{p}' expects {} argument(s), got {}",
                    p.arity(),
                    args.len()
                )));
            }
            let arg_types: Vec<Type> = args
                .iter()
                .map(|a| infer(a, env))
                .collect::<KResult<_>>()?;
            prim_result(*p, &arg_types)
        }
        Expr::Remote { .. } => Ok(Type::set(Type::Any)),
        Expr::RemoteApp { arg, .. } => {
            infer(arg, env)?;
            Ok(Type::set(Type::Any))
        }
        Expr::Join {
            kind,
            left,
            right,
            lvar,
            rvar,
            cond,
            body,
            ..
        } => {
            let tl = infer(left, env)?;
            let tr = infer(right, env)?;
            let le = coll_elem(&tl, *kind, "join left")?;
            let re = coll_elem(&tr, *kind, "join right")?;
            let inner = env
                .bind(Arc::clone(lvar), le)
                .bind(Arc::clone(rvar), re);
            infer(cond, &inner)?;
            let tb = infer(body, &inner)?;
            let belem = coll_elem(&tb, *kind, "join body")?;
            Ok(Type::Coll(*kind, Box::new(belem)))
        }
        Expr::Cached { expr, .. } => infer(expr, env),
    }
}

/// Element type of a collection type of any kind.
fn any_coll_elem(t: &Type, what: &str) -> KResult<Type> {
    match t {
        Type::Coll(_, elem) => Ok((**elem).clone()),
        Type::Any => Ok(Type::Any),
        other => Err(KError::ty(format!(
            "{what}: expected a collection, got {other}"
        ))),
    }
}

/// Element type of a collection type of the expected kind.
fn coll_elem(t: &Type, kind: CollKind, what: &str) -> KResult<Type> {
    match t {
        Type::Coll(k, elem) if *k == kind => Ok((**elem).clone()),
        Type::Coll(k, _) => Err(KError::ty(format!(
            "{what}: expected a {}, got a {}",
            kind.name(),
            k.name()
        ))),
        Type::Any => Ok(Type::Any),
        other => Err(KError::ty(format!(
            "{what}: expected a {}, got {other}",
            kind.name()
        ))),
    }
}

fn numeric(t: &Type) -> bool {
    matches!(t, Type::Int | Type::Float | Type::Any)
}

fn prim_result(p: Prim, args: &[Type]) -> KResult<Type> {
    use Prim::*;
    let t = |i: usize| args[i].clone();
    Ok(match p {
        Add | Sub | Mul | Div | Mod => {
            if !numeric(&args[0]) || !numeric(&args[1]) {
                return Err(KError::ty(format!(
                    "arithmetic '{p}' on non-numeric types {} and {}",
                    args[0], args[1]
                )));
            }
            if args[0] == Type::Float || args[1] == Type::Float {
                Type::Float
            } else if args[0] == Type::Int && args[1] == Type::Int {
                Type::Int
            } else {
                Type::Any
            }
        }
        Neg => {
            if !numeric(&args[0]) {
                return Err(KError::ty(format!("'neg' on non-numeric type {}", args[0])));
            }
            t(0)
        }
        Eq | Ne | Lt | Le | Gt | Ge => Type::Bool,
        And | Or => {
            for a in args {
                if !matches!(a, Type::Bool | Type::Any) {
                    return Err(KError::ty(format!("'{p}' on non-bool type {a}")));
                }
            }
            Type::Bool
        }
        Not => {
            if !matches!(args[0], Type::Bool | Type::Any) {
                return Err(KError::ty(format!("'not' on non-bool type {}", args[0])));
            }
            Type::Bool
        }
        StrCat => Type::Str,
        StrLen => Type::Int,
        StrUpper | StrLower | Substr | ToString => Type::Str,
        StrContains | StrStartsWith => Type::Bool,
        IsEmpty => Type::Bool,
        Member => Type::Bool,
        Flatten => match &args[0] {
            Type::Coll(k, inner) => match &**inner {
                Type::Coll(_, elem) => Type::Coll(*k, elem.clone()),
                Type::Any => Type::Coll(*k, Box::new(Type::Any)),
                other => {
                    return Err(KError::ty(format!(
                        "'flatten' needs a collection of collections, got elements {other}"
                    )))
                }
            },
            Type::Any => Type::Any,
            other => return Err(KError::ty(format!("'flatten' on {other}"))),
        },
        Distinct | SetOf => Type::set(elem_of(&args[0])?),
        BagOf => Type::bag(elem_of(&args[0])?),
        ListOf => Type::list(elem_of(&args[0])?),
        Append => t(0).lub(&t(1)),
        Nth => elem_of(&args[0])?,
        Range => Type::list(Type::Int),
        Count => Type::Int,
        Sum => match elem_of(&args[0])? {
            Type::Float => Type::Float,
            Type::Int => Type::Int,
            _ => Type::Any,
        },
        Max | Min => elem_of(&args[0])?,
        Avg => Type::Float,
        Deref => Type::Any,
        HasField => Type::Bool,
        RecordWidth => Type::Int,
        Fail => Type::Any,
    })
}

fn elem_of(t: &Type) -> KResult<Type> {
    match t {
        Type::Coll(_, e) => Ok((**e).clone()),
        Type::Any => Ok(Type::Any),
        other => Err(KError::ty(format!("expected a collection, got {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::name;
    use kleisli_core::Value;

    fn env_with(n: &str, t: Type) -> TypeEnv {
        TypeEnv::new().bind(name(n), t)
    }

    #[test]
    fn infers_comprehension_over_records() {
        // U{ {[t = x.title]} | \x <- DB } : {[t: string]}
        let db_ty = Type::set(Type::record(vec![("title", Type::Str), ("year", Type::Int)]));
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::record(vec![("t", Expr::proj(Expr::var("x"), "title"))]),
            ),
            Expr::var("DB"),
        );
        let t = infer(&e, &env_with("DB", db_ty)).unwrap();
        assert_eq!(t, Type::set(Type::record(vec![("t", Type::Str)])));
    }

    #[test]
    fn rejects_projection_on_base_type() {
        let e = Expr::proj(Expr::int(3), "x");
        assert!(matches!(
            infer(&e, &TypeEnv::new()),
            Err(KError::Type(_))
        ));
    }

    #[test]
    fn rejects_missing_field_on_closed_record() {
        let e = Expr::proj(Expr::var("r"), "zzz");
        let env = env_with("r", Type::record(vec![("a", Type::Int)]));
        assert!(infer(&e, &env).is_err());
    }

    #[test]
    fn open_record_projection_is_any() {
        let e = Expr::proj(Expr::var("r"), "zzz");
        let env = env_with("r", Type::Record(vec![], true));
        assert_eq!(infer(&e, &env).unwrap(), Type::Any);
    }

    #[test]
    fn union_of_mismatched_kinds_fails() {
        let e = Expr::union(
            CollKind::Set,
            Expr::Const(Value::set(vec![])),
            Expr::Const(Value::list(vec![])),
        );
        assert!(infer(&e, &TypeEnv::new()).is_err());
    }

    #[test]
    fn unbound_variable_is_reported() {
        assert!(matches!(
            infer(&Expr::var("nope"), &TypeEnv::new()),
            Err(KError::Unbound(_))
        ));
    }

    #[test]
    fn arithmetic_type_errors_are_definite() {
        let bad = Expr::prim(Prim::Add, vec![Expr::str("a"), Expr::int(1)]);
        assert!(infer(&bad, &TypeEnv::new()).is_err());
        let ok = Expr::prim(Prim::Add, vec![Expr::int(1), Expr::int(1)]);
        assert_eq!(infer(&ok, &TypeEnv::new()).unwrap(), Type::Int);
    }

    #[test]
    fn case_merges_arm_types() {
        // case v of <a = \x> => 1 | <b = \y> => 2 end
        let e = Expr::Case {
            scrutinee: Arc::new(Expr::var("v")),
            arms: vec![
                crate::expr::CaseArm {
                    tag: name("a"),
                    var: name("x"),
                    body: Arc::new(Expr::int(1)),
                },
                crate::expr::CaseArm {
                    tag: name("b"),
                    var: name("y"),
                    body: Arc::new(Expr::int(2)),
                },
            ],
            default: None,
        };
        let env = env_with(
            "v",
            Type::variant(vec![("a", Type::Unit), ("b", Type::Unit)]),
        );
        assert_eq!(infer(&e, &env).unwrap(), Type::Int);
    }

    #[test]
    fn remote_is_dynamically_typed_set() {
        let e = Expr::Remote {
            driver: name("GDB"),
            request: kleisli_core::DriverRequest::TableScan {
                table: "locus".into(),
                columns: None,
            },
        };
        assert_eq!(infer(&e, &TypeEnv::new()).unwrap(), Type::set(Type::Any));
    }
}
