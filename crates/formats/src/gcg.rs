//! GCG (Wisconsin package) single-sequence format:
//!
//! ```text
//! M81409  Length: 16  Type: N  Check: 1234  ..
//! ACGTACGTAC GTACGT
//! ```
//!
//! The header line carries the id, declared length and a checksum; the
//! `..` marks where the sequence begins. Maps to a single record
//! `[id, length: int, check: int, sequence]`.

use std::fmt::Write as _;

use kleisli_core::{KError, KResult, Value};

/// GCG checksum: position-weighted sum of uppercase characters mod 10000.
pub fn gcg_checksum(seq: &str) -> i64 {
    let mut check: i64 = 0;
    for (i, c) in seq.chars().enumerate() {
        check += ((i % 57 + 1) as i64) * (c.to_ascii_uppercase() as i64);
    }
    check % 10_000
}

/// Parse a GCG file into a sequence record; validates length and checksum.
pub fn parse_gcg(text: &str) -> KResult<Value> {
    let mut lines = text.lines();
    let header = loop {
        match lines.next() {
            None => return Err(KError::format("gcg", "missing header line with '..'")),
            Some(l) if l.contains("..") => break l,
            Some(_) => continue, // leading comment/description lines
        }
    };
    let head = header.split("..").next().unwrap_or_default();
    let mut id = String::new();
    let mut length: Option<i64> = None;
    let mut check: Option<i64> = None;
    let mut words = head.split_whitespace().peekable();
    if let Some(first) = words.peek() {
        if !first.ends_with(':') {
            id = words.next().unwrap_or_default().to_string();
        }
    }
    while let Some(w) = words.next() {
        match w.trim_end_matches(':') {
            "Length" => {
                length = words.next().and_then(|v| v.parse().ok());
            }
            "Check" => {
                check = words.next().and_then(|v| v.parse().ok());
            }
            _ => {}
        }
    }
    if id.is_empty() {
        return Err(KError::format("gcg", "missing sequence id in header"));
    }
    let mut seq = String::new();
    for line in lines {
        for c in line.chars() {
            if c.is_ascii_alphabetic() {
                seq.push(c.to_ascii_uppercase());
            } else if !c.is_whitespace() && !c.is_ascii_digit() {
                return Err(KError::format(
                    "gcg",
                    format!("invalid sequence character '{c}'"),
                ));
            }
        }
    }
    if let Some(n) = length {
        if n != seq.len() as i64 {
            return Err(KError::format(
                "gcg",
                format!("declared length {n} but sequence has {} chars", seq.len()),
            ));
        }
    }
    if let Some(c) = check {
        let actual = gcg_checksum(&seq);
        if c != actual {
            return Err(KError::format(
                "gcg",
                format!("checksum mismatch: header {c}, computed {actual}"),
            ));
        }
    }
    Ok(Value::record_from(vec![
        ("id", Value::str(id)),
        ("length", Value::Int(seq.len() as i64)),
        ("check", Value::Int(gcg_checksum(&seq))),
        ("sequence", Value::str(seq)),
    ]))
}

/// Print a sequence record in GCG format.
pub fn print_gcg(v: &Value) -> KResult<String> {
    let get_str = |f: &str| match v.project(f) {
        Some(Value::Str(s)) => Ok(s.to_string()),
        _ => Err(KError::format("gcg", format!("missing string field '{f}'"))),
    };
    let id = get_str("id")?;
    let seq = get_str("sequence")?;
    if !seq.is_ascii() {
        // The 50/10-column grouping below slices at byte offsets.
        return Err(KError::format(
            "gcg",
            format!("sequence of '{id}' contains non-ASCII characters"),
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{id}  Length: {}  Type: N  Check: {}  ..",
        seq.len(),
        gcg_checksum(&seq)
    );
    for (i, chunk) in seq.as_bytes().chunks(50).enumerate() {
        let _ = write!(out, "{:>8} ", i * 50 + 1);
        for group in chunk.chunks(10) {
            let _ = write!(out, "{} ", std::str::from_utf8(group).expect("ascii"));
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Value::record_from(vec![
            ("id", Value::str("M81409")),
            ("length", Value::Int(16)),
            ("check", Value::Int(gcg_checksum("ACGTACGTACGTACGT"))),
            ("sequence", Value::str("ACGTACGTACGTACGT")),
        ]);
        let text = print_gcg(&v).unwrap();
        let back = parse_gcg(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn length_and_checksum_validated() {
        let bad_len = "X  Length: 99  Check: 0  ..\nACGT\n";
        assert!(parse_gcg(bad_len).is_err());
        let ok = format!("X  Length: 4  Check: {}  ..\nACGT\n", gcg_checksum("ACGT"));
        assert!(parse_gcg(&ok).is_ok());
        let bad_check = "X  Length: 4  Check: 1  ..\nACGT\n";
        assert!(parse_gcg(bad_check).is_err());
    }

    #[test]
    fn leading_description_lines_skipped() {
        let text = format!(
            "Human perforin, from GenBank\n\nX  Length: 4  Check: {}  ..\n 1 ACGT\n",
            gcg_checksum("ACGT")
        );
        let v = parse_gcg(&text).unwrap();
        assert_eq!(v.project("id"), Some(&Value::str("X")));
    }

    #[test]
    fn missing_header_errors() {
        assert!(parse_gcg("ACGT\n").is_err());
    }
}
