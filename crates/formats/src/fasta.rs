//! FASTA: `>id description` header lines followed by wrapped sequence.
//!
//! A FASTA file maps to a CPL list of records
//! `[id: string, description: string, sequence: string]` (a list, because
//! file order is meaningful to the analysis packages that consume it).

use std::fmt::Write as _;

use kleisli_core::{KError, KResult, Value};

/// Parse FASTA text into a list of sequence records.
pub fn parse_fasta(text: &str) -> KResult<Value> {
    let mut records = Vec::new();
    let mut header: Option<(String, String)> = None;
    let mut seq = String::new();
    let mut flush = |header: &mut Option<(String, String)>, seq: &mut String| {
        if let Some((id, desc)) = header.take() {
            records.push(Value::record_from(vec![
                ("id", Value::str(id)),
                ("description", Value::str(desc)),
                ("sequence", Value::str(std::mem::take(seq))),
            ]));
        }
    };
    for (lno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if let Some(h) = line.strip_prefix('>') {
            flush(&mut header, &mut seq);
            let (id, desc) = match h.split_once(char::is_whitespace) {
                Some((i, d)) => (i.to_string(), d.trim().to_string()),
                None => (h.to_string(), String::new()),
            };
            if id.is_empty() {
                return Err(KError::format(
                    "fasta",
                    format!("empty sequence id on line {}", lno + 1),
                ));
            }
            header = Some((id, desc));
        } else if !line.is_empty() {
            if header.is_none() {
                return Err(KError::format(
                    "fasta",
                    format!("sequence data before any '>' header on line {}", lno + 1),
                ));
            }
            for c in line.chars() {
                if c.is_ascii_alphabetic() || c == '*' || c == '-' {
                    seq.push(c.to_ascii_uppercase());
                } else if !c.is_whitespace() {
                    return Err(KError::format(
                        "fasta",
                        format!("invalid sequence character '{c}' on line {}", lno + 1),
                    ));
                }
            }
        }
    }
    flush(&mut header, &mut seq);
    Ok(Value::list(records))
}

/// Print a list (or set) of sequence records as FASTA, wrapping at 60
/// columns.
pub fn print_fasta(v: &Value) -> KResult<String> {
    let records = v
        .elements()
        .ok_or_else(|| KError::format("fasta", "expected a collection of records"))?;
    let mut out = String::new();
    for r in records {
        let get = |f: &str| -> KResult<String> {
            match r.project(f) {
                Some(Value::Str(s)) => Ok(s.to_string()),
                Some(other) => Err(KError::format(
                    "fasta",
                    format!("field '{f}' must be a string, got {}", other.kind_name()),
                )),
                None => Err(KError::format("fasta", format!("record lacks field '{f}'"))),
            }
        };
        let id = get("id")?;
        let desc = get("description").unwrap_or_default();
        let seq = get("sequence")?;
        if !seq.is_ascii() {
            // The 60-column wrap below slices at byte offsets.
            return Err(KError::format(
                "fasta",
                format!("sequence of '{id}' contains non-ASCII characters"),
            ));
        }
        if desc.is_empty() {
            let _ = writeln!(out, ">{id}");
        } else {
            let _ = writeln!(out, ">{id} {desc}");
        }
        for chunk in seq.as_bytes().chunks(60) {
            let _ = writeln!(out, "{}", std::str::from_utf8(chunk).expect("ascii"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = ">M81409 Human perforin (PRF1) gene\nACGTACGTAC\nGTACGT\n>X52127\nTTTT\n";

    #[test]
    fn parse_two_records() {
        let v = parse_fasta(SAMPLE).unwrap();
        assert_eq!(v.len(), Some(2));
        let first = &v.elements().unwrap()[0];
        assert_eq!(first.project("id"), Some(&Value::str("M81409")));
        assert_eq!(
            first.project("description"),
            Some(&Value::str("Human perforin (PRF1) gene"))
        );
        assert_eq!(
            first.project("sequence"),
            Some(&Value::str("ACGTACGTACGTACGT"))
        );
        let second = &v.elements().unwrap()[1];
        assert_eq!(second.project("description"), Some(&Value::str("")));
    }

    #[test]
    fn roundtrip() {
        let v = parse_fasta(SAMPLE).unwrap();
        let text = print_fasta(&v).unwrap();
        assert_eq!(parse_fasta(&text).unwrap(), v);
    }

    #[test]
    fn long_sequences_wrap_at_60() {
        let long: String = "A".repeat(130);
        let v = Value::list(vec![Value::record_from(vec![
            ("id", Value::str("x")),
            ("description", Value::str("")),
            ("sequence", Value::str(&long)),
        ])]);
        let text = print_fasta(&v).unwrap();
        assert_eq!(text.lines().count(), 1 + 3);
        assert_eq!(parse_fasta(&text).unwrap(), v);
    }

    #[test]
    fn lowercase_normalized_and_errors_reported() {
        let v = parse_fasta(">x\nacgt\n").unwrap();
        assert_eq!(
            v.elements().unwrap()[0].project("sequence"),
            Some(&Value::str("ACGT"))
        );
        assert!(parse_fasta("ACGT\n").is_err());
        assert!(parse_fasta(">x\nAC1GT\n").is_err());
        assert!(parse_fasta(">\nACGT\n").is_err());
    }
}
