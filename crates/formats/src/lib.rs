//! # bio-formats
//!
//! Flat-file sequence formats the paper's techniques "work equally well
//! with": FASTA, EMBL, and GCG/RSF-style single-sequence files. Each
//! module maps between the native text and the CPL complex-object model,
//! so CPL queries can transform among them (e.g. GenBank ASN.1 → FASTA for
//! a homology-search package like BLAST).

pub mod embl;
pub mod fasta;
pub mod gcg;

pub use embl::{parse_embl, print_embl};
pub use fasta::{parse_fasta, print_fasta};
pub use gcg::{parse_gcg, print_gcg};
