//! EMBL flat-file format (two-letter line codes):
//!
//! ```text
//! ID   M81409; DNA; 1200 BP.
//! DE   Human perforin (PRF1) gene.
//! OS   Homo sapiens
//! KW   Exons; Base Sequence.
//! SQ   Sequence 16 BP;
//!      ACGTACGTAC GTACGT
//! //
//! ```
//!
//! Maps to records `[id, description, organism, keywords: {string},
//! sequence]`.

use std::fmt::Write as _;

use kleisli_core::{KError, KResult, Value};

/// Parse EMBL text (one or more entries terminated by `//`).
pub fn parse_embl(text: &str) -> KResult<Value> {
    let mut entries = Vec::new();
    let mut id = String::new();
    let mut de = String::new();
    let mut os = String::new();
    let mut kw: Vec<String> = Vec::new();
    let mut seq = String::new();
    let mut in_seq = false;
    let mut saw_any = false;
    for (lno, line) in text.lines().enumerate() {
        let lno = lno + 1;
        if line.starts_with("//") {
            if id.is_empty() {
                return Err(KError::format(
                    "embl",
                    format!("entry terminated on line {lno} without an ID line"),
                ));
            }
            entries.push(Value::record_from(vec![
                ("id", Value::str(std::mem::take(&mut id))),
                ("description", Value::str(std::mem::take(&mut de))),
                ("organism", Value::str(std::mem::take(&mut os))),
                (
                    "keywords",
                    Value::set(kw.drain(..).map(Value::str).collect()),
                ),
                ("sequence", Value::str(std::mem::take(&mut seq))),
            ]));
            in_seq = false;
            saw_any = true;
            continue;
        }
        if in_seq {
            for c in line.chars() {
                if c.is_ascii_alphabetic() {
                    seq.push(c.to_ascii_uppercase());
                } else if !c.is_whitespace() && !c.is_ascii_digit() {
                    return Err(KError::format(
                        "embl",
                        format!("invalid sequence character '{c}' on line {lno}"),
                    ));
                }
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        // Line codes are two ASCII letters. On arbitrary (UTF-8) input the
        // byte index 2 can fall inside a multi-byte character, where
        // `split_at` would panic — report a format error instead.
        let cut = line.len().min(2);
        if !line.is_char_boundary(cut) {
            return Err(KError::format(
                "embl",
                format!("line {lno} does not start with an ASCII line code"),
            ));
        }
        let (code, rest) = line.split_at(cut);
        let rest = rest.trim_start();
        match code {
            "ID" => {
                id = rest
                    .split([';', ' '])
                    .next()
                    .unwrap_or_default()
                    .to_string();
                if id.is_empty() {
                    return Err(KError::format("embl", format!("empty ID on line {lno}")));
                }
            }
            "DE" => {
                if !de.is_empty() {
                    de.push(' ');
                }
                de.push_str(rest.trim_end_matches('.'));
            }
            "OS" => os = rest.to_string(),
            "KW" => {
                for k in rest.trim_end_matches('.').split(';') {
                    let k = k.trim();
                    if !k.is_empty() {
                        kw.push(k.to_string());
                    }
                }
            }
            "SQ" => in_seq = true,
            "XX" | "AC" | "DT" | "OC" | "RN" | "RT" | "RA" | "RL" | "FH" | "FT" | "CC" => {}
            other => {
                return Err(KError::format(
                    "embl",
                    format!("unknown line code '{other}' on line {lno}"),
                ))
            }
        }
    }
    if !saw_any && !id.is_empty() {
        return Err(KError::format("embl", "missing final // terminator"));
    }
    Ok(Value::list(entries))
}

/// Print entries as EMBL text.
pub fn print_embl(v: &Value) -> KResult<String> {
    let entries = v
        .elements()
        .ok_or_else(|| KError::format("embl", "expected a collection of records"))?;
    let mut out = String::new();
    for e in entries {
        let get_str = |f: &str| match e.project(f) {
            Some(Value::Str(s)) => Ok(s.to_string()),
            _ => Err(KError::format("embl", format!("missing string field '{f}'"))),
        };
        let id = get_str("id")?;
        let seq = get_str("sequence")?;
        if !seq.is_ascii() {
            // The 60-column wrap below slices at byte offsets.
            return Err(KError::format(
                "embl",
                format!("sequence of '{id}' contains non-ASCII characters"),
            ));
        }
        let _ = writeln!(out, "ID   {id}; DNA; {} BP.", seq.len());
        let _ = writeln!(out, "DE   {}.", get_str("description")?);
        let _ = writeln!(out, "OS   {}", get_str("organism")?);
        if let Some(kws) = e.project("keywords").and_then(Value::elements) {
            if !kws.is_empty() {
                let names: Vec<String> = kws
                    .iter()
                    .map(|k| match k {
                        Value::Str(s) => s.to_string(),
                        other => other.to_string(),
                    })
                    .collect();
                let _ = writeln!(out, "KW   {}.", names.join("; "));
            }
        }
        let _ = writeln!(out, "SQ   Sequence {} BP;", seq.len());
        for chunk in seq.as_bytes().chunks(60) {
            let _ = writeln!(out, "     {}", std::str::from_utf8(chunk).expect("ascii"));
        }
        let _ = writeln!(out, "//");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "ID   M81409; DNA; 16 BP.\nDE   Human perforin gene.\nOS   Homo sapiens\nKW   Exons; Base Sequence.\nSQ   Sequence 16 BP;\n     ACGTACGTAC GTACGT\n//\n";

    #[test]
    fn parse_entry() {
        let v = parse_embl(SAMPLE).unwrap();
        assert_eq!(v.len(), Some(1));
        let e = &v.elements().unwrap()[0];
        assert_eq!(e.project("id"), Some(&Value::str("M81409")));
        assert_eq!(e.project("organism"), Some(&Value::str("Homo sapiens")));
        assert_eq!(
            e.project("keywords"),
            Some(&Value::set(vec![
                Value::str("Base Sequence"),
                Value::str("Exons")
            ]))
        );
        assert_eq!(e.project("sequence"), Some(&Value::str("ACGTACGTACGTACGT")));
    }

    #[test]
    fn roundtrip() {
        let v = parse_embl(SAMPLE).unwrap();
        let text = print_embl(&v).unwrap();
        assert_eq!(parse_embl(&text).unwrap(), v);
    }

    #[test]
    fn multiple_entries() {
        let text = format!("{SAMPLE}{SAMPLE}");
        let v = parse_embl(&text).unwrap();
        assert_eq!(v.len(), Some(2));
    }

    #[test]
    fn errors() {
        assert!(parse_embl("DE   no id\n//\n").is_err());
        assert!(parse_embl("ZZ   bogus code\n//\n").is_err());
        assert!(parse_embl("ID   X;\nSQ  ;\nAC!GT\n//\n").is_err());
    }
}
