//! Fuzz-style property tests: the flat-file parsers must return `Err` —
//! never panic — on arbitrary input, including multi-byte UTF-8 at every
//! position (the EMBL line-code `split_at(2)` used to panic when byte 2
//! fell inside a character), and the printers must reject (not slice
//! through) non-ASCII sequence values.

use bio_formats::{parse_embl, parse_fasta, parse_gcg, print_embl, print_fasta, print_gcg};
use kleisli_core::Value;
use proptest::prelude::*;

/// Soup of newlines, format-significant ASCII ("ID", "SQ", "//", ">",
/// "..", digits, separators) and 2/3-byte UTF-8 characters, so the
/// generated texts both wander deep into the parsers' state machines and
/// hit non-ASCII at arbitrary byte offsets.
fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        "[A-Za-z0-9;:./> é€µΩ中\n-]{0,12}",
        0..8,
    )
    .prop_map(|lines| lines.join("\n"))
}

/// Like [`soup`] but each chunk is prefixed by a plausible format line,
/// steering generation toward the interesting parse paths.
fn seeded_soup() -> impl Strategy<Value = String> {
    (
        prop_oneof![
            Just("ID   M81409; DNA; 4 BP.\n"),
            Just("SQ   Sequence 4 BP;\n"),
            Just(">id desc\n"),
            Just("X  Length: 4  Check: 0  ..\n"),
            Just("//\n"),
        ],
        soup(),
    )
        .prop_map(|(seed, tail)| format!("{seed}{tail}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parsers_never_panic_on_arbitrary_input(text in soup(), seeded in seeded_soup()) {
        for t in [&text, &seeded] {
            // Ok or Err are both acceptable; reaching here at all is the
            // property (a panic fails the test).
            let _ = parse_embl(t);
            let _ = parse_fasta(t);
            let _ = parse_gcg(t);
        }
    }

    #[test]
    fn printers_reject_non_ascii_sequences(seq in "[a-zé€Ω]{1,12}") {
        let record = Value::record_from(vec![
            ("id", Value::str("x")),
            ("description", Value::str("")),
            ("organism", Value::str("Homo sapiens")),
            ("length", Value::Int(seq.chars().count() as i64)),
            ("check", Value::Int(0)),
            ("sequence", Value::str(&seq)),
        ]);
        let coll = Value::list(vec![record.clone()]);
        if seq.is_ascii() {
            prop_assert!(print_fasta(&coll).is_ok());
            prop_assert!(print_embl(&coll).is_ok());
            prop_assert!(print_gcg(&record).is_ok());
        } else {
            prop_assert!(print_fasta(&coll).is_err());
            prop_assert!(print_embl(&coll).is_err());
            prop_assert!(print_gcg(&record).is_err());
        }
    }
}

/// The original panic, pinned: a line whose third byte is not a char
/// boundary must produce a format error, not a `split_at` panic.
#[test]
fn embl_multibyte_line_code_is_an_error_not_a_panic() {
    for text in [
        "€ID x\n//\n", // 3-byte char at byte 0: boundary at 3, not 2
        "I€D x\n//\n", // 3-byte char at byte 1: boundaries 1 and 4
        "中中中\n//\n",
        "é\n", // one 2-byte char: boundary at 2 == len, unknown code
    ] {
        assert!(parse_embl(text).is_err(), "must reject {text:?}");
    }
    // Byte 2 on a boundary still splits fine: "ID" + junk id parses.
    assert!(parse_embl("ID€  x\n//\n").is_ok());
}
