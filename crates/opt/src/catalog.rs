//! What the optimizer knows about registered data sources.

use kleisli_core::{Capabilities, TableStats};

/// Capabilities and statistics of registered sources, as visible to the
/// optimizer. The session implements this over its driver registry; tests
/// use [`NullCatalog`] or [`StaticCatalog`].
pub trait SourceCatalog {
    /// Capabilities of the named driver, if registered.
    fn capabilities(&self, driver: &str) -> Option<Capabilities>;

    /// Statistics (including the schema) of a table served by `driver`.
    /// The paper notes such statistics are often unavailable for remote
    /// sources; rules that need them must cope with `None`.
    fn table_stats(&self, driver: &str, table: &str) -> Option<TableStats>;
}

/// A catalog that knows nothing; statistics-gated rules will not fire.
pub struct NullCatalog;

impl SourceCatalog for NullCatalog {
    fn capabilities(&self, _driver: &str) -> Option<Capabilities> {
        None
    }
    fn table_stats(&self, _driver: &str, _table: &str) -> Option<TableStats> {
        None
    }
}

/// A catalog built from fixed entries — the "statically stored statistics
/// from commonly used data sources" the paper says they were adding.
#[derive(Default)]
pub struct StaticCatalog {
    drivers: Vec<(String, Capabilities)>,
    tables: Vec<(String, String, TableStats)>,
}

impl StaticCatalog {
    pub fn new() -> StaticCatalog {
        StaticCatalog::default()
    }

    pub fn add_driver(&mut self, name: impl Into<String>, caps: Capabilities) -> &mut Self {
        self.drivers.push((name.into(), caps));
        self
    }

    pub fn add_table(
        &mut self,
        driver: impl Into<String>,
        table: impl Into<String>,
        stats: TableStats,
    ) -> &mut Self {
        self.tables.push((driver.into(), table.into(), stats));
        self
    }
}

impl SourceCatalog for StaticCatalog {
    fn capabilities(&self, driver: &str) -> Option<Capabilities> {
        self.drivers
            .iter()
            .find(|(n, _)| n == driver)
            .map(|(_, c)| c.clone())
    }

    fn table_stats(&self, driver: &str, table: &str) -> Option<TableStats> {
        self.tables
            .iter()
            .find(|(d, t, _)| d == driver && t == table)
            .map(|(_, _, s)| s.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_catalog_lookups() {
        let mut c = StaticCatalog::new();
        c.add_driver(
            "GDB",
            Capabilities {
                sql: true,
                ..Default::default()
            },
        );
        c.add_table(
            "GDB",
            "locus",
            TableStats {
                rows: 100,
                columns: vec!["locus_id".into(), "locus_symbol".into()],
                ..Default::default()
            },
        );
        assert!(c.capabilities("GDB").unwrap().sql);
        assert!(c.capabilities("nope").is_none());
        assert_eq!(c.table_stats("GDB", "locus").unwrap().rows, 100);
        assert!(c.table_stats("GDB", "other").is_none());
    }
}
