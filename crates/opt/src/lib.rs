//! # kleisli-opt
//!
//! The compile-time, rewrite-rule query optimizer of the Kleisli
//! reproduction (Section 4 of the paper). Rules are grouped into rule sets
//! applied bottom-up or top-down to fixpoint:
//!
//! 1. **resolve** — partial evaluation: beta reduction, let inlining,
//!    rule R4 (record projection), case dispatch, constant folding, and
//!    lowering constant driver calls to static requests;
//! 2. **monadic** — the strongly normalizing monad rules R1 (vertical
//!    fusion), R2 (horizontal fusion), R3 (filter promotion) and the unit
//!    laws;
//! 3. **pushdown** — migrating selections/projections/joins into SQL and
//!    projections/variant extractions into Entrez path expressions;
//! 4. **joins** — introducing the blocked / indexed nested-loop join
//!    operators for joins that must run locally;
//! 5. **cache** — memoizing outer-independent remote subqueries;
//! 6. **parallel** — bounded-concurrency retrieval for remote calls in
//!    inner loops;
//! 7. **batch** — marking remote inner loops over batching-capable
//!    servers so the executor folds per-element requests into multi-key
//!    wire round-trips (IN-list / multi-uid pushdown).

pub mod catalog;
pub mod engine;
pub mod rules;

pub use catalog::{NullCatalog, SourceCatalog, StaticCatalog};
pub use engine::{OptConfig, Rule, RuleCtx, RuleSet, Strategy, TraceEntry};

use std::sync::Arc;

use nrc::Expr;

/// Run the full optimization pipeline under `config` over a shared plan
/// handle, returning the rewritten plan and the trace of fired rules.
///
/// The pipeline is sharing-preserving end to end: when no rule fires in
/// any set, the returned handle is pointer-equal to the input, and in the
/// common case only the rewritten spine of the plan is freshly allocated.
pub fn optimize_shared(
    e: Arc<Expr>,
    catalog: &dyn SourceCatalog,
    config: &OptConfig,
) -> (Arc<Expr>, Vec<TraceEntry>) {
    let ctx = RuleCtx { catalog, config };
    let mut trace = Vec::new();
    let mut e = rules::resolve::rule_set().run(e, &ctx, &mut trace);
    // Pushdown runs twice: once on the freshly resolved form — vertical
    // fusion can merge a consumer loop into a pushable producer chain and
    // hide it from the SQL recognizer — and once after normalization,
    // which conversely exposes chains the sugar obscured.
    if config.enable_pushdown {
        e = rules::pushdown::rule_set().run(e, &ctx, &mut trace);
    }
    if config.enable_monadic {
        // Unit laws introduce lets that the resolve set then inlines,
        // which can expose further fusion; two rounds reach a fixpoint on
        // every query in the test suite.
        for _ in 0..2 {
            e = rules::monadic::rule_set().run(e, &ctx, &mut trace);
            e = rules::resolve::rule_set().run(e, &ctx, &mut trace);
        }
    }
    if config.enable_pushdown {
        e = rules::pushdown::rule_set().run(e, &ctx, &mut trace);
    }
    if config.enable_joins {
        e = rules::joins::rule_set().run(e, &ctx, &mut trace);
    }
    if config.enable_cache {
        e = rules::cache::rule_set().run(e, &ctx, &mut trace);
    }
    if config.enable_parallel {
        e = rules::parallel::rule_set().run(e, &ctx, &mut trace);
    }
    // Batching runs last: it only *marks* ParExt nodes (advisory for the
    // executor), and every substituting rewrite above drops stale marks.
    if config.enable_batching {
        e = rules::batch::rule_set().run(e, &ctx, &mut trace);
    }
    (e, trace)
}

/// Owned-value convenience over [`optimize_shared`]. `Expr` is a cheap
/// handle (its children are `Arc`s), so the wrapping costs one shallow
/// clone of the root node.
pub fn optimize(
    e: Expr,
    catalog: &dyn SourceCatalog,
    config: &OptConfig,
) -> (Expr, Vec<TraceEntry>) {
    let (out, trace) = optimize_shared(Arc::new(e), catalog, config);
    (Arc::try_unwrap(out).unwrap_or_else(|a| (*a).clone()), trace)
}

/// Optimize with everything enabled and no source information.
pub fn optimize_default(e: Expr) -> (Expr, Vec<TraceEntry>) {
    optimize(e, &NullCatalog, &OptConfig::default())
}

/// [`optimize_default`] over a shared handle.
pub fn optimize_default_shared(e: Arc<Expr>) -> (Arc<Expr>, Vec<TraceEntry>) {
    optimize_shared(e, &NullCatalog, &OptConfig::default())
}
