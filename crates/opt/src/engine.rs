//! The rewrite-rule engine.
//!
//! "Optimization of queries is done entirely at compile time using rewrite
//! rules. ... new rules can be specified by the designer of the system and
//! grouped into rule sets along with an indication of how they are to be
//! applied, e.g. bottom-up or top-down with respect to the tree of
//! subexpressions and how many iterations of a rule set should be applied"
//! (Section 4).

use std::collections::HashMap;
use std::sync::Arc;

use nrc::Expr;

use crate::catalog::SourceCatalog;

/// How a rule set walks the expression tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Children are rewritten before their parent.
    BottomUp,
    /// The parent is rewritten before its children.
    TopDown,
}

/// A single named rewrite rule. Returns `Some(new)` when it fires.
pub struct Rule {
    pub name: &'static str,
    pub apply: fn(&Expr, &RuleCtx<'_>) -> Option<Expr>,
}

/// Context available to rules: source capabilities/statistics and tuning
/// knobs.
pub struct RuleCtx<'a> {
    pub catalog: &'a dyn SourceCatalog,
    pub config: &'a OptConfig,
}

/// Optimizer configuration. The `enable_*` switches exist so benchmarks can
/// ablate individual optimizations. `PartialEq` makes the config usable as
/// part of the session plan-cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptConfig {
    pub enable_monadic: bool,
    pub enable_pushdown: bool,
    pub enable_joins: bool,
    pub enable_cache: bool,
    pub enable_parallel: bool,
    /// Mark remote inner loops over batching-capable servers with a
    /// [`nrc::BatchSpec`] (IN-list / multi-uid pushdown).
    pub enable_batching: bool,
    /// Memoize per-subplan rewrite results within each rule-set fixpoint,
    /// keyed by `Arc` identity: a subtree shared by many parents (or
    /// repeated across passes once it has normalized) is rewritten once
    /// instead of once per occurrence. Off only for benchmarks measuring
    /// the unmemoized engine.
    pub enable_rewrite_memo: bool,
    /// Block size for blocked nested-loop joins.
    pub join_block_size: usize,
    /// Concurrency used when a server does not declare a limit.
    pub default_concurrency: usize,
    /// Distinct-key floor below which a batch-marked loop skips warm-up:
    /// a handful of keys is served as well by overlapped round-trips,
    /// without delaying first output behind one batched request.
    pub min_batch_keys: usize,
    /// Upper bound on passes per rule set (safety net; the monad rules are
    /// strongly normalizing so the bound is rarely reached).
    pub max_passes: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            enable_monadic: true,
            enable_pushdown: true,
            enable_joins: true,
            enable_cache: true,
            enable_parallel: true,
            enable_batching: true,
            enable_rewrite_memo: true,
            join_block_size: 256,
            default_concurrency: 5,
            min_batch_keys: 4,
            max_passes: 20,
        }
    }
}

impl OptConfig {
    /// Everything off — the unoptimized baseline for experiments.
    pub fn none() -> OptConfig {
        OptConfig {
            enable_monadic: false,
            enable_pushdown: false,
            enable_joins: false,
            enable_cache: false,
            enable_parallel: false,
            enable_batching: false,
            ..OptConfig::default()
        }
    }
}

/// One fired rule, recorded for `explain` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub rule_set: &'static str,
    pub rule: &'static str,
    pub pass: usize,
}

/// A named group of rules applied with a strategy until fixpoint (bounded
/// by `max_passes`).
pub struct RuleSet {
    pub name: &'static str,
    pub strategy: Strategy,
    pub rules: Vec<Rule>,
}

/// Per-fixpoint memo table of the rewrite engine: input subplan identity
/// (`Arc` address) → rewritten subplan.
///
/// Soundness rests on two facts. Rules are pure functions of the subtree
/// and the (constant) rule context, so one_pass is deterministic and its
/// result is reusable for every occurrence of the same node — this is what
/// turns a rewrite over a DAG with shared subtrees from "once per
/// occurrence" into "once per distinct subplan". And every key's `Arc` is
/// retained in `keep` for the lifetime of the table, so a keyed address
/// can never be freed and reused by an unrelated allocation while the
/// entry is live.
///
/// The table persists across the passes of one [`RuleSet::run`]: a shared
/// subtree that reached its local fixpoint in pass *n* is looked up, not
/// re-walked, in pass *n+1*. Unshared nodes (strong count 1) are never
/// tracked — they cannot repeat, and skipping them keeps no-op passes as
/// cheap as the unmemoized engine's.
struct RewriteMemo {
    enabled: bool,
    map: HashMap<usize, Arc<Expr>>,
    keep: Vec<Arc<Expr>>,
}

impl RewriteMemo {
    fn new(enabled: bool) -> RewriteMemo {
        RewriteMemo {
            enabled,
            map: HashMap::new(),
            keep: Vec::new(),
        }
    }

    fn get(&self, e: &Arc<Expr>) -> Option<Arc<Expr>> {
        if !self.enabled {
            return None;
        }
        self.map.get(&(Arc::as_ptr(e) as usize)).map(Arc::clone)
    }

    fn insert(&mut self, input: &Arc<Expr>, output: &Arc<Expr>) {
        if !self.enabled {
            return;
        }
        self.map
            .insert(Arc::as_ptr(input) as usize, Arc::clone(output));
        self.keep.push(Arc::clone(input));
    }
}

impl RuleSet {
    /// Run the rule set to fixpoint over a shared plan handle.
    ///
    /// The whole traversal is *sharing-preserving*: a pass over a subtree
    /// in which no rule fires hands back the very same `Arc` (pointer-
    /// equal) and allocates nothing, so the fixpoint test is a single
    /// `Arc::ptr_eq` on the root instead of a structural `PartialEq` walk.
    ///
    /// With `config.enable_rewrite_memo` (the default), per-subplan
    /// results are additionally memoized on `Arc` identity for the whole
    /// fixpoint, so a subtree shared by many parents is rewritten once —
    /// see `RewriteMemo` (private to this module). A memo hit also skips re-recording trace
    /// entries: the trace reports rewrites per distinct subplan, not per
    /// occurrence.
    pub fn run(
        &self,
        mut e: Arc<Expr>,
        ctx: &RuleCtx<'_>,
        trace: &mut Vec<TraceEntry>,
    ) -> Arc<Expr> {
        let mut memo = RewriteMemo::new(ctx.config.enable_rewrite_memo);
        for pass in 0..ctx.config.max_passes {
            let next = self.one_pass(&e, ctx, trace, pass, &mut memo);
            if Arc::ptr_eq(&next, &e) {
                break; // fixpoint: no rule fired anywhere in the plan
            }
            e = next;
        }
        e
    }

    /// Owned-value convenience over [`RuleSet::run`] for tests and callers
    /// that do not track sharing.
    pub fn run_owned(&self, e: Expr, ctx: &RuleCtx<'_>, trace: &mut Vec<TraceEntry>) -> Expr {
        let out = self.run(Arc::new(e), ctx, trace);
        Arc::try_unwrap(out).unwrap_or_else(|a| (*a).clone())
    }

    fn one_pass(
        &self,
        e: &Arc<Expr>,
        ctx: &RuleCtx<'_>,
        trace: &mut Vec<TraceEntry>,
        pass: usize,
        memo: &mut RewriteMemo,
    ) -> Arc<Expr> {
        // Only *shared* nodes are worth tracking: a node referenced once
        // can never yield a memo hit within a pass, and every key the
        // table does hold is kept alive by `keep` (count ≥ 2), so a
        // strong count of 1 proves absence. This keeps the no-op pass
        // over an unshared plan at one atomic load per node — the
        // PR-1 "a no-op pass allocates nothing" property — while shared
        // subtrees (hand-shared or hash-consed) are rewritten once.
        let track = memo.enabled && Arc::strong_count(e) > 1;
        if track {
            if let Some(hit) = memo.get(e) {
                return hit;
            }
        }
        let out = match self.strategy {
            Strategy::BottomUp => {
                let e2 = Expr::map_children_shared(e, &mut |c| {
                    self.one_pass(c, ctx, trace, pass, memo)
                });
                self.apply_here(e2, ctx, trace, pass)
            }
            Strategy::TopDown => {
                let e2 = self.apply_here(Arc::clone(e), ctx, trace, pass);
                Expr::map_children_shared(&e2, &mut |c| self.one_pass(c, ctx, trace, pass, memo))
            }
        };
        if track {
            memo.insert(e, &out);
        }
        out
    }

    fn apply_here(
        &self,
        mut e: Arc<Expr>,
        ctx: &RuleCtx<'_>,
        trace: &mut Vec<TraceEntry>,
        pass: usize,
    ) -> Arc<Expr> {
        // Keep applying rules at this node until none fires (bounded).
        'outer: for _ in 0..ctx.config.max_passes {
            for rule in &self.rules {
                if let Some(new) = (rule.apply)(&e, ctx) {
                    debug_assert_ne!(
                        new, *e,
                        "rule '{}' returned an unchanged expression",
                        rule.name
                    );
                    trace.push(TraceEntry {
                        rule_set: self.name,
                        rule: rule.name,
                        pass,
                    });
                    e = Arc::new(new);
                    continue 'outer;
                }
            }
            break;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::NullCatalog;
    use nrc::Prim;

    fn fold_if(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
        if let Expr::If(c, t, f) = e {
            if let Expr::Const(kleisli_core::Value::Bool(b)) = &**c {
                return Some(if *b { (**t).clone() } else { (**f).clone() });
            }
        }
        None
    }

    #[test]
    fn bottom_up_reaches_fixpoint_and_traces() {
        let set = RuleSet {
            name: "test",
            strategy: Strategy::BottomUp,
            rules: vec![Rule {
                name: "if-const",
                apply: fold_if,
            }],
        };
        // if true then (if false then 1 else 2) else 3  ==>  2
        let e = Expr::if_(
            Expr::bool(true),
            Expr::if_(Expr::bool(false), Expr::int(1), Expr::int(2)),
            Expr::int(3),
        );
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        let out = set.run_owned(e, &ctx, &mut trace);
        assert_eq!(out, Expr::int(2));
        assert_eq!(trace.len(), 2);
        assert!(trace.iter().all(|t| t.rule == "if-const"));
    }

    #[test]
    fn non_matching_rules_leave_expression_alone() {
        let set = RuleSet {
            name: "test",
            strategy: Strategy::TopDown,
            rules: vec![Rule {
                name: "if-const",
                apply: fold_if,
            }],
        };
        let e = Arc::new(Expr::prim(Prim::Add, vec![Expr::int(1), Expr::int(2)]));
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        let out = set.run(Arc::clone(&e), &ctx, &mut trace);
        assert!(
            Arc::ptr_eq(&out, &e),
            "a pass with no firing rules must return the same plan handle"
        );
        assert!(trace.is_empty());
    }

    #[test]
    fn shared_subtrees_are_rewritten_once_when_memoized() {
        let set = || RuleSet {
            name: "test",
            strategy: Strategy::BottomUp,
            rules: vec![Rule {
                name: "if-const",
                apply: fold_if,
            }],
        };
        // union(S, S): the SAME Arc twice; the rule fires inside S.
        let shared = Arc::new(Expr::if_(Expr::bool(true), Expr::int(1), Expr::int(2)));
        let e = Arc::new(Expr::Union(
            kleisli_core::CollKind::Set,
            Arc::clone(&shared),
            Arc::clone(&shared),
        ));
        let catalog = NullCatalog;
        let run_with = |memo: bool| {
            let config = OptConfig {
                enable_rewrite_memo: memo,
                ..OptConfig::default()
            };
            let ctx = RuleCtx {
                catalog: &catalog,
                config: &config,
            };
            let mut trace = Vec::new();
            let out = set().run(Arc::clone(&e), &ctx, &mut trace);
            (out, trace)
        };
        let (memo_out, memo_trace) = run_with(true);
        let (plain_out, plain_trace) = run_with(false);
        assert_eq!(*memo_out, *plain_out, "memoization must not change plans");
        assert_eq!(plain_trace.len(), 2, "unmemoized: once per occurrence");
        assert_eq!(memo_trace.len(), 1, "memoized: once per distinct subplan");
        // The memoized result keeps (in fact, increases) sharing: both
        // occurrences of the rewritten subtree are one Arc.
        let Expr::Union(_, a, b) = &*memo_out else {
            panic!("shape changed");
        };
        assert!(Arc::ptr_eq(a, b), "shared input must stay shared output");
    }

    #[test]
    fn unchanged_subtrees_stay_shared_when_a_sibling_rewrites() {
        let set = RuleSet {
            name: "test",
            strategy: Strategy::BottomUp,
            rules: vec![Rule {
                name: "if-const",
                apply: fold_if,
            }],
        };
        // union( U{...|x<-S} , if true then {1} else {2} ): the left arm is
        // untouched by the rewrite and must come back pointer-equal.
        let left = Arc::new(Expr::ext(
            kleisli_core::CollKind::Set,
            "x",
            Expr::single(kleisli_core::CollKind::Set, Expr::var("x")),
            Expr::var("S"),
        ));
        let right = Expr::if_(
            Expr::bool(true),
            Expr::single(kleisli_core::CollKind::Set, Expr::int(1)),
            Expr::single(kleisli_core::CollKind::Set, Expr::int(2)),
        );
        let e = Arc::new(Expr::Union(
            kleisli_core::CollKind::Set,
            Arc::clone(&left),
            Arc::new(right),
        ));
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        let out = set.run(e, &ctx, &mut trace);
        assert_eq!(trace.len(), 1);
        let Expr::Union(_, l, r) = &*out else {
            panic!("unexpected {out}");
        };
        assert!(
            Arc::ptr_eq(l, &left),
            "untouched sibling must be pointer-shared, not rebuilt"
        );
        assert_eq!(**r, Expr::single(kleisli_core::CollKind::Set, Expr::int(1)));
    }
}
