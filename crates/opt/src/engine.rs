//! The rewrite-rule engine.
//!
//! "Optimization of queries is done entirely at compile time using rewrite
//! rules. ... new rules can be specified by the designer of the system and
//! grouped into rule sets along with an indication of how they are to be
//! applied, e.g. bottom-up or top-down with respect to the tree of
//! subexpressions and how many iterations of a rule set should be applied"
//! (Section 4).

use nrc::Expr;

use crate::catalog::SourceCatalog;

/// How a rule set walks the expression tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Children are rewritten before their parent.
    BottomUp,
    /// The parent is rewritten before its children.
    TopDown,
}

/// A single named rewrite rule. Returns `Some(new)` when it fires.
pub struct Rule {
    pub name: &'static str,
    pub apply: fn(&Expr, &RuleCtx<'_>) -> Option<Expr>,
}

/// Context available to rules: source capabilities/statistics and tuning
/// knobs.
pub struct RuleCtx<'a> {
    pub catalog: &'a dyn SourceCatalog,
    pub config: &'a OptConfig,
}

/// Optimizer configuration. The `enable_*` switches exist so benchmarks can
/// ablate individual optimizations.
#[derive(Debug, Clone)]
pub struct OptConfig {
    pub enable_monadic: bool,
    pub enable_pushdown: bool,
    pub enable_joins: bool,
    pub enable_cache: bool,
    pub enable_parallel: bool,
    /// Block size for blocked nested-loop joins.
    pub join_block_size: usize,
    /// Concurrency used when a server does not declare a limit.
    pub default_concurrency: usize,
    /// Upper bound on passes per rule set (safety net; the monad rules are
    /// strongly normalizing so the bound is rarely reached).
    pub max_passes: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            enable_monadic: true,
            enable_pushdown: true,
            enable_joins: true,
            enable_cache: true,
            enable_parallel: true,
            join_block_size: 256,
            default_concurrency: 5,
            max_passes: 20,
        }
    }
}

impl OptConfig {
    /// Everything off — the unoptimized baseline for experiments.
    pub fn none() -> OptConfig {
        OptConfig {
            enable_monadic: false,
            enable_pushdown: false,
            enable_joins: false,
            enable_cache: false,
            enable_parallel: false,
            ..OptConfig::default()
        }
    }
}

/// One fired rule, recorded for `explain` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub rule_set: &'static str,
    pub rule: &'static str,
    pub pass: usize,
}

/// A named group of rules applied with a strategy until fixpoint (bounded
/// by `max_passes`).
pub struct RuleSet {
    pub name: &'static str,
    pub strategy: Strategy,
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// Run the rule set to fixpoint. Appends fired rules to `trace`.
    pub fn run(&self, mut e: Expr, ctx: &RuleCtx<'_>, trace: &mut Vec<TraceEntry>) -> Expr {
        for pass in 0..ctx.config.max_passes {
            let mut changed = false;
            e = self.one_pass(e, ctx, trace, pass, &mut changed);
            if !changed {
                break;
            }
        }
        e
    }

    fn one_pass(
        &self,
        e: Expr,
        ctx: &RuleCtx<'_>,
        trace: &mut Vec<TraceEntry>,
        pass: usize,
        changed: &mut bool,
    ) -> Expr {
        match self.strategy {
            Strategy::BottomUp => {
                let e = e.map_children(&mut |c| self.one_pass(c, ctx, trace, pass, changed));
                self.apply_here(e, ctx, trace, pass, changed)
            }
            Strategy::TopDown => {
                let e = self.apply_here(e, ctx, trace, pass, changed);
                e.map_children(&mut |c| self.one_pass(c, ctx, trace, pass, changed))
            }
        }
    }

    fn apply_here(
        &self,
        mut e: Expr,
        ctx: &RuleCtx<'_>,
        trace: &mut Vec<TraceEntry>,
        pass: usize,
        changed: &mut bool,
    ) -> Expr {
        // Keep applying rules at this node until none fires (bounded).
        'outer: for _ in 0..ctx.config.max_passes {
            for rule in &self.rules {
                if let Some(new) = (rule.apply)(&e, ctx) {
                    debug_assert_ne!(
                        new, e,
                        "rule '{}' returned an unchanged expression",
                        rule.name
                    );
                    trace.push(TraceEntry {
                        rule_set: self.name,
                        rule: rule.name,
                        pass,
                    });
                    *changed = true;
                    e = new;
                    continue 'outer;
                }
            }
            break;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::NullCatalog;
    use nrc::Prim;

    fn fold_if(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
        if let Expr::If(c, t, f) = e {
            if let Expr::Const(kleisli_core::Value::Bool(b)) = &**c {
                return Some(if *b { (**t).clone() } else { (**f).clone() });
            }
        }
        None
    }

    #[test]
    fn bottom_up_reaches_fixpoint_and_traces() {
        let set = RuleSet {
            name: "test",
            strategy: Strategy::BottomUp,
            rules: vec![Rule {
                name: "if-const",
                apply: fold_if,
            }],
        };
        // if true then (if false then 1 else 2) else 3  ==>  2
        let e = Expr::if_(
            Expr::bool(true),
            Expr::if_(Expr::bool(false), Expr::int(1), Expr::int(2)),
            Expr::int(3),
        );
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        let out = set.run(e, &ctx, &mut trace);
        assert_eq!(out, Expr::int(2));
        assert_eq!(trace.len(), 2);
        assert!(trace.iter().all(|t| t.rule == "if-const"));
    }

    #[test]
    fn non_matching_rules_leave_expression_alone() {
        let set = RuleSet {
            name: "test",
            strategy: Strategy::TopDown,
            rules: vec![Rule {
                name: "if-const",
                apply: fold_if,
            }],
        };
        let e = Expr::Prim(Prim::Add, vec![Expr::int(1), Expr::int(2)]);
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        let out = set.run(e.clone(), &ctx, &mut trace);
        assert_eq!(out, e);
        assert!(trace.is_empty());
    }
}
