//! Rule sets, grouped as in the paper: the monadic core plus the
//! non-monadic sets (pushdown, joins, caching, concurrency).

pub mod batch;
pub mod cache;
pub mod joins;
pub mod monadic;
pub mod parallel;
pub mod pushdown;
pub mod resolve;
