//! The monadic rule set — the paper's core optimizations R1–R3, plus the
//! unit laws of the monad. These rules are strongly normalizing (Section
//! 4), so the engine's fixpoint loop always terminates.
//!
//! Kind side-conditions: because CPL lets a generator draw from a
//! collection of a different kind than the comprehension produces, each
//! fusion rule checks that flattening the intermediate collection cannot
//! change multiplicities (bags) or order (lists). `fusion_ok` encodes the
//! legal combinations.

use std::sync::Arc;

use kleisli_core::CollKind;
use nrc::{fresh, Expr};

use crate::engine::{Rule, RuleCtx, RuleSet, Strategy};

/// Build the monadic rule set.
pub fn rule_set() -> RuleSet {
    RuleSet {
        name: "monadic",
        strategy: Strategy::BottomUp,
        rules: vec![
            Rule {
                name: "ext-empty-source",
                apply: ext_empty_source,
            },
            Rule {
                name: "ext-empty-body",
                apply: ext_empty_body,
            },
            Rule {
                name: "ext-singleton-source",
                apply: ext_singleton_source,
            },
            Rule {
                name: "vertical-fusion (R1)",
                apply: vertical_fusion,
            },
            Rule {
                name: "horizontal-fusion (R2)",
                apply: horizontal_fusion,
            },
            Rule {
                name: "filter-promotion (R3)",
                apply: filter_promotion,
            },
            Rule {
                name: "union-empty",
                apply: union_empty,
            },
            Rule {
                name: "right-unit",
                apply: right_unit,
            },
        ],
    }
}

/// The collection kind an expression *definitely* produces, when it can be
/// determined syntactically.
fn definite_kind(e: &Expr) -> Option<CollKind> {
    match e {
        Expr::Const(v) => v.coll_kind(),
        Expr::Empty(k) | Expr::Single(k, _) | Expr::Union(k, ..) => Some(*k),
        Expr::Ext { kind, .. } | Expr::ParExt { kind, .. } | Expr::Join { kind, .. } => Some(*kind),
        Expr::Remote { .. } | Expr::RemoteApp { .. } => Some(CollKind::Set),
        Expr::Cached { expr, .. } => definite_kind(expr),
        Expr::Let { body, .. } => definite_kind(body),
        Expr::If(_, t, f) => {
            let kt = definite_kind(t)?;
            (definite_kind(f)? == kt).then_some(kt)
        }
        _ => None,
    }
}

/// Right unit law: `U{ {x} | \x <- e }  ==>  e`, valid only when `e` is
/// known to produce the comprehension's own collection kind.
fn right_unit(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Ext {
        kind,
        var,
        body,
        source,
    } = e
    else {
        return None;
    };
    let Expr::Single(bkind, inner) = &**body else {
        return None;
    };
    if bkind != kind {
        return None;
    }
    if !matches!(&**inner, Expr::Var(v) if v == var) {
        return None;
    }
    (definite_kind(source) == Some(*kind)).then(|| (**source).clone())
}

/// May `U_outer{ e | \x <- inner-collection }` be fused with the producer
/// of that inner collection?
///
/// * outer = set: always (dedup/sort at the end erases intermediate
///   multiplicity and order);
/// * inner = outer: the classic monad associativity law;
/// * outer = bag, inner = list: flattening a list into a bag preserves
///   multiplicity.
///
/// Not allowed: inner = set under bag/list output (dedup would be lost),
/// and inner = bag under list output (canonical bag order differs from
/// generation order).
fn fusion_ok(outer: CollKind, inner: CollKind) -> bool {
    outer == CollKind::Set || inner == outer || (outer == CollKind::Bag && inner == CollKind::List)
}

/// `U{ e | \x <- {} }  ==>  {}`
fn ext_empty_source(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Ext { kind, source, .. } = e else {
        return None;
    };
    match &**source {
        Expr::Empty(_) => Some(Expr::Empty(*kind)),
        Expr::Const(v) if v.is_empty_coll() => Some(Expr::Empty(*kind)),
        _ => None,
    }
}

/// `U{ {} | \x <- e }  ==>  {}` — sound because sources are read-only.
fn ext_empty_body(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Ext { kind, body, .. } = e else {
        return None;
    };
    matches!(&**body, Expr::Empty(k) if k == kind).then(|| Expr::Empty(*kind))
}

/// `U{ e | \x <- {e'} }  ==>  let x = e' in e` (left unit law)
fn ext_singleton_source(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Ext {
        kind,
        var,
        body,
        source,
    } = e
    else {
        return None;
    };
    let Expr::Single(skind, elem) = &**source else {
        return None;
    };
    if !fusion_ok(*kind, *skind) {
        return None;
    }
    Some(Expr::Let {
        var: var.clone(),
        def: elem.clone(),
        body: body.clone(),
    })
}

/// Rule R1, vertical loop fusion:
/// `U{ e1 | \x <- U{ e2 | \y <- e3 } }  ==>  U{ U{ e1 | \x <- e2 } | \y <- e3 }`
fn vertical_fusion(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Ext {
        kind,
        var: x,
        body: e1,
        source,
    } = e
    else {
        return None;
    };
    let Expr::Ext {
        kind: inner_kind,
        var: y,
        body: e2,
        source: e3,
    } = &**source
    else {
        return None;
    };
    if !fusion_ok(*kind, *inner_kind) {
        return None;
    }
    // Inner pieces (e2's results) are flattened by the outer loop; the
    // fused form iterates the pieces directly, so the piece kind must also
    // be fusable into the outer kind — e2 produces `inner_kind` pieces.
    // Capture check: y must not appear free in e1.
    let (y, e2) = if e1.occurs_free(y) {
        let fy = fresh(y);
        let renamed = Expr::subst_shared(e2, y, &Arc::new(Expr::Var(fy.clone())));
        (fy, renamed)
    } else {
        (y.clone(), e2.clone())
    };
    Some(Expr::Ext {
        kind: *kind,
        var: y,
        body: Arc::new(Expr::Ext {
            kind: *kind,
            var: x.clone(),
            body: e1.clone(),
            source: e2,
        }),
        source: e3.clone(),
    })
}

/// Rule R2, horizontal loop fusion (sets and bags, **not** lists):
/// `U{ e1 | \x <- e } U U{ e2 | \x <- e }  ==>  U{ e1 U e2 | \x <- e }`
fn horizontal_fusion(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Union(kind, a, b) = e else {
        return None;
    };
    if *kind == CollKind::List {
        return None;
    }
    let Expr::Ext {
        kind: k1,
        var: x1,
        body: b1,
        source: s1,
    } = &**a
    else {
        return None;
    };
    let Expr::Ext {
        kind: k2,
        var: x2,
        body: b2,
        source: s2,
    } = &**b
    else {
        return None;
    };
    if k1 != kind || k2 != kind {
        return None;
    }
    if s1 != s2 {
        return None;
    }
    // Rename the second loop's variable to the first's.
    let b2 = if x1 == x2 {
        Arc::clone(b2)
    } else {
        Expr::subst_shared(b2, x2, &Arc::new(Expr::Var(x1.clone())))
    };
    Some(Expr::Ext {
        kind: *kind,
        var: x1.clone(),
        body: Arc::new(Expr::Union(*kind, b1.clone(), b2)),
        source: s1.clone(),
    })
}

/// Rule R3, filter promotion: a test independent of the loop variable moves
/// out of the loop:
/// `U{ if p then e1 else e2 | \x <- e }  ==>
///  if p then U{ e1 | \x <- e } else U{ e2 | \x <- e }`
fn filter_promotion(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Ext {
        kind,
        var,
        body,
        source,
    } = e
    else {
        return None;
    };
    let Expr::If(p, t, f) = &**body else {
        return None;
    };
    if p.occurs_free(var) {
        return None;
    }
    Some(Expr::if_(
        (**p).clone(),
        Expr::Ext {
            kind: *kind,
            var: var.clone(),
            body: t.clone(),
            source: source.clone(),
        },
        Expr::Ext {
            kind: *kind,
            var: var.clone(),
            body: f.clone(),
            source: source.clone(),
        },
    ))
}

/// `e U {} ==> e` and `{} U e ==> e`
fn union_empty(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Union(kind, a, b) = e else {
        return None;
    };
    let is_empty =
        |x: &Expr| matches!(x, Expr::Empty(_)) || matches!(x, Expr::Const(v) if v.is_empty_coll());
    if is_empty(a) {
        return Some((**b).clone());
    }
    if is_empty(b) {
        let _ = kind;
        return Some((**a).clone());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::NullCatalog;
    use crate::engine::OptConfig;
    use kleisli_core::Value;
    use kleisli_exec::{eval, Context, Env};

    fn normalize(e: Expr) -> Expr {
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        rule_set().run_owned(e, &ctx, &mut trace)
    }

    fn ints(range: std::ops::Range<i64>) -> Expr {
        Expr::Const(Value::set(range.map(Value::Int).collect()))
    }

    #[test]
    fn r1_fuses_producer_consumer() {
        // U{ {x+1} | \x <- U{ {y*2} | \y <- S } }
        let inner = Expr::ext(
            CollKind::Set,
            "y",
            Expr::single(
                CollKind::Set,
                Expr::prim(nrc::Prim::Mul, vec![Expr::var("y"), Expr::int(2)]),
            ),
            ints(0..10),
        );
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::prim(nrc::Prim::Add, vec![Expr::var("x"), Expr::int(1)]),
            ),
            inner,
        );
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let opt = normalize(e);
        // after fusion there is no Ext-over-Ext
        let mut nested = false;
        opt.visit(&mut |n| {
            if let Expr::Ext { source, .. } = n {
                if matches!(&**source, Expr::Ext { .. }) {
                    nested = true;
                }
            }
        });
        assert!(!nested, "fusion failed: {opt}");
        let after = eval(&opt, &Env::empty(), &Context::new()).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn r1_respects_list_order_restrictions() {
        // List output over a set source must NOT fuse through.
        let inner = Expr::ext(
            CollKind::Set,
            "y",
            Expr::single(CollKind::Set, Expr::var("y")),
            ints(0..5),
        );
        let e = Expr::ext(
            CollKind::List,
            "x",
            Expr::single(CollKind::List, Expr::var("x")),
            inner,
        );
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let after = eval(&normalize(e), &Env::empty(), &Context::new()).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn r2_fuses_independent_loops_over_same_source() {
        let mk = |off: i64| {
            Expr::ext(
                CollKind::Set,
                "x",
                Expr::single(
                    CollKind::Set,
                    Expr::prim(nrc::Prim::Add, vec![Expr::var("x"), Expr::int(off)]),
                ),
                ints(0..10),
            )
        };
        let e = Expr::union(CollKind::Set, mk(0), mk(100));
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let opt = normalize(e);
        let mut ext_count = 0;
        opt.visit(&mut |n| {
            if matches!(n, Expr::Ext { .. }) {
                ext_count += 1;
            }
        });
        assert_eq!(ext_count, 1, "horizontal fusion failed: {opt}");
        assert_eq!(eval(&opt, &Env::empty(), &Context::new()).unwrap(), before);
    }

    #[test]
    fn r2_does_not_apply_to_lists() {
        let mk = || {
            Expr::ext(
                CollKind::List,
                "x",
                Expr::single(CollKind::List, Expr::var("x")),
                Expr::Const(Value::list(vec![Value::Int(1), Value::Int(2)])),
            )
        };
        let e = Expr::union(CollKind::List, mk(), mk());
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let opt = normalize(e);
        assert_eq!(eval(&opt, &Env::empty(), &Context::new()).unwrap(), before);
        assert_eq!(
            before,
            Value::list(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(1),
                Value::Int(2)
            ])
        );
    }

    #[test]
    fn r3_hoists_loop_invariant_filter() {
        // U{ if p then {x} else {} | \x <- S }  with p independent of x
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::if_(
                Expr::var("p"),
                Expr::single(CollKind::Set, Expr::var("x")),
                Expr::Empty(CollKind::Set),
            ),
            ints(0..10),
        );
        let opt = normalize(e);
        assert!(matches!(opt, Expr::If(..)), "filter not promoted: {opt}");
        // ... and the else-branch loop collapsed to {}
        if let Expr::If(_, _, f) = &opt {
            assert_eq!(**f, Expr::Empty(CollKind::Set));
        }
    }

    #[test]
    fn r3_leaves_dependent_filters_alone() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::if_(
                Expr::eq(Expr::var("x"), Expr::int(3)),
                Expr::single(CollKind::Set, Expr::var("x")),
                Expr::Empty(CollKind::Set),
            ),
            ints(0..10),
        );
        let opt = normalize(e.clone());
        assert!(matches!(opt, Expr::Ext { .. }), "must stay a loop: {opt}");
        assert_eq!(
            eval(&opt, &Env::empty(), &Context::new()).unwrap(),
            Value::set(vec![Value::Int(3)])
        );
    }

    #[test]
    fn unit_laws() {
        // U{ e | \x <- {} } ==> {}
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::var("x")),
            Expr::Empty(CollKind::Set),
        );
        assert_eq!(normalize(e), Expr::Empty(CollKind::Set));
        // U{ {} | \x <- S } ==> {}
        let e = Expr::ext(CollKind::Set, "x", Expr::Empty(CollKind::Set), ints(0..9));
        assert_eq!(normalize(e), Expr::Empty(CollKind::Set));
        // U{ e | \x <- {a} } ==> let x = a in e (then inlined by resolve)
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::var("x")),
            Expr::single(CollKind::Set, Expr::int(42)),
        );
        let opt = normalize(e);
        assert!(matches!(opt, Expr::Let { .. }), "got {opt}");
    }

    #[test]
    fn vertical_fusion_avoids_capture() {
        // U{ {y} | \x <- U{ {x} | \y <- S } }  — outer body mentions a
        // *free* y; fusing must rename the inner binder.
        let inner = Expr::ext(
            CollKind::Set,
            "y",
            Expr::single(CollKind::Set, Expr::var("y")),
            ints(0..3),
        );
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::var("y")), // free y!
            inner,
        );
        let opt = normalize(e.clone());
        // y must still be free after optimization
        assert!(
            opt.occurs_free("y"),
            "free variable captured during fusion: {opt}"
        );
    }
}
