//! Subquery caching (Section 4): "As the system is fully compositional,
//! the inner relation in a join can sometimes be a subquery. To avoid
//! recomputation, we have therefore introduced an operator to cache the
//! result of a subquery ... Rules to recognize when the result of an inner
//! subquery can be cached check that the subquery doesn't depend on the
//! outer relation."

use std::sync::Arc;

use nrc::Expr;

use crate::engine::{Rule, RuleCtx, RuleSet, Strategy};

/// Build the cache rule set.
pub fn rule_set() -> RuleSet {
    RuleSet {
        name: "cache",
        strategy: Strategy::TopDown,
        rules: vec![Rule {
            name: "cache-inner-subquery",
            apply: cache_inner,
        }],
    }
}

/// Is this node a collection-producing subquery worth caching?
fn cacheable(e: &Expr) -> bool {
    match e {
        Expr::Ext { .. } | Expr::Remote { .. } | Expr::Join { .. } | Expr::Union(..) => {
            e.touches_remote() && e.free_vars().is_empty()
        }
        _ => false,
    }
}

/// Inside the body of a loop (or the right side of a join), wrap the
/// outermost closed remote subqueries in `Cached` so they are evaluated
/// once instead of once per outer element.
fn cache_inner(e: &Expr, ctx: &RuleCtx<'_>) -> Option<Expr> {
    if !ctx.config.enable_cache {
        return None;
    }
    match e {
        Expr::Ext {
            kind,
            var,
            body,
            source,
        } => {
            let new_body = wrap_outermost(body)?;
            Some(Expr::Ext {
                kind: *kind,
                var: var.clone(),
                body: new_body,
                source: source.clone(),
            })
        }
        Expr::ParExt {
            kind,
            var,
            body,
            source,
            max_in_flight,
            batch,
        } => {
            let new_body = wrap_outermost(body)?;
            Some(Expr::ParExt {
                kind: *kind,
                var: var.clone(),
                body: new_body,
                source: source.clone(),
                max_in_flight: *max_in_flight,
                batch: batch.clone(),
            })
        }
        _ => None,
    }
}

/// Wrap the outermost cacheable subexpressions of `e`; `None` if nothing
/// was wrapped. Never descends into already-cached subtrees. Sharing-
/// preserving: the wrapped subquery is referenced by `Arc`, never copied,
/// and untouched siblings stay pointer-shared.
fn wrap_outermost(e: &Arc<Expr>) -> Option<Arc<Expr>> {
    if matches!(&**e, Expr::Cached { .. }) {
        return None;
    }
    if cacheable(e) {
        // The id is the subplan's deterministic structural hash (not a
        // process-global counter): recompiling or re-running the same
        // query produces the same ids, so `Context` cache slots stay
        // stable across compiles, and two occurrences of the *same*
        // subquery in one plan share one slot instead of computing twice.
        return Some(Arc::new(Expr::Cached {
            id: nrc::plan_hash(e),
            expr: Arc::clone(e),
        }));
    }
    // otherwise try children (shallow: first level where something fires)
    let mut changed = false;
    let new = Expr::map_children_shared(e, &mut |c| {
        if changed {
            return Arc::clone(c); // one wrap per firing keeps the trace readable
        }
        match wrap_outermost(c) {
            Some(w) => {
                changed = true;
                w
            }
            None => Arc::clone(c),
        }
    });
    changed.then_some(new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::NullCatalog;
    use crate::engine::OptConfig;
    use kleisli_core::{CollKind, DriverRequest};

    fn run(e: Expr) -> Expr {
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        rule_set().run_owned(e, &ctx, &mut trace)
    }

    fn remote() -> Expr {
        Expr::Remote {
            driver: nrc::name("GDB"),
            request: DriverRequest::TableScan {
                table: "locus".into(),
                columns: None,
            },
        }
    }

    #[test]
    fn closed_remote_subquery_in_loop_body_is_cached() {
        // U{ U{ {[a=x, b=y]} | \y <- REMOTE } | \x <- S }
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::ext(
                CollKind::Set,
                "y",
                Expr::single(
                    CollKind::Set,
                    Expr::record(vec![("a", Expr::var("x")), ("b", Expr::var("y"))]),
                ),
                remote(),
            ),
            Expr::var("S"),
        );
        let out = run(e);
        let mut cached = 0;
        out.visit(&mut |n| {
            if matches!(n, Expr::Cached { .. }) {
                cached += 1;
            }
        });
        assert_eq!(cached, 1, "{out}");
    }

    #[test]
    fn dependent_subquery_is_not_cached() {
        // inner remote request depends on x via RemoteApp(x): free var
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::RemoteApp {
                driver: nrc::name("GenBank"),
                arg: Arc::new(Expr::var("x")),
            },
            Expr::var("S"),
        );
        let out = run(e.clone());
        assert_eq!(out, e);
    }

    #[test]
    fn cache_is_not_wrapped_twice() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::ext(
                CollKind::Set,
                "y",
                Expr::single(CollKind::Set, Expr::var("y")),
                remote(),
            ),
            Expr::var("S"),
        );
        let once = run(e);
        let twice = run(once.clone());
        let count = |e: &Expr| {
            let mut n = 0;
            e.visit(&mut |x| {
                if matches!(x, Expr::Cached { .. }) {
                    n += 1;
                }
            });
            n
        };
        assert_eq!(count(&once), 1);
        assert_eq!(count(&twice), 1, "{twice}");
    }

    #[test]
    fn cache_ids_are_deterministic_across_compiles() {
        // The same plan built twice (pointer-distinct) gets identical ids.
        let build = || {
            Expr::ext(
                CollKind::Set,
                "x",
                Expr::ext(
                    CollKind::Set,
                    "y",
                    Expr::single(CollKind::Set, Expr::var("y")),
                    remote(),
                ),
                Expr::var("S"),
            )
        };
        let ids = |e: &Expr| {
            let mut out = Vec::new();
            e.visit(&mut |n| {
                if let Expr::Cached { id, .. } = n {
                    out.push(*id);
                }
            });
            out
        };
        let a = run(build());
        let b = run(build());
        assert_ne!(ids(&a), vec![] as Vec<u64>, "a cache must be introduced");
        assert_eq!(ids(&a), ids(&b), "ids must not depend on process state");
        // ...and the id is exactly the wrapped subplan's structural hash.
        a.visit(&mut |n| {
            if let Expr::Cached { id, expr } = n {
                assert_eq!(*id, nrc::plan_hash(expr));
            }
        });
    }

    #[test]
    fn local_subqueries_are_not_cached() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::ext(
                CollKind::Set,
                "y",
                Expr::single(CollKind::Set, Expr::var("y")),
                Expr::var("T"),
            ),
            Expr::var("S"),
        );
        assert_eq!(run(e.clone()), e, "no remote access, nothing to cache");
    }
}
