//! Non-monadic join optimization (Section 4, "Optimizing Joins").
//!
//! Joins that cannot be migrated to a server "must be performed locally";
//! Kleisli adds two operators for them — the blocked nested-loop join and
//! the indexed blocked nested-loop join with indexes built on the fly —
//! plus a rule set "dedicated to recognizing under what conditions to apply
//! which join operator": the indexed join fires only when equality tests in
//! the join condition can be turned into index keys.

use std::sync::Arc;

use nrc::{Expr, JoinStrategy, Name, Prim};

use crate::engine::{Rule, RuleCtx, RuleSet, Strategy};

/// Build the join rule set.
pub fn rule_set() -> RuleSet {
    RuleSet {
        name: "joins",
        strategy: Strategy::BottomUp,
        rules: vec![Rule {
            name: "local-join-operator",
            apply: local_join,
        }],
    }
}

fn local_join(e: &Expr, ctx: &RuleCtx<'_>) -> Option<Expr> {
    if !ctx.config.enable_joins {
        return None;
    }
    let Expr::Ext {
        kind,
        var: v1,
        body,
        source: s1,
    } = e
    else {
        return None;
    };
    let Expr::Ext {
        kind: k2,
        var: v2,
        body: inner_body,
        source: s2,
    } = &**body
    else {
        return None;
    };
    if k2 != kind {
        return None;
    }
    // The inner relation must not depend on the outer element — that case
    // is the *parallel retrieval* pattern, not a join.
    if s2.occurs_free(v1) {
        return None;
    }
    let Expr::If(cond, then, els) = &**inner_body else {
        return None;
    };
    if !matches!(&**els, Expr::Empty(k) if k == kind) {
        return None;
    }
    // Split the condition into equi-key pairs and a residual.
    let mut conjuncts = Vec::new();
    flatten_and(cond, &mut conjuncts);
    let mut left_keys: Vec<Expr> = Vec::new();
    let mut right_keys: Vec<Expr> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        match equi_key(&c, v1, v2) {
            Some((l, r)) => {
                left_keys.push(l);
                right_keys.push(r);
            }
            None => residual.push(c),
        }
    }
    let residual_cond = residual
        .into_iter()
        .reduce(Expr::and)
        .unwrap_or_else(|| Expr::bool(true));
    let (strategy, lk, rk, cond) = if left_keys.is_empty() {
        (
            JoinStrategy::BlockedNl {
                block_size: ctx.config.join_block_size,
            },
            None,
            None,
            Arc::clone(cond),
        )
    } else {
        let key = |ks: Vec<Expr>| {
            if ks.len() == 1 {
                Arc::new(ks.into_iter().next().unwrap())
            } else {
                Arc::new(Expr::Record(
                    ks.into_iter()
                        .enumerate()
                        .map(|(i, k)| (nrc::name(format!("k{i}")), Arc::new(k)))
                        .collect(),
                ))
            }
        };
        (
            JoinStrategy::IndexedNl,
            Some(key(left_keys)),
            Some(key(right_keys)),
            Arc::new(residual_cond),
        )
    };
    Some(Expr::Join {
        kind: *kind,
        strategy,
        left: s1.clone(),
        right: s2.clone(),
        lvar: v1.clone(),
        rvar: v2.clone(),
        left_key: lk,
        right_key: rk,
        cond,
        body: then.clone(),
    })
}

fn flatten_and(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Prim(Prim::And, args) = e {
        flatten_and(&args[0], out);
        flatten_and(&args[1], out);
    } else {
        out.push(e.clone());
    }
}

/// Recognize `a = b` where one side mentions only `v1` and the other only
/// `v2`; returns `(left_key, right_key)`.
fn equi_key(e: &Expr, v1: &Name, v2: &Name) -> Option<(Expr, Expr)> {
    let Expr::Prim(Prim::Eq, args) = e else {
        return None;
    };
    let (a, b) = (&args[0], &args[1]);
    let only = |x: &Expr, v: &Name, other: &Name| x.occurs_free(v) && !x.occurs_free(other);
    if only(a, v1, v2) && only(b, v2, v1) {
        Some(((**a).clone(), (**b).clone()))
    } else if only(a, v2, v1) && only(b, v1, v2) {
        Some(((**b).clone(), (**a).clone()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::NullCatalog;
    use crate::engine::OptConfig;
    use kleisli_core::{CollKind, Value};
    use kleisli_exec::{eval, Context, Env};

    fn run(e: Expr) -> Expr {
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        rule_set().run_owned(e, &ctx, &mut trace)
    }

    fn table(n: usize, modulus: i64) -> Expr {
        Expr::Const(Value::set(
            (0..n as i64)
                .map(|i| {
                    Value::record_from(vec![("k", Value::Int(i % modulus)), ("v", Value::Int(i))])
                })
                .collect(),
        ))
    }

    fn nested_loop_join(cond: Expr) -> Expr {
        Expr::ext(
            CollKind::Set,
            "l",
            Expr::ext(
                CollKind::Set,
                "r",
                Expr::if_(
                    cond,
                    Expr::single(
                        CollKind::Set,
                        Expr::record(vec![
                            ("a", Expr::proj(Expr::var("l"), "v")),
                            ("b", Expr::proj(Expr::var("r"), "v")),
                        ]),
                    ),
                    Expr::Empty(CollKind::Set),
                ),
                table(20, 5),
            ),
            table(30, 7),
        )
    }

    #[test]
    fn equality_condition_selects_indexed_join() {
        let e = nested_loop_join(Expr::eq(
            Expr::proj(Expr::var("l"), "k"),
            Expr::proj(Expr::var("r"), "k"),
        ));
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let opt = run(e);
        match &opt {
            Expr::Join { strategy, .. } => assert_eq!(*strategy, JoinStrategy::IndexedNl),
            other => panic!("no join operator introduced: {other}"),
        }
        assert_eq!(eval(&opt, &Env::empty(), &Context::new()).unwrap(), before);
    }

    #[test]
    fn equality_plus_residual_keeps_residual() {
        let e = nested_loop_join(Expr::and(
            Expr::eq(
                Expr::proj(Expr::var("l"), "k"),
                Expr::proj(Expr::var("r"), "k"),
            ),
            Expr::prim(
                Prim::Lt,
                vec![
                    Expr::proj(Expr::var("l"), "v"),
                    Expr::proj(Expr::var("r"), "v"),
                ],
            ),
        ));
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let opt = run(e);
        match &opt {
            Expr::Join { strategy, cond, .. } => {
                assert_eq!(*strategy, JoinStrategy::IndexedNl);
                assert!(matches!(&**cond, Expr::Prim(Prim::Lt, _)));
            }
            other => panic!("no join operator introduced: {other}"),
        }
        assert_eq!(eval(&opt, &Env::empty(), &Context::new()).unwrap(), before);
    }

    #[test]
    fn inequality_only_selects_blocked_join() {
        let e = nested_loop_join(Expr::prim(
            Prim::Lt,
            vec![
                Expr::proj(Expr::var("l"), "v"),
                Expr::proj(Expr::var("r"), "v"),
            ],
        ));
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let opt = run(e);
        match &opt {
            Expr::Join { strategy, .. } => {
                assert!(matches!(strategy, JoinStrategy::BlockedNl { .. }))
            }
            other => panic!("no join operator introduced: {other}"),
        }
        assert_eq!(eval(&opt, &Env::empty(), &Context::new()).unwrap(), before);
    }

    #[test]
    fn dependent_inner_source_is_not_a_join() {
        // inner source mentions the outer variable: parallel case, not join
        let e = Expr::ext(
            CollKind::Set,
            "l",
            Expr::ext(
                CollKind::Set,
                "r",
                Expr::if_(
                    Expr::bool(true),
                    Expr::single(CollKind::Set, Expr::var("r")),
                    Expr::Empty(CollKind::Set),
                ),
                Expr::single(CollKind::Set, Expr::proj(Expr::var("l"), "v")),
            ),
            table(5, 2),
        );
        let opt = run(e.clone());
        assert_eq!(opt, e);
    }

    #[test]
    fn composite_keys_form_key_records() {
        let e = nested_loop_join(Expr::and(
            Expr::eq(
                Expr::proj(Expr::var("l"), "k"),
                Expr::proj(Expr::var("r"), "k"),
            ),
            Expr::eq(
                Expr::proj(Expr::var("l"), "v"),
                Expr::proj(Expr::var("r"), "v"),
            ),
        ));
        let before = eval(&e, &Env::empty(), &Context::new()).unwrap();
        let opt = run(e);
        match &opt {
            Expr::Join {
                left_key: Some(lk), ..
            } => {
                assert!(matches!(&**lk, Expr::Record(fs) if fs.len() == 2));
            }
            other => panic!("expected composite-key join: {other}"),
        }
        assert_eq!(eval(&opt, &Env::empty(), &Context::new()).unwrap(), before);
    }
}
