//! Query migration ("pushdown") rules.
//!
//! Section 3 of the paper: "the optimizer migrates not only all selections
//! and projections to the Sybase server, but also moves the local joins to
//! joins on the server where pre-computed indexes and table statistics may
//! be exploited" — the `Loci22` query written as three `GDB-Tab` scans
//! joined in CPL is reconstructed into a single shipped SQL query. And for
//! the ASN.1 driver: "we are able to minimize the cost of parsing and
//! copying ASN.1 values by pruning at the level of the ASN.1 driver" via
//! path expressions.
//!
//! The SQL recognizer covers exactly the fragment the paper proves pushable
//! [Wong 94]: flat conjunctive queries (no nested relations, no powerful
//! operators) over tables of one SQL-capable driver.

use std::sync::Arc;

use kleisli_core::{CollKind, DriverRequest, Value};
use nrc::{CaseArm, Expr, Name, Prim};

use crate::engine::{Rule, RuleCtx, RuleSet, Strategy};

/// Build the pushdown rule set.
pub fn rule_set() -> RuleSet {
    RuleSet {
        name: "pushdown",
        strategy: Strategy::BottomUp,
        rules: vec![
            Rule {
                name: "sql-migrate (selections/projections/joins)",
                apply: sql_migrate,
            },
            Rule {
                name: "entrez-path-migrate",
                apply: entrez_path_migrate,
            },
        ],
    }
}

// ---------------------------------------------------------------- SQL ----

#[derive(Debug, Clone, PartialEq)]
enum Operand {
    /// `alias.column` — the variable identifies the table.
    Col(Name, String),
    Lit(Value),
}

#[derive(Debug)]
struct Pred {
    op: Prim,
    lhs: Operand,
    rhs: Operand,
}

#[derive(Debug)]
struct ConjQuery {
    driver: Name,
    /// (loop variable, table name) in generator order.
    tables: Vec<(Name, String)>,
    preds: Vec<Pred>,
    /// (output field, source) — `select src as field`.
    select: Vec<(Name, Operand)>,
    /// The whole query is statically known to be empty (a pattern demanded
    /// a column the schema lacks).
    impossible: bool,
}

fn sql_migrate(e: &Expr, ctx: &RuleCtx<'_>) -> Option<Expr> {
    if !ctx.config.enable_pushdown {
        return None;
    }
    // Only rewrite when there is something to gain: a single bare scan
    // with neither predicates nor projection stays a TableScan.
    let q = recognize(e, ctx)?;
    if q.impossible {
        return Some(Expr::Empty(CollKind::Set));
    }
    let sql = generate_sql(&q);
    Some(Expr::Remote {
        driver: q.driver,
        request: DriverRequest::Sql { query: sql },
    })
}

/// Match `Ext{\v <- REMOTE[scan t], body}` chains ending in
/// `if conds then {record} else {}`.
fn recognize(e: &Expr, ctx: &RuleCtx<'_>) -> Option<ConjQuery> {
    let Expr::Ext {
        kind: CollKind::Set,
        var,
        body,
        source,
    } = e
    else {
        return None;
    };
    let (driver, table) = scan_of(source)?;
    if !ctx.catalog.capabilities(&driver)?.sql {
        return None;
    }
    let mut q = ConjQuery {
        driver,
        tables: vec![(var.clone(), table)],
        preds: Vec::new(),
        select: Vec::new(),
        impossible: false,
    };
    walk_body(body, &mut q, ctx)?;
    // Require at least one predicate or an explicit projection narrower
    // than "everything", and at least one output column.
    if q.select.is_empty() {
        return None;
    }
    if q.tables.len() == 1 && q.preds.is_empty() && !q.impossible {
        // A bare projection is still worth shipping only if it actually
        // narrows the row; without schema info assume it does.
        let narrow = match ctx.catalog.table_stats(&q.driver, &q.tables[0].1) {
            Some(stats) => q.select.len() < stats.columns.len(),
            None => true,
        };
        if !narrow {
            return None;
        }
    }
    Some(q)
}

fn scan_of(e: &Expr) -> Option<(Name, String)> {
    let Expr::Remote { driver, request } = e else {
        return None;
    };
    match request {
        DriverRequest::TableScan { table, .. } => Some((driver.clone(), table.clone())),
        _ => None,
    }
}

fn walk_body(e: &Expr, q: &mut ConjQuery, ctx: &RuleCtx<'_>) -> Option<()> {
    match e {
        Expr::Ext {
            kind: CollKind::Set,
            var,
            body,
            source,
        } => {
            let (driver, table) = scan_of(source)?;
            if driver != q.driver {
                return None; // cross-driver joins stay local
            }
            q.tables.push((var.clone(), table));
            walk_body(body, q, ctx)
        }
        Expr::If(cond, then, els) => {
            if !matches!(&**els, Expr::Empty(CollKind::Set)) {
                return None;
            }
            collect_preds(cond, q, ctx)?;
            walk_body(then, q, ctx)
        }
        Expr::Single(CollKind::Set, inner) => match &**inner {
            Expr::Record(fields) => {
                for (n, fe) in fields {
                    let op = operand(fe, q)?;
                    q.select.push((Arc::clone(n), op));
                }
                Some(())
            }
            Expr::Var(v) if q.tables.iter().any(|(tv, _)| tv == v) => {
                // whole-row output: requires the schema to expand columns
                let table = &q.tables.iter().find(|(tv, _)| tv == v)?.1;
                let stats = ctx.catalog.table_stats(&q.driver, table)?;
                if stats.columns.is_empty() {
                    return None;
                }
                for c in stats.columns {
                    q.select
                        .push((Arc::from(c.as_str()), Operand::Col(v.clone(), c)));
                }
                Some(())
            }
            _ => None,
        },
        _ => None,
    }
}

fn collect_preds(cond: &Expr, q: &mut ConjQuery, ctx: &RuleCtx<'_>) -> Option<()> {
    match cond {
        Expr::Prim(Prim::And, args) => {
            collect_preds(&args[0], q, ctx)?;
            collect_preds(&args[1], q, ctx)
        }
        Expr::Prim(Prim::HasField, args) => {
            // Pattern-compiled field-presence test: resolved against the
            // table schema. Unknown schema => cannot push.
            let Expr::Var(v) = &*args[0] else { return None };
            let Expr::Const(Value::Str(field)) = &*args[1] else {
                return None;
            };
            let table = &q.tables.iter().find(|(tv, _)| tv == v)?.1;
            let stats = ctx.catalog.table_stats(&q.driver, table)?;
            if stats.columns.iter().any(|c| c == &**field) {
                Some(()) // statically true: drop the test
            } else {
                q.impossible = true;
                Some(())
            }
        }
        Expr::Prim(
            op @ (Prim::Eq | Prim::Ne | Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge),
            args,
        ) => {
            let lhs = operand(&args[0], q)?;
            let rhs = operand(&args[1], q)?;
            q.preds.push(Pred { op: *op, lhs, rhs });
            Some(())
        }
        _ => None,
    }
}

fn operand(e: &Expr, q: &ConjQuery) -> Option<Operand> {
    match e {
        Expr::Proj(inner, field) => {
            let Expr::Var(v) = &**inner else { return None };
            q.tables
                .iter()
                .any(|(tv, _)| tv == v)
                .then(|| Operand::Col(v.clone(), field.to_string()))
        }
        Expr::Const(v @ (Value::Int(_) | Value::Float(_) | Value::Str(_) | Value::Bool(_))) => {
            Some(Operand::Lit(v.clone()))
        }
        _ => None,
    }
}

fn generate_sql(q: &ConjQuery) -> String {
    let alias_of = |v: &Name| -> String {
        let idx = q.tables.iter().position(|(tv, _)| tv == v).expect("alias");
        format!("t{idx}")
    };
    let operand_sql = |o: &Operand| -> String {
        match o {
            Operand::Col(v, c) => format!("{}.{}", alias_of(v), c),
            Operand::Lit(Value::Str(s)) => format!("'{}'", s.replace('\'', "''")),
            Operand::Lit(Value::Int(i)) => i.to_string(),
            Operand::Lit(Value::Float(x)) => x.to_string(),
            Operand::Lit(Value::Bool(b)) => if *b { "true" } else { "false" }.to_string(),
            Operand::Lit(other) => other.to_string(),
        }
    };
    let select: Vec<String> = q
        .select
        .iter()
        .map(|(n, o)| format!("{} as {}", operand_sql(o), n))
        .collect();
    let from: Vec<String> = q
        .tables
        .iter()
        .enumerate()
        .map(|(i, (_, t))| format!("{t} t{i}"))
        .collect();
    let mut sql = format!("select {} from {}", select.join(", "), from.join(", "));
    if !q.preds.is_empty() {
        let ops: Vec<String> = q
            .preds
            .iter()
            .map(|p| {
                let op = match p.op {
                    Prim::Eq => "=",
                    Prim::Ne => "<>",
                    Prim::Lt => "<",
                    Prim::Le => "<=",
                    Prim::Gt => ">",
                    Prim::Ge => ">=",
                    _ => unreachable!(),
                };
                format!("{} {} {}", operand_sql(&p.lhs), op, operand_sql(&p.rhs))
            })
            .collect();
        sql.push_str(" where ");
        sql.push_str(&ops.join(" and "));
    }
    sql
}

// ------------------------------------------------------------- Entrez ----

/// Migrate projections over an Entrez fetch into the driver's path
/// expression, e.g.
/// `U{ {x.seq.id} | \x <- entrez(select) }` becomes
/// `entrez(select, path=".seq.id")`, and a variant extraction mapped over
/// a nested collection appends a `..tag` segment.
fn entrez_path_migrate(e: &Expr, ctx: &RuleCtx<'_>) -> Option<Expr> {
    if !ctx.config.enable_pushdown {
        return None;
    }
    let Expr::Ext {
        kind: CollKind::Set,
        var,
        body,
        source,
    } = e
    else {
        return None;
    };
    let Expr::Remote { driver, request } = &**source else {
        return None;
    };
    let DriverRequest::EntrezFetch {
        db,
        query,
        path: None,
    } = request
    else {
        return None;
    };
    if !ctx.catalog.capabilities(driver)?.path_extraction {
        return None;
    }
    let path = path_of_body(body, var)?;
    Some(Expr::Remote {
        driver: driver.clone(),
        request: DriverRequest::EntrezFetch {
            db: db.clone(),
            query: query.clone(),
            path: Some(path),
        },
    })
}

/// Recognize `{chain(x)}` or
/// `U{ case y of <t = \w> => {w} | _ => {} | \y <- chain(x) }`.
fn path_of_body(body: &Expr, var: &Name) -> Option<String> {
    match body {
        Expr::Single(CollKind::Set, inner) => proj_chain(inner, var),
        Expr::Ext {
            kind: CollKind::Set,
            var: y,
            body: inner,
            source,
        } => {
            let prefix = proj_chain(source, var)?;
            let tag = tag_extraction(inner, y)?;
            Some(format!("{prefix}..{tag}"))
        }
        _ => None,
    }
}

/// `x.a.b.c` → `.a.b.c`
fn proj_chain(e: &Expr, var: &Name) -> Option<String> {
    match e {
        Expr::Var(v) if v == var => Some(String::new()),
        Expr::Proj(inner, field) => {
            let prefix = proj_chain(inner, var)?;
            Some(format!("{prefix}.{field}"))
        }
        _ => None,
    }
}

/// `case y of <t = \w> => {w} | _ => {}`  →  `t`
fn tag_extraction(e: &Expr, y: &Name) -> Option<String> {
    let Expr::Case {
        scrutinee,
        arms,
        default,
    } = e
    else {
        return None;
    };
    if !matches!(&**scrutinee, Expr::Var(v) if v == y) {
        return None;
    }
    let [CaseArm { tag, var: w, body }] = arms.as_slice() else {
        return None;
    };
    if !matches!(default.as_deref(), Some(Expr::Empty(CollKind::Set))) {
        return None;
    }
    match &**body {
        Expr::Single(CollKind::Set, inner) if matches!(&**inner, Expr::Var(v) if v == w) => {
            Some(tag.to_string())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::StaticCatalog;
    use crate::engine::OptConfig;
    use kleisli_core::{Capabilities, TableStats};

    fn gdb_catalog() -> StaticCatalog {
        let mut c = StaticCatalog::new();
        c.add_driver(
            "GDB",
            Capabilities {
                sql: true,
                ..Default::default()
            },
        );
        c.add_driver(
            "GenBank",
            Capabilities {
                path_extraction: true,
                ..Default::default()
            },
        );
        for (t, cols) in [
            ("locus", vec!["locus_id", "locus_symbol"]),
            (
                "object_genbank_eref",
                vec!["object_id", "genbank_ref", "object_class_key"],
            ),
            (
                "locus_cyto_location",
                vec!["locus_cyto_location_id", "loc_cyto_chrom_num"],
            ),
        ] {
            c.add_table(
                "GDB",
                t,
                TableStats {
                    rows: 1000,
                    columns: cols.into_iter().map(String::from).collect(),
                    ..Default::default()
                },
            );
        }
        c
    }

    fn scan(table: &str) -> Expr {
        Expr::Remote {
            driver: nrc::name("GDB"),
            request: DriverRequest::TableScan {
                table: table.into(),
                columns: None,
            },
        }
    }

    fn run(e: Expr, catalog: &StaticCatalog) -> Expr {
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog,
            config: &config,
        };
        let mut trace = Vec::new();
        rule_set().run_owned(e, &ctx, &mut trace)
    }

    /// Build the (already let-inlined) NRC form of the paper's Loci22
    /// query over two tables.
    fn loci_two_table() -> Expr {
        // U{ U{ if g2.object_id = g1.locus_id and g2.object_class_key = 1
        //        then {[locus_symbol = g1.locus_symbol, genbank_ref = g2.genbank_ref]}
        //        else {}
        //      | \g2 <- scan(object_genbank_eref) }
        //    | \g1 <- scan(locus) }
        let cond = Expr::and(
            Expr::eq(
                Expr::proj(Expr::var("g2"), "object_id"),
                Expr::proj(Expr::var("g1"), "locus_id"),
            ),
            Expr::eq(
                Expr::proj(Expr::var("g2"), "object_class_key"),
                Expr::int(1),
            ),
        );
        let record = Expr::record(vec![
            ("locus_symbol", Expr::proj(Expr::var("g1"), "locus_symbol")),
            ("genbank_ref", Expr::proj(Expr::var("g2"), "genbank_ref")),
        ]);
        Expr::ext(
            CollKind::Set,
            "g1",
            Expr::ext(
                CollKind::Set,
                "g2",
                Expr::if_(
                    cond,
                    Expr::single(CollKind::Set, record),
                    Expr::Empty(CollKind::Set),
                ),
                scan("object_genbank_eref"),
            ),
            scan("locus"),
        )
    }

    #[test]
    fn two_table_join_ships_one_sql_query() {
        let catalog = gdb_catalog();
        let out = run(loci_two_table(), &catalog);
        match out {
            Expr::Remote { driver, request } => {
                assert_eq!(&*driver, "GDB");
                let DriverRequest::Sql { query } = request else {
                    panic!("expected SQL, got {request:?}");
                };
                assert!(
                    query.contains("from locus t0, object_genbank_eref t1"),
                    "{query}"
                );
                assert!(query.contains("t1.object_id = t0.locus_id"), "{query}");
                assert!(query.contains("t1.object_class_key = 1"), "{query}");
                assert!(query.contains("t0.locus_symbol as locus_symbol"), "{query}");
            }
            other => panic!("pushdown failed: {other}"),
        }
    }

    #[test]
    fn hasfield_tests_fold_against_schema() {
        // if hasfield(g1, "locus_symbol") then {[s = g1.locus_symbol]} else {}
        let e = Expr::ext(
            CollKind::Set,
            "g1",
            Expr::if_(
                Expr::prim(
                    Prim::HasField,
                    vec![Expr::var("g1"), Expr::str("locus_symbol")],
                ),
                Expr::single(
                    CollKind::Set,
                    Expr::record(vec![("s", Expr::proj(Expr::var("g1"), "locus_symbol"))]),
                ),
                Expr::Empty(CollKind::Set),
            ),
            scan("locus"),
        );
        let out = run(e, &gdb_catalog());
        assert!(
            matches!(
                &out,
                Expr::Remote {
                    request: DriverRequest::Sql { .. },
                    ..
                }
            ),
            "{out}"
        );
    }

    #[test]
    fn missing_column_makes_query_statically_empty() {
        let e = Expr::ext(
            CollKind::Set,
            "g1",
            Expr::if_(
                Expr::prim(
                    Prim::HasField,
                    vec![Expr::var("g1"), Expr::str("no_such_column")],
                ),
                Expr::single(
                    CollKind::Set,
                    Expr::record(vec![("s", Expr::proj(Expr::var("g1"), "locus_symbol"))]),
                ),
                Expr::Empty(CollKind::Set),
            ),
            scan("locus"),
        );
        assert_eq!(run(e, &gdb_catalog()), Expr::Empty(CollKind::Set));
    }

    #[test]
    fn cross_driver_joins_stay_local() {
        let other_scan = Expr::Remote {
            driver: nrc::name("OtherDB"),
            request: DriverRequest::TableScan {
                table: "t".into(),
                columns: None,
            },
        };
        let e = Expr::ext(
            CollKind::Set,
            "a",
            Expr::ext(
                CollKind::Set,
                "b",
                Expr::if_(
                    Expr::eq(
                        Expr::proj(Expr::var("a"), "locus_id"),
                        Expr::proj(Expr::var("b"), "x"),
                    ),
                    Expr::single(
                        CollKind::Set,
                        Expr::record(vec![("s", Expr::proj(Expr::var("a"), "locus_symbol"))]),
                    ),
                    Expr::Empty(CollKind::Set),
                ),
                other_scan,
            ),
            scan("locus"),
        );
        let out = run(e.clone(), &gdb_catalog());
        assert_eq!(out, e, "cross-driver join must not be pushed");
    }

    #[test]
    fn non_sql_driver_is_not_pushed() {
        let mut catalog = StaticCatalog::new();
        catalog.add_driver("GDB", Capabilities::default()); // sql: false
        let out = run(loci_two_table(), &catalog);
        assert!(matches!(out, Expr::Ext { .. }));
    }

    #[test]
    fn entrez_projection_becomes_path() {
        let fetch = Expr::Remote {
            driver: nrc::name("GenBank"),
            request: DriverRequest::EntrezFetch {
                db: "na".into(),
                query: "accession M81409".into(),
                path: None,
            },
        };
        // U{ {x.seq.id} | \x <- fetch }
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(
                CollKind::Set,
                Expr::proj(Expr::proj(Expr::var("x"), "seq"), "id"),
            ),
            fetch,
        );
        let out = run(e, &gdb_catalog());
        match out {
            Expr::Remote { request, .. } => match request {
                DriverRequest::EntrezFetch { path, .. } => {
                    assert_eq!(path.as_deref(), Some(".seq.id"))
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("path migration failed: {other}"),
        }
    }

    #[test]
    fn entrez_variant_extraction_becomes_double_dot() {
        let fetch = Expr::Remote {
            driver: nrc::name("GenBank"),
            request: DriverRequest::EntrezFetch {
                db: "na".into(),
                query: "accession M81409".into(),
                path: None,
            },
        };
        // U{ U{ case y of <giim = \w> => {w} | _ => {} | \y <- x.seq.id }
        //    | \x <- fetch }
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::Ext {
                kind: CollKind::Set,
                var: nrc::name("y"),
                body: Arc::new(Expr::Case {
                    scrutinee: Arc::new(Expr::var("y")),
                    arms: vec![CaseArm {
                        tag: nrc::name("giim"),
                        var: nrc::name("w"),
                        body: Arc::new(Expr::single(CollKind::Set, Expr::var("w"))),
                    }],
                    default: Some(Arc::new(Expr::Empty(CollKind::Set))),
                }),
                source: Arc::new(Expr::proj(Expr::proj(Expr::var("x"), "seq"), "id")),
            },
            fetch,
        );
        let out = run(e, &gdb_catalog());
        match out {
            Expr::Remote { request, .. } => match request {
                DriverRequest::EntrezFetch { path, .. } => {
                    assert_eq!(path.as_deref(), Some(".seq.id..giim"))
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("path migration failed: {other}"),
        }
    }
}
