//! Bounded-concurrency rules (Section 4, "Laziness, Latency, and
//! Concurrency"): "rules are introduced to recognize when a function
//! accessing a remote database appears in an inner loop", replacing the
//! sequential loop with "a primitive that retrieves elements from a
//! collection in parallel and returns the union of the results". The
//! degree of parallelism respects the server's tolerated number of
//! simultaneous requests ("say five").

use nrc::Expr;

use crate::engine::{Rule, RuleCtx, RuleSet, Strategy};

/// Build the parallel rule set.
pub fn rule_set() -> RuleSet {
    RuleSet {
        name: "parallel",
        strategy: Strategy::TopDown,
        rules: vec![Rule {
            name: "parallel-remote-inner-loop",
            apply: parallelize,
        }],
    }
}

/// Does `e` reach a driver outside of any `Cached` subtree? (A cached
/// subquery runs once; parallelizing its surrounding loop buys nothing.)
fn touches_remote_uncached(e: &Expr) -> bool {
    match e {
        Expr::Cached { .. } => false,
        Expr::Remote { .. } | Expr::RemoteApp { .. } => true,
        other => {
            let mut found = false;
            other.for_each_child(&mut |c| {
                if !found {
                    found = touches_remote_uncached(c);
                }
            });
            found
        }
    }
}

/// The first driver named by an uncached remote node in `e`.
fn first_driver(e: &Expr) -> Option<nrc::Name> {
    match e {
        Expr::Cached { .. } => None,
        Expr::Remote { driver, .. } | Expr::RemoteApp { driver, .. } => Some(driver.clone()),
        other => {
            let mut found = None;
            other.for_each_child(&mut |c| {
                if found.is_none() {
                    found = first_driver(c);
                }
            });
            found
        }
    }
}

fn parallelize(e: &Expr, ctx: &RuleCtx<'_>) -> Option<Expr> {
    if !ctx.config.enable_parallel {
        return None;
    }
    let Expr::Ext {
        kind,
        var,
        body,
        source,
    } = e
    else {
        return None;
    };
    // Only loops whose body issues per-element remote requests benefit;
    // a body independent of the loop variable is the caching case.
    if !touches_remote_uncached(body) || !body.occurs_free(var) {
        return None;
    }
    let driver = first_driver(body);
    // `concurrency_limit` is the *normalized* admission budget (a declared
    // 0 means 1, never "unknown"): since the executor enforces the budget
    // at the driver gate, asking for more in-flight work than the server
    // admits would only queue. Unknown servers fall back to the
    // configured default.
    let cap = driver
        .and_then(|d| ctx.catalog.capabilities(&d))
        .map(|c| c.concurrency_limit())
        .unwrap_or(ctx.config.default_concurrency);
    Some(Expr::ParExt {
        kind: *kind,
        var: var.clone(),
        body: body.clone(),
        source: source.clone(),
        max_in_flight: cap.max(1),
        // the batch pass (which runs after this one) decides batching
        batch: None,
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::catalog::{NullCatalog, StaticCatalog};
    use crate::engine::OptConfig;
    use kleisli_core::{Capabilities, CollKind};

    fn run(e: Expr, catalog: &dyn crate::catalog::SourceCatalog) -> Expr {
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog,
            config: &config,
        };
        let mut trace = Vec::new();
        rule_set().run_owned(e, &ctx, &mut trace)
    }

    fn dependent_remote_loop() -> Expr {
        // U{ REMOTE-APP[GenBank]([db=..., link=x]) | \x <- S }
        Expr::ext(
            CollKind::Set,
            "x",
            Expr::RemoteApp {
                driver: nrc::name("GenBank"),
                arg: Arc::new(Expr::record(vec![
                    ("db", Expr::str("na")),
                    ("link", Expr::var("x")),
                ])),
            },
            Expr::var("S"),
        )
    }

    #[test]
    fn remote_inner_loop_becomes_parallel_with_server_cap() {
        let mut catalog = StaticCatalog::new();
        catalog.add_driver(
            "GenBank",
            Capabilities {
                max_concurrent_requests: 5,
                ..Default::default()
            },
        );
        let out = run(dependent_remote_loop(), &catalog);
        match out {
            Expr::ParExt { max_in_flight, .. } => assert_eq!(max_in_flight, 5),
            other => panic!("not parallelized: {other}"),
        }
    }

    #[test]
    fn unknown_server_uses_default_concurrency() {
        let out = run(dependent_remote_loop(), &NullCatalog);
        match out {
            Expr::ParExt { max_in_flight, .. } => {
                assert_eq!(max_in_flight, OptConfig::default().default_concurrency)
            }
            other => panic!("not parallelized: {other}"),
        }
    }

    #[test]
    fn declared_zero_budget_normalizes_to_serial_not_default() {
        // 0 is meaningless for an enforced admission limit; the rule must
        // read the normalized value (1), not fall back to the default 5.
        let mut catalog = StaticCatalog::new();
        catalog.add_driver(
            "GenBank",
            Capabilities {
                max_concurrent_requests: 0,
                ..Default::default()
            },
        );
        let out = run(dependent_remote_loop(), &catalog);
        match out {
            Expr::ParExt { max_in_flight, .. } => assert_eq!(max_in_flight, 1),
            other => panic!("not parallelized: {other}"),
        }
    }

    #[test]
    fn local_loops_stay_sequential() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::single(CollKind::Set, Expr::var("x")),
            Expr::var("S"),
        );
        assert_eq!(run(e.clone(), &NullCatalog), e);
    }

    #[test]
    fn cached_bodies_are_not_parallelized() {
        let e = Expr::ext(
            CollKind::Set,
            "x",
            Expr::Cached {
                id: 7,
                expr: Arc::new(Expr::Remote {
                    driver: nrc::name("GDB"),
                    request: kleisli_core::DriverRequest::TableScan {
                        table: "t".into(),
                        columns: None,
                    },
                }),
            },
            Expr::var("S"),
        );
        assert_eq!(run(e.clone(), &NullCatalog), e);
    }
}
