//! Batched round-trip rules (IN-list / multi-uid pushdown): a
//! bounded-concurrency loop whose body issues one remote request per
//! element against a server advertising [`Capabilities::batching`] is
//! marked with a [`BatchSpec`], so the executor pre-fetches the whole
//! key set in `ceil(n / max_keys)` wire round-trips instead of `n`.
//!
//! The mark is *advisory*: the loop body is untouched, and at run time
//! each per-element submission attaches to a pre-seeded flight when one
//! matches (byte-identical results by construction). A key set smaller
//! than `min_keys` skips warm-up entirely — for a handful of keys the
//! latency-overlap path already hides the round-trips, and the batch
//! would only serialize them behind one wire request.
//!
//! [`Capabilities::batching`]: kleisli_core::Capabilities

use std::sync::Arc;

use nrc::{BatchSpec, Expr, Name};

use crate::engine::{Rule, RuleCtx, RuleSet, Strategy};

/// Build the batching rule set.
pub fn rule_set() -> RuleSet {
    RuleSet {
        name: "batch",
        strategy: Strategy::TopDown,
        rules: vec![Rule {
            name: "batch-remote-inner-loop",
            apply: mark_batchable,
        }],
    }
}

/// Is `e` evaluable by the local evaluator alone, cheaply and without
/// effects — constants, the loop variable, record/variant plumbing,
/// primitives? The warm-up evaluates the request argument once per
/// element *before* the loop runs; anything touching a driver (or able
/// to loop) must disqualify the mark, or warm-up would duplicate remote
/// work the body will also perform.
fn pure_local(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Empty(_) => true,
        Expr::Record(fields) => fields.iter().all(|(_, v)| pure_local(v)),
        Expr::Proj(b, _) | Expr::Inject(_, b) | Expr::Single(_, b) => pure_local(b),
        Expr::Union(_, a, b) => pure_local(a) && pure_local(b),
        Expr::If(c, t, f) => pure_local(c) && pure_local(t) && pure_local(f),
        Expr::Prim(_, args) => args.iter().all(|a| pure_local(a)),
        Expr::Let { def, body, .. } => pure_local(def) && pure_local(body),
        _ => false,
    }
}

/// The first per-element remote call in `e` worth batching: a
/// `RemoteApp` outside any `Cached` subtree whose argument is pure-local
/// and actually depends on the loop variable. Returns the driver and the
/// argument expression (abstracted over `var`).
///
/// `Remote` nodes carry a *static* request — every element would issue
/// the identical wire request, which the coalescing window already
/// folds — so they are not batch targets.
fn batch_target(e: &Expr, var: &str) -> Option<(Name, Arc<Expr>)> {
    match e {
        Expr::Cached { .. } => None,
        Expr::RemoteApp { driver, arg } => (pure_local(arg) && arg.occurs_free(var))
            .then(|| (driver.clone(), Arc::clone(arg))),
        other => {
            let mut found = None;
            other.for_each_child(&mut |c| {
                if found.is_none() {
                    found = batch_target(c, var);
                }
            });
            found
        }
    }
}

fn mark_batchable(e: &Expr, ctx: &RuleCtx<'_>) -> Option<Expr> {
    if !ctx.config.enable_batching {
        return None;
    }
    let Expr::ParExt {
        kind,
        var,
        body,
        source,
        max_in_flight,
        batch: None,
    } = e
    else {
        return None;
    };
    let (driver, arg) = batch_target(body, var)?;
    let policy = ctx.catalog.capabilities(&driver)?.batching?;
    Some(Expr::ParExt {
        kind: *kind,
        var: var.clone(),
        body: body.clone(),
        source: source.clone(),
        max_in_flight: *max_in_flight,
        batch: Some(BatchSpec {
            driver,
            arg,
            min_keys: ctx.config.min_batch_keys,
            max_keys: policy.max_keys.max(1),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{NullCatalog, StaticCatalog};
    use crate::engine::OptConfig;
    use kleisli_core::{BatchPolicy, Capabilities, CollKind};
    use std::time::Duration;

    fn run(e: Expr, catalog: &dyn crate::catalog::SourceCatalog, config: &OptConfig) -> Expr {
        let ctx = RuleCtx { catalog, config };
        let mut trace = Vec::new();
        rule_set().run_owned(e, &ctx, &mut trace)
    }

    fn link_loop() -> Expr {
        // PAR-U{ REMOTE-APP[GenBank]([db=..., link=x]) | \x <- UIDS }
        Expr::ParExt {
            kind: CollKind::Set,
            var: nrc::name("x"),
            body: Arc::new(Expr::RemoteApp {
                driver: nrc::name("GenBank"),
                arg: Arc::new(Expr::record(vec![
                    ("db", Expr::str("na")),
                    ("link", Expr::var("x")),
                ])),
            }),
            source: Arc::new(Expr::var("UIDS")),
            max_in_flight: 5,
            batch: None,
        }
    }

    fn batching_catalog(max_keys: usize) -> StaticCatalog {
        let mut catalog = StaticCatalog::new();
        catalog.add_driver(
            "GenBank",
            Capabilities {
                batching: Some(BatchPolicy {
                    max_keys,
                    coalesce_window: Duration::ZERO,
                }),
                ..Default::default()
            },
        );
        catalog
    }

    #[test]
    fn remote_inner_loop_gets_a_batch_mark() {
        let out = run(link_loop(), &batching_catalog(16), &OptConfig::default());
        match out {
            Expr::ParExt {
                batch: Some(spec), ..
            } => {
                assert_eq!(spec.driver.as_ref(), "GenBank");
                assert_eq!(spec.max_keys, 16);
                assert_eq!(spec.min_keys, OptConfig::default().min_batch_keys);
                assert!(spec.arg.occurs_free("x"));
            }
            other => panic!("no batch mark: {other}"),
        }
    }

    #[test]
    fn servers_without_batching_capability_stay_unmarked() {
        let mut catalog = StaticCatalog::new();
        catalog.add_driver("GenBank", Capabilities::default());
        let e = link_loop();
        assert_eq!(run(e.clone(), &catalog, &OptConfig::default()), e);
        assert_eq!(run(e.clone(), &NullCatalog, &OptConfig::default()), e);
    }

    #[test]
    fn disabled_config_never_marks() {
        let config = OptConfig {
            enable_batching: false,
            ..OptConfig::default()
        };
        let e = link_loop();
        assert_eq!(run(e.clone(), &batching_catalog(16), &config), e);
    }

    #[test]
    fn element_independent_bodies_stay_unmarked() {
        // The request does not mention the loop variable: caching
        // territory, and batching N identical requests buys nothing the
        // coalescing window doesn't already.
        let e = Expr::ParExt {
            kind: CollKind::Set,
            var: nrc::name("x"),
            body: Arc::new(Expr::RemoteApp {
                driver: nrc::name("GenBank"),
                arg: Arc::new(Expr::record(vec![("db", Expr::str("na"))])),
            }),
            source: Arc::new(Expr::var("UIDS")),
            max_in_flight: 5,
            batch: None,
        };
        assert_eq!(run(e.clone(), &batching_catalog(16), &OptConfig::default()), e);
    }

    #[test]
    fn impure_request_arguments_stay_unmarked() {
        // A request argument that itself calls a driver must not be
        // evaluated during warm-up.
        let e = Expr::ParExt {
            kind: CollKind::Set,
            var: nrc::name("x"),
            body: Arc::new(Expr::RemoteApp {
                driver: nrc::name("GenBank"),
                arg: Arc::new(Expr::record(vec![(
                    "link",
                    Expr::RemoteApp {
                        driver: nrc::name("GDB"),
                        arg: Arc::new(Expr::var("x")),
                    },
                )])),
            }),
            source: Arc::new(Expr::var("UIDS")),
            max_in_flight: 5,
            batch: None,
        };
        assert_eq!(run(e.clone(), &batching_catalog(16), &OptConfig::default()), e);
    }
}
