//! The "resolve" rule set: partial evaluation that runs before the monadic
//! rules — beta reduction, let inlining, constant folding, record
//! projection (the paper's rule R4), case-of-variant dispatch, and the
//! lowering of dynamic driver calls with constant arguments into static
//! [`Expr::Remote`] requests that the pushdown rules can inspect.

use std::sync::Arc;

use kleisli_exec::{request_from_value, Context};
use nrc::{Expr, Prim};

use crate::engine::{Rule, RuleCtx, RuleSet, Strategy};

/// Build the resolve rule set.
pub fn rule_set() -> RuleSet {
    RuleSet {
        name: "resolve",
        strategy: Strategy::BottomUp,
        rules: vec![
            Rule {
                name: "beta-reduce",
                apply: beta_reduce,
            },
            Rule {
                name: "let-inline",
                apply: let_inline,
            },
            Rule {
                name: "proj-record (R4)",
                apply: proj_record,
            },
            Rule {
                name: "case-of-variant",
                apply: case_of_variant,
            },
            Rule {
                name: "if-const",
                apply: if_const,
            },
            Rule {
                name: "const-fold",
                apply: const_fold,
            },
            Rule {
                name: "record-introspection-fold",
                apply: record_introspection,
            },
            Rule {
                name: "record-const-fold",
                apply: record_const_fold,
            },
            Rule {
                name: "variant-const-fold",
                apply: variant_const_fold,
            },
            Rule {
                name: "resolve-remote-call",
                apply: resolve_remote_call,
            },
        ],
    }
}

/// `(\x => b)(a)  ==>  let x = a in b`
fn beta_reduce(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Apply(f, a) = e else { return None };
    let Expr::Lambda { var, body } = &**f else {
        return None;
    };
    Some(Expr::Let {
        var: var.clone(),
        def: Arc::clone(a),
        body: body.clone(),
    })
}

/// Is an expression cheap enough to duplicate freely?
fn is_cheap(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Proj(inner, _) => is_cheap(inner),
        _ => false,
    }
}

/// Count free occurrences of `var` in `e`.
fn count_occ(e: &Expr, var: &str) -> usize {
    // Exact count of free occurrences via a manual walk that respects
    // binders.
    fn go(e: &Expr, var: &str) -> usize {
        match e {
            Expr::Var(n) => usize::from(&**n == var),
            Expr::Let { var: v, def, body } => {
                go(def, var) + if &**v == var { 0 } else { go(body, var) }
            }
            Expr::Lambda { var: v, body } => {
                if &**v == var {
                    0
                } else {
                    go(body, var)
                }
            }
            Expr::Ext {
                var: v,
                body,
                source,
                ..
            }
            | Expr::ParExt {
                var: v,
                body,
                source,
                ..
            } => go(source, var) + if &**v == var { 0 } else { go(body, var) },
            Expr::Case {
                scrutinee,
                arms,
                default,
            } => {
                let mut n = go(scrutinee, var);
                for arm in arms {
                    if &*arm.var != var {
                        n += go(&arm.body, var);
                    }
                }
                if let Some(d) = default {
                    n += go(d, var);
                }
                n
            }
            Expr::Join {
                left,
                right,
                lvar,
                rvar,
                left_key,
                right_key,
                cond,
                body,
                ..
            } => {
                let mut n = go(left, var) + go(right, var);
                if &**lvar != var && &**rvar != var {
                    n += go(cond, var) + go(body, var);
                    if let Some(k) = left_key {
                        n += go(k, var);
                    }
                    if let Some(k) = right_key {
                        n += go(k, var);
                    }
                }
                n
            }
            other => {
                let mut n = 0;
                other.for_each_child(&mut |c| n += go(c, var));
                n
            }
        }
    }
    go(e, var)
}

/// Inline `let` bindings that are cheap or used at most once (and local).
fn let_inline(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Let { var, def, body } = e else {
        return None;
    };
    let uses = count_occ(body, var);
    if uses == 0 {
        if def.touches_remote() {
            return None; // keep for its (cost-)visible effects? drop anyway is sound, but conservative
        }
        return Some((**body).clone());
    }
    if is_cheap(def) || (uses == 1 && !def.touches_remote()) {
        return Some((*Expr::subst_shared(body, var, def)).clone());
    }
    None
}

/// `[l1 = e1, ..., ln = en].li  ==>  ei`  (rule R4 of the paper)
fn proj_record(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Proj(inner, field) = e else {
        return None;
    };
    match &**inner {
        Expr::Record(fields) => fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, fe)| (**fe).clone()),
        Expr::Const(kleisli_core::Value::Record(r)) => r.get(field).cloned().map(Expr::Const),
        _ => None,
    }
}

/// `case <t = e> of ... <t = \x> => b ...  ==>  let x = e in b`
fn case_of_variant(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Case {
        scrutinee,
        arms,
        default,
    } = e
    else {
        return None;
    };
    let (tag, payload): (&str, Expr) = match &**scrutinee {
        Expr::Inject(t, inner) => (t, (**inner).clone()),
        Expr::Const(kleisli_core::Value::Variant(t, inner)) => (t, Expr::Const((**inner).clone())),
        _ => return None,
    };
    for arm in arms {
        if &*arm.tag == tag {
            return Some(Expr::Let {
                var: arm.var.clone(),
                def: Arc::new(payload),
                body: arm.body.clone(),
            });
        }
    }
    default.as_ref().map(|d| (**d).clone())
}

/// `if true then a else b ==> a`, `if false then a else b ==> b`
fn if_const(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::If(c, t, f) = e else { return None };
    match &**c {
        Expr::Const(kleisli_core::Value::Bool(true)) => Some((**t).clone()),
        Expr::Const(kleisli_core::Value::Bool(false)) => Some((**f).clone()),
        _ => None,
    }
}

/// Fold pure primitives over constant arguments by running the evaluator
/// at compile time.
fn const_fold(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Prim(p, args) = e else { return None };
    if !p.is_pure_local() || *p == Prim::Deref {
        return None;
    }
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        match &**a {
            Expr::Const(v) => vals.push(v.clone()),
            _ => return None,
        }
    }
    kleisli_exec::prims::apply_prim(*p, &vals, &Context::new())
        .ok()
        .map(Expr::Const)
}

/// Fold `hasfield`/`recordwidth` over record *expressions* (whose field
/// set is statically known even when the values are not).
fn record_introspection(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Prim(p, args) = e else { return None };
    match p {
        Prim::HasField => {
            let Expr::Record(fields) = &*args[0] else {
                return None;
            };
            let Expr::Const(kleisli_core::Value::Str(f)) = &*args[1] else {
                return None;
            };
            Some(Expr::bool(fields.iter().any(|(n, _)| **n == **f)))
        }
        Prim::RecordWidth => {
            let Expr::Record(fields) = &*args[0] else {
                return None;
            };
            Some(Expr::int(fields.len() as i64))
        }
        _ => None,
    }
}

/// A record expression whose fields are all constants is a constant.
fn record_const_fold(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Record(fields) = e else { return None };
    let mut out = Vec::with_capacity(fields.len());
    for (n, fe) in fields {
        match &**fe {
            Expr::Const(v) => out.push((n.clone(), v.clone())),
            _ => return None,
        }
    }
    Some(Expr::Const(kleisli_core::Value::record(out)))
}

/// `<t = const>` is a constant.
fn variant_const_fold(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::Inject(tag, inner) = e else {
        return None;
    };
    match &**inner {
        Expr::Const(v) => Some(Expr::Const(kleisli_core::Value::Variant(
            tag.clone(),
            Arc::new(v.clone()),
        ))),
        _ => None,
    }
}

/// `REMOTE-APP[d](const)  ==>  REMOTE[d: parsed-request]` — once the
/// argument is a constant the request can be built at compile time, making
/// it visible to the pushdown rules.
fn resolve_remote_call(e: &Expr, _ctx: &RuleCtx<'_>) -> Option<Expr> {
    let Expr::RemoteApp { driver, arg } = e else {
        return None;
    };
    let Expr::Const(v) = &**arg else { return None };
    let request = request_from_value(v).ok()?;
    Some(Expr::Remote {
        driver: driver.clone(),
        request,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::NullCatalog;
    use crate::engine::OptConfig;
    use kleisli_core::{DriverRequest, Value};

    fn run(e: Expr) -> Expr {
        let config = OptConfig::default();
        let ctx = RuleCtx {
            catalog: &NullCatalog,
            config: &config,
        };
        let mut trace = Vec::new();
        rule_set().run_owned(e, &ctx, &mut trace)
    }

    #[test]
    fn beta_then_inline() {
        let e = Expr::apply(Expr::lambda("x", Expr::var("x")), Expr::int(7));
        assert_eq!(run(e), Expr::int(7));
    }

    #[test]
    fn r4_projection() {
        let e = Expr::proj(
            Expr::record(vec![("a", Expr::int(1)), ("b", Expr::var("y"))]),
            "a",
        );
        assert_eq!(run(e), Expr::int(1));
    }

    #[test]
    fn case_dispatch_on_known_tag() {
        let e = Expr::Case {
            scrutinee: Arc::new(Expr::Inject(nrc::name("ok"), Arc::new(Expr::int(5)))),
            arms: vec![nrc::CaseArm {
                tag: nrc::name("ok"),
                var: nrc::name("x"),
                body: Arc::new(Expr::prim(Prim::Add, vec![Expr::var("x"), Expr::int(1)])),
            }],
            default: Some(Arc::new(Expr::int(0))),
        };
        assert_eq!(run(e), Expr::int(6));
    }

    #[test]
    fn constant_arithmetic_folds() {
        let e = Expr::prim(Prim::Mul, vec![Expr::int(6), Expr::int(7)]);
        assert_eq!(run(e), Expr::int(42));
        // division by zero must NOT fold (stays a runtime error)
        let e = Expr::prim(Prim::Div, vec![Expr::int(1), Expr::int(0)]);
        assert!(matches!(run(e), Expr::Prim(Prim::Div, _)));
    }

    #[test]
    fn hasfield_folds_on_record_expressions() {
        let e = Expr::prim(
            Prim::HasField,
            vec![
                Expr::record(vec![("a", Expr::var("unknown"))]),
                Expr::str("a"),
            ],
        );
        // NB: `unknown` is free but the field set is static.
        assert_eq!(run(e), Expr::bool(true));
    }

    #[test]
    fn remote_call_lowering() {
        let e = Expr::RemoteApp {
            driver: nrc::name("GDB"),
            arg: Arc::new(Expr::Const(Value::record_from(vec![(
                "table",
                Value::str("locus"),
            )]))),
        };
        match run(e) {
            Expr::Remote { driver, request } => {
                assert_eq!(&*driver, "GDB");
                assert_eq!(
                    request,
                    DriverRequest::TableScan {
                        table: "locus".into(),
                        columns: None
                    }
                );
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn remote_call_with_dynamic_arg_stays() {
        let e = Expr::RemoteApp {
            driver: nrc::name("GDB"),
            arg: Arc::new(Expr::var("x")),
        };
        assert_eq!(run(e.clone()), e);
    }

    #[test]
    fn unused_pure_let_is_dropped() {
        let e = Expr::let_("x", Expr::int(1), Expr::int(2));
        assert_eq!(run(e), Expr::int(2));
    }

    #[test]
    fn shadowing_let_not_miscounted() {
        // let x = 1 in (\x => x)(5)  ==> 5
        let e = Expr::let_(
            "x",
            Expr::int(1),
            Expr::apply(Expr::lambda("x", Expr::var("x")), Expr::int(5)),
        );
        assert_eq!(run(e), Expr::int(5));
    }
}
