//! Property test: the optimizer never changes the meaning of a query.
//!
//! Random closed NRC expressions — nested comprehensions over sets, bags
//! and lists with mixed kinds, conditionals, arithmetic, unions and
//! aggregates — must evaluate to the same value before and after the full
//! optimization pipeline. This exercises the kind side-conditions of the
//! fusion rules (R1/R2), filter promotion (R3), the unit laws, and the
//! resolve set.

use kleisli_core::{CollKind, Value};
use kleisli_exec::{eval, Context, Env};
use kleisli_opt::{optimize, NullCatalog, OptConfig};
use nrc::{Expr, Prim};
use proptest::prelude::*;

/// Variables in scope are always ints here, named v0..v{n-1}.
#[derive(Debug, Clone, Copy)]
struct Scope(usize);

fn int_expr(scope: Scope, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = {
        let consts = (-20i64..20).prop_map(Expr::int);
        if scope.0 == 0 {
            consts.boxed()
        } else {
            prop_oneof![
                consts,
                (0..scope.0).prop_map(|i| Expr::var(format!("v{i}"))),
            ]
            .boxed()
        }
    };
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        3 => leaf,
        2 => (int_expr(scope, depth - 1), int_expr(scope, depth - 1))
            .prop_map(|(a, b)| Expr::prim(Prim::Add, vec![a, b])),
        1 => (int_expr(scope, depth - 1), int_expr(scope, depth - 1))
            .prop_map(|(a, b)| Expr::prim(Prim::Sub, vec![a, b])),
        1 => coll_expr(scope, depth - 1)
            .prop_map(|c| Expr::prim(Prim::Count, vec![c])),
        1 => (bool_expr(scope, depth - 1), int_expr(scope, depth - 1), int_expr(scope, depth - 1))
            .prop_map(|(c, t, f)| Expr::if_(c, t, f)),
    ]
    .boxed()
}

fn bool_expr(scope: Scope, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = any::<bool>().prop_map(Expr::bool).boxed();
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        2 => leaf,
        2 => (int_expr(scope, depth - 1), int_expr(scope, depth - 1))
            .prop_map(|(a, b)| Expr::eq(a, b)),
        2 => (int_expr(scope, depth - 1), int_expr(scope, depth - 1))
            .prop_map(|(a, b)| Expr::prim(Prim::Lt, vec![a, b])),
        1 => (bool_expr(scope, depth - 1), bool_expr(scope, depth - 1))
            .prop_map(|(a, b)| Expr::and(a, b)),
        1 => bool_expr(scope, depth - 1)
            .prop_map(|a| Expr::prim(Prim::Not, vec![a])),
    ]
    .boxed()
}

fn any_kind() -> impl Strategy<Value = CollKind> {
    prop_oneof![
        Just(CollKind::Set),
        Just(CollKind::Bag),
        Just(CollKind::List)
    ]
}

/// A collection expression of arbitrary (generated) kind, producing int
/// elements.
fn coll_expr(scope: Scope, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (any_kind(), proptest::collection::vec(-10i64..10, 0..5))
        .prop_map(|(k, xs)| Expr::Const(Value::collection(k, xs.into_iter().map(Value::Int).collect())))
        .boxed();
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        2 => leaf,
        1 => (any_kind(), int_expr(scope, depth - 1)).prop_map(|(k, e)| Expr::single(k, e)),
        2 => (any_kind(), coll_expr(scope, depth - 1), coll_expr(scope, depth - 1))
            .prop_map(|(k, a, b)| Expr::union(k, fit_kind(a, k), fit_kind(b, k))),
        3 => (any_kind(), coll_expr(scope, depth - 1), coll_body(scope, depth - 1))
            .prop_map(move |(k, src, body)| Expr::Ext {
                kind: k,
                var: nrc::name(format!("v{}", scope.0)),
                body: std::sync::Arc::new(fit_kind(body, k)),
                source: std::sync::Arc::new(src),
            }),
        1 => (bool_expr(scope, depth - 1), any_kind(), coll_expr(scope, depth - 1), coll_expr(scope, depth - 1))
            .prop_map(|(c, k, t, f)| Expr::if_(c, fit_kind(t, k), fit_kind(f, k))),
    ]
    .boxed()
}

/// Body for an `Ext` with one extra int variable in scope.
fn coll_body(scope: Scope, depth: u32) -> BoxedStrategy<Expr> {
    coll_expr(Scope(scope.0 + 1), depth)
}

/// Coerce a generated collection expression to kind `k` by wrapping in a
/// conversion primitive when its syntactic kind differs. Keeps the
/// generated terms well-typed where NRC requires matching kinds
/// (union operands, comprehension bodies).
fn fit_kind(e: Expr, k: CollKind) -> Expr {
    let actual = definite_kind(&e);
    if actual == Some(k) {
        return e;
    }
    let conv = match k {
        CollKind::Set => Prim::SetOf,
        CollKind::Bag => Prim::BagOf,
        CollKind::List => Prim::ListOf,
    };
    Expr::prim(conv, vec![e])
}

fn definite_kind(e: &Expr) -> Option<CollKind> {
    match e {
        Expr::Const(v) => v.coll_kind(),
        Expr::Empty(k) | Expr::Single(k, _) | Expr::Union(k, ..) => Some(*k),
        Expr::Ext { kind, .. } => Some(*kind),
        Expr::If(_, t, _) => definite_kind(t),
        Expr::Prim(Prim::SetOf, _) => Some(CollKind::Set),
        Expr::Prim(Prim::BagOf, _) => Some(CollKind::Bag),
        Expr::Prim(Prim::ListOf, _) => Some(CollKind::List),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimizer_preserves_collection_semantics(e in coll_expr(Scope(0), 3)) {
        let ctx = Context::new();
        let before = eval(&e, &Env::empty(), &ctx);
        let (opt, _trace) = optimize(e.clone(), &NullCatalog, &OptConfig::default());
        let after = eval(&opt, &Env::empty(), &ctx);
        match (before, after) {
            (Ok(b), Ok(a)) => prop_assert_eq!(
                b, a, "\n  original: {}\n optimized: {}", e, opt
            ),
            (Err(_), _) => {
                // Generated terms are error-free by construction; if one
                // errs anyway, the optimizer may legally differ.
            }
            (Ok(b), Err(err)) => {
                return Err(TestCaseError::fail(format!(
                    "optimized query failed ({err}) where original gave {b}\n  original: {e}\n optimized: {opt}"
                )));
            }
        }
    }

    #[test]
    fn optimizer_preserves_scalar_semantics(e in int_expr(Scope(0), 3)) {
        let ctx = Context::new();
        if let Ok(before) = eval(&e, &Env::empty(), &ctx) {
            let (opt, _) = optimize(e.clone(), &NullCatalog, &OptConfig::default());
            let after = eval(&opt, &Env::empty(), &ctx)
                .expect("optimized scalar query failed");
            prop_assert_eq!(before, after, "\n  original: {}\n optimized: {}", e, opt);
        }
    }

    /// The two structural-sharing contracts of the Arc-based plan
    /// representation, over random plans:
    /// (a) a rewritten plan evaluates to the same `Value` as the original
    ///     (the `optimizer_preserves_collection_semantics` property above
    ///     already covers the value part; here we re-check through the
    ///     shared-handle API), and
    /// (b) re-optimizing an already-optimized plan is a no-op pass that
    ///     returns a *pointer-equal* `Arc` root — the engine must detect
    ///     the fixpoint by `Arc::ptr_eq`, not rebuild an identical tree.
    #[test]
    fn noop_passes_are_pointer_equal(e in coll_expr(Scope(0), 3)) {
        use std::sync::Arc;
        let ctx = Context::new();
        let before = eval(&e, &Env::empty(), &ctx);
        let (opt1, _) = kleisli_opt::optimize_shared(
            Arc::new(e.clone()), &NullCatalog, &OptConfig::default());
        // (a) same observable semantics through the shared-handle API
        if let Ok(b) = before {
            match eval(&opt1, &Env::empty(), &ctx) {
                Ok(a) => prop_assert_eq!(
                    b, a, "\n  original: {}\n optimized: {}", e, opt1
                ),
                Err(err) => {
                    return Err(TestCaseError::fail(format!(
                        "optimized plan failed ({err})\n  original: {e}\n optimized: {opt1}"
                    )));
                }
            }
        }
        // (b) a second pipeline run fires nothing and shares the root
        let (opt2, trace2) = kleisli_opt::optimize_shared(
            Arc::clone(&opt1), &NullCatalog, &OptConfig::default());
        prop_assert!(
            trace2.is_empty(),
            "re-optimization fired rules {:?} on {}", trace2, opt1
        );
        prop_assert!(
            Arc::ptr_eq(&opt1, &opt2),
            "no-op optimization must return the same Arc root for {}", opt1
        );
    }

    /// Hash-consing is a pure representation change: interning a plan
    /// (collapsing identical subtrees onto shared `Arc`s) must never
    /// change what it evaluates to — directly, or after optimization.
    #[test]
    fn interning_never_changes_eval_results(e in coll_expr(Scope(0), 3)) {
        use std::sync::Arc;
        let ctx = Context::new();
        let mut interner = nrc::Interner::new();
        let interned = interner.intern(&Arc::new(e.clone()));
        prop_assert_eq!(
            &*interned, &e,
            "interning changed the structure of {}", e
        );
        prop_assert_eq!(nrc::plan_hash(&e), nrc::plan_hash(&interned));
        match (eval(&e, &Env::empty(), &ctx), eval(&interned, &Env::empty(), &ctx)) {
            (Ok(b), Ok(a)) => prop_assert_eq!(b, a, "\n  plan: {}", e),
            (Err(_), Err(_)) => {}
            (b, a) => {
                return Err(TestCaseError::fail(format!(
                    "interning changed the outcome: {b:?} vs {a:?}\n  plan: {e}"
                )));
            }
        }
        // And through the full pipeline: an interned plan optimizes to
        // the same result as the raw plan.
        if let Ok(before) = eval(&e, &Env::empty(), &ctx) {
            let (opt, _) = kleisli_opt::optimize_shared(
                interned, &NullCatalog, &OptConfig::default());
            let after = eval(&opt, &Env::empty(), &ctx)
                .expect("optimized interned plan failed");
            prop_assert_eq!(before, after, "\n  plan: {}\n optimized: {}", e, opt);
        }
    }

    /// The engine's identity-keyed rewrite memo is invisible in the
    /// output: memoized and unmemoized optimization produce plans of the
    /// same shape (they may differ in fresh-variable suffixes, i.e. up to
    /// alpha-equivalence) with the same observable semantics.
    #[test]
    fn rewrite_memo_never_changes_plans(e in coll_expr(Scope(0), 3)) {
        let memo_cfg = OptConfig::default();
        let plain_cfg = OptConfig {
            enable_rewrite_memo: false,
            ..OptConfig::default()
        };
        let (with_memo, _) = optimize(e.clone(), &NullCatalog, &memo_cfg);
        let (without, _) = optimize(e.clone(), &NullCatalog, &plain_cfg);
        prop_assert_eq!(
            with_memo.size(), without.size(),
            "\n  original: {}\n  memoized: {}\n  unmemoized: {}",
            e, with_memo, without
        );
        let ctx = Context::new();
        match (eval(&with_memo, &Env::empty(), &ctx), eval(&without, &Env::empty(), &ctx)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                a, b, "\n  original: {}\n  memoized: {}\n  unmemoized: {}",
                e, with_memo, without
            ),
            (Err(_), Err(_)) => {}
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "memoization changed the outcome: {a:?} vs {b:?}\n  plan: {e}"
                )));
            }
        }
    }

    #[test]
    fn monadic_rules_alone_preserve_semantics(e in coll_expr(Scope(0), 4)) {
        let config = OptConfig {
            enable_pushdown: false,
            enable_joins: false,
            enable_cache: false,
            enable_parallel: false,
            ..OptConfig::default()
        };
        let ctx = Context::new();
        if let Ok(before) = eval(&e, &Env::empty(), &ctx) {
            let (opt, _) = optimize(e.clone(), &NullCatalog, &config);
            let after = eval(&opt, &Env::empty(), &ctx)
                .expect("optimized query failed");
            prop_assert_eq!(before, after, "\n  original: {}\n optimized: {}", e, opt);
        }
    }
}
