//! The ACE object store: classes of named objects carrying tag-value
//! trees, with process-stable object identities.

use std::collections::HashMap;
use std::sync::Arc;

use kleisli_core::{KError, KResult, Oid, Value};

/// A tag's values within an object: each tag holds a list of values
/// (ACE models multi-valued tags as right-branches of the tag tree).
#[derive(Debug, Clone, PartialEq)]
pub struct AceObject {
    pub oid: Oid,
    pub name: String,
    /// tag → values; a value may be a scalar or a reference to another
    /// object (`Value::Ref`).
    pub tags: Vec<(String, Vec<Value>)>,
}

impl AceObject {
    /// Render the object as a CPL record: `[class, name, tag1, tag2, ...]`
    /// where a single-valued tag maps to its value and a multi-valued tag
    /// to a list.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(Arc<str>, Value)> = vec![
            (Arc::from("class"), Value::str(&*self.oid.class)),
            (Arc::from("name"), Value::str(&self.name)),
        ];
        for (tag, vals) in &self.tags {
            let v = match vals.as_slice() {
                [one] => one.clone(),
                many => Value::list(many.to_vec()),
            };
            fields.push((Arc::from(tag.as_str()), v));
        }
        Value::record(fields)
    }
}

/// Classes of named objects.
#[derive(Debug, Default)]
pub struct AceStore {
    classes: HashMap<String, Vec<AceObject>>,
    by_oid: HashMap<Oid, (String, usize)>,
    next_id: u64,
}

impl AceStore {
    pub fn new() -> AceStore {
        AceStore::default()
    }

    /// Insert an object; returns its identity. Tag values referring to
    /// other objects should be built with [`AceStore::reference`].
    pub fn insert(
        &mut self,
        class: &str,
        name: &str,
        tags: Vec<(String, Vec<Value>)>,
    ) -> KResult<Oid> {
        if self.find(class, name).is_some() {
            return Err(KError::format(
                "ace",
                format!("object {class}:\"{name}\" already exists"),
            ));
        }
        self.next_id += 1;
        let oid = Oid {
            class: Arc::from(class),
            id: self.next_id,
        };
        let objs = self.classes.entry(class.to_string()).or_default();
        objs.push(AceObject {
            oid: oid.clone(),
            name: name.to_string(),
            tags,
        });
        self.by_oid
            .insert(oid.clone(), (class.to_string(), objs.len() - 1));
        Ok(oid)
    }

    /// A reference value to a (possibly not-yet-inserted) object; creates
    /// a stub object when the target does not exist, mirroring ACEDB's
    /// forward references in `.ace` files.
    pub fn reference(&mut self, class: &str, name: &str) -> Value {
        if let Some(o) = self.find(class, name) {
            return Value::Ref(o.oid.clone());
        }
        let oid = self
            .insert(class, name, Vec::new())
            .expect("stub insert cannot collide");
        Value::Ref(oid)
    }

    pub fn find(&self, class: &str, name: &str) -> Option<&AceObject> {
        self.classes
            .get(class)?
            .iter()
            .find(|o| o.name == name)
    }

    fn find_mut(&mut self, class: &str, name: &str) -> Option<&mut AceObject> {
        self.classes
            .get_mut(class)?
            .iter_mut()
            .find(|o| o.name == name)
    }

    /// Add tag values to an existing object (or create it) — `.ace`
    /// paragraphs accumulate.
    pub fn upsert(&mut self, class: &str, name: &str, tags: Vec<(String, Vec<Value>)>) -> Oid {
        if self.find(class, name).is_none() {
            return match self.insert(class, name, tags) {
                Ok(oid) => oid,
                Err(_) => unreachable!("checked absence"),
            };
        }
        let obj = self.find_mut(class, name).expect("exists");
        for (tag, vals) in tags {
            match obj.tags.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, existing)) => existing.extend(vals),
                None => obj.tags.push((tag, vals)),
            }
        }
        obj.oid.clone()
    }

    pub fn class(&self, class: &str) -> &[AceObject] {
        self.classes.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn classes(&self) -> impl Iterator<Item = &String> {
        self.classes.keys()
    }

    pub fn object_count(&self) -> usize {
        self.classes.values().map(Vec::len).sum()
    }

    /// Resolve an object identity to its record value.
    pub fn deref(&self, oid: &Oid) -> KResult<Value> {
        let (class, idx) = self
            .by_oid
            .get(oid)
            .ok_or_else(|| KError::eval(format!("dangling ACE reference {oid}")))?;
        Ok(self.classes[class][*idx].to_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_deref() {
        let mut s = AceStore::new();
        let oid = s
            .insert(
                "Clone",
                "c22-5",
                vec![("Length".into(), vec![Value::Int(1200)])],
            )
            .unwrap();
        let obj = s.find("Clone", "c22-5").unwrap();
        assert_eq!(obj.oid, oid);
        let v = s.deref(&oid).unwrap();
        assert_eq!(v.project("Length"), Some(&Value::Int(1200)));
        assert_eq!(v.project("class"), Some(&Value::str("Clone")));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut s = AceStore::new();
        s.insert("Clone", "x", vec![]).unwrap();
        assert!(s.insert("Clone", "x", vec![]).is_err());
    }

    #[test]
    fn forward_references_create_stubs_and_resolve() {
        let mut s = AceStore::new();
        let r = s.reference("Sequence", "seq-1"); // stub
        s.upsert(
            "Sequence",
            "seq-1",
            vec![("DNA".into(), vec![Value::str("ACGT")])],
        );
        let Value::Ref(oid) = &r else { panic!() };
        let v = s.deref(oid).unwrap();
        assert_eq!(v.project("DNA"), Some(&Value::str("ACGT")));
    }

    #[test]
    fn upsert_accumulates_multivalued_tags() {
        let mut s = AceStore::new();
        s.upsert("Clone", "c1", vec![("Remark".into(), vec![Value::str("a")])]);
        s.upsert("Clone", "c1", vec![("Remark".into(), vec![Value::str("b")])]);
        let v = s.find("Clone", "c1").unwrap().to_value();
        assert_eq!(
            v.project("Remark"),
            Some(&Value::list(vec![Value::str("a"), Value::str("b")]))
        );
    }

    #[test]
    fn dangling_reference_errors() {
        let s = AceStore::new();
        let oid = Oid {
            class: Arc::from("Clone"),
            id: 42,
        };
        assert!(s.deref(&oid).is_err());
    }
}
