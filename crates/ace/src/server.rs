//! The ACE `Driver`: serves class scans and named-object fetches through
//! the two-phase submit/handle API, with the server's tolerated request
//! concurrency enforced by its worker pool (at most
//! `ACE_CONCURRENT_REQUESTS` threads, reused across requests) and rows
//! prefetched a bounded distance ahead of the consumer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use kleisli_core::{
    Capabilities, Driver, DriverMetrics, DriverRequest, KError, KResult, LatencyModel,
    MetricsSnapshot, Oid, RequestHandle, ResiliencePolicy, Value, WorkerPool, charged_blocks,
    BlockStream,
};

use crate::store::AceStore;

/// A served ACE database.
pub struct AceServer {
    core: Arc<AceCore>,
    pool: WorkerPool,
}

/// Shared server state, `Arc`'d for the request workers.
struct AceCore {
    name: String,
    store: RwLock<AceStore>,
    latency: Arc<LatencyModel>,
    metrics: Arc<DriverMetrics>,
    /// Reachability knob: `false` simulates the lab workstation being
    /// down — requests fail with a retryable `KError::Transport` so the
    /// resilience layer can retry them and the breaker counts them.
    available: AtomicBool,
}

/// ACE servers of the era tolerated only a few concurrent clients.
const ACE_CONCURRENT_REQUESTS: usize = 4;

/// The *ceiling* on rows a pool worker pulls ahead of the consumer per
/// request; the buffer's effective depth adapts between 0 and this to
/// the consumer's drain rate (`kleisli_core::pool`, "Adaptive depth").
/// ACE objects are deep trees; keep the buffered working set small.
/// Advertised only when the server's latency model charges a per-row
/// transfer cost — with instant rows there is no latency to hide.
pub const ACE_PREFETCH_ROWS: usize = 8;

impl AceServer {
    pub fn new(name: impl Into<String>, store: AceStore, latency: LatencyModel) -> AceServer {
        let core = Arc::new(AceCore {
            name: name.into(),
            store: RwLock::new(store),
            latency: Arc::new(latency),
            metrics: Arc::new(DriverMetrics::default()),
            available: AtomicBool::new(true),
        });
        let pool = WorkerPool::new(
            "ace",
            ACE_CONCURRENT_REQUESTS,
            Some(Arc::clone(&core.metrics)),
        );
        AceServer { core, pool }
    }

    pub fn with_store<R>(&self, f: impl FnOnce(&mut AceStore) -> R) -> R {
        f(&mut self.core.store.write())
    }

    /// Resolve an object identity (used by the session's `deref`).
    pub fn deref(&self, oid: &Oid) -> KResult<Value> {
        self.core.store.read().deref(oid)
    }

    /// Simulate the server (un)reachable: while `false`, every request
    /// fails with a retryable transport error. Fault injection for the
    /// resilience tests and benchmarks.
    pub fn set_available(&self, up: bool) {
        self.core.available.store(up, Ordering::Release);
    }
}

impl AceCore {
    fn perform(&self, req: &DriverRequest) -> KResult<BlockStream> {
        self.metrics.record_request();
        if !self.available.load(Ordering::Acquire) {
            return Err(KError::transport(&self.name, "connection refused"));
        }
        self.latency.charge_request();
        let rows: Vec<Value> = match req {
            DriverRequest::AceFetch { class, name } => {
                let store = self.store.read();
                match name {
                    Some(n) => {
                        let obj = store.find(class, n).ok_or_else(|| {
                            KError::driver(
                                &self.name,
                                format!("no object {class}:\"{n}\""),
                            )
                        })?;
                        vec![obj.to_value()]
                    }
                    None => store.class(class).iter().map(|o| o.to_value()).collect(),
                }
            }
            other => {
                return Err(KError::driver(
                    &self.name,
                    format!("unsupported request: {}", other.describe()),
                ))
            }
        };
        Ok(charged_blocks(
            rows,
            Arc::clone(&self.latency),
            Arc::clone(&self.metrics),
        ))
    }
}

impl Driver for AceServer {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            max_concurrent_requests: ACE_CONCURRENT_REQUESTS,
            // 0 unless the latency model realizes a real per-row sleep:
            // prefetch pipelines wall-clock transfer latency only.
            prefetch_rows: self.core.latency.effective_prefetch(ACE_PREFETCH_ROWS),
            // a remote source: advertise retry + circuit breaking
            resilience: ResiliencePolicy::standard(),
            ..Capabilities::default()
        }
    }

    fn perform(&self, req: &DriverRequest) -> KResult<BlockStream> {
        self.core.perform(req)
    }

    fn submit(&self, req: &DriverRequest) -> KResult<RequestHandle> {
        let core = Arc::clone(&self.core);
        let req = req.clone();
        let prefetch = self.capabilities().prefetch_rows;
        Ok(self.pool.submit(prefetch, move || core.perform(&req)))
    }

    fn nonblocking_submit(&self) -> bool {
        true
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.core.metrics.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> AceServer {
        let mut store = AceStore::new();
        store
            .insert(
                "Clone",
                "c22-5",
                vec![("Length".into(), vec![Value::Int(1200)])],
            )
            .unwrap();
        store
            .insert(
                "Clone",
                "c22-9",
                vec![("Length".into(), vec![Value::Int(900)])],
            )
            .unwrap();
        AceServer::new("ACE22", store, LatencyModel::instant())
    }

    #[test]
    fn class_scan_and_named_fetch() {
        let s = server();
        let all: Vec<Value> = s
            .submit(&DriverRequest::AceFetch {
                class: "Clone".into(),
                name: None,
            })
            .unwrap()
            .wait()
            .unwrap()
            .collect::<KResult<_>>()
            .unwrap();
        assert_eq!(all.len(), 2);
        let one: Vec<Value> = s
            .submit(&DriverRequest::AceFetch {
                class: "Clone".into(),
                name: Some("c22-9".into()),
            })
            .unwrap()
            .wait()
            .unwrap()
            .collect::<KResult<_>>()
            .unwrap();
        assert_eq!(one[0].project("Length"), Some(&Value::Int(900)));
    }

    #[test]
    fn missing_object_is_a_driver_error() {
        let s = server();
        assert!(s
            .submit(&DriverRequest::AceFetch {
                class: "Clone".into(),
                name: Some("nope".into())
            })
            .unwrap()
            .wait()
            .is_err());
    }

    #[test]
    fn metrics_count_rows() {
        let s = server();
        let _ = s
            .perform(&DriverRequest::AceFetch {
                class: "Clone".into(),
                name: None,
            })
            .unwrap()
            .collect::<Vec<_>>();
        assert_eq!(s.metrics().rows_shipped, 2);
    }
}
