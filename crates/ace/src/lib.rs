//! # ace-sim
//!
//! A simulation of ACEDB, the tree-structured object database the paper
//! names as "an extremely popular data format within the HGP". ACE brings
//! the two features Section 2 singles out: **classes** and **object
//! identity**. CPL dereferences and pattern-matches references but never
//! creates or updates them; bulk creation happens through the `.ace` text
//! format, which the paper notes can be generated with CPL's printing
//! machinery ("bulk load").
//!
//! * [`store`] — classes, named objects with OIDs, tag-value trees.
//! * [`mod@format`] — the `.ace` bulk-load text format (parse and print).
//! * [`server`] — the ACE `Driver` for `[class = ..., name = ...]`
//!   requests.

pub mod format;
pub mod server;
pub mod store;

pub use format::{parse_ace, print_ace};
pub use server::AceServer;
pub use store::AceStore;
