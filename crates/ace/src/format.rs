//! The `.ace` bulk-load text format.
//!
//! ```text
//! Sequence : "seq-22-1"
//! Clone "c22-5"
//! Length 1200
//! Remark "cosmid walk"
//!
//! Clone : "c22-5"
//! Map "chr22"
//! ```
//!
//! Paragraphs are separated by blank lines; the first line names the
//! object (`Class : "name"`), following lines are `Tag value...` where a
//! value is a quoted string, a number, or `Class "name"` (a reference).
//! This is the format the paper says CPL generates "with the existing
//! machinery of CPL by applying the appropriate output reformatting
//! routines".

use kleisli_core::{KError, KResult, Value};

use crate::store::AceStore;

/// Parse `.ace` text into a store.
pub fn parse_ace(text: &str) -> KResult<AceStore> {
    let mut store = AceStore::new();
    for (pno, para) in paragraphs(text).into_iter().enumerate() {
        let mut lines = para.iter();
        let header = lines.next().expect("non-empty paragraph");
        let (class, name) = parse_header(header)
            .ok_or_else(|| KError::format("ace", format!("bad paragraph {pno} header: {header}")))?;
        let mut tags: Vec<(String, Vec<Value>)> = Vec::new();
        for line in lines {
            let (tag, values) = parse_tag_line(line, &mut store)
                .ok_or_else(|| KError::format("ace", format!("bad tag line: {line}")))?;
            // repeated tag lines within a paragraph accumulate values
            match tags.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, existing)) => existing.extend(values),
                None => tags.push((tag, values)),
            }
        }
        store.upsert(&class, &name, tags);
    }
    Ok(store)
}

/// Print a store as `.ace` text (stable order: class, then object name).
pub fn print_ace(store: &AceStore) -> String {
    let mut classes: Vec<&String> = store.classes().collect();
    classes.sort();
    let mut out = String::new();
    for class in classes {
        let mut objs: Vec<_> = store.class(class).iter().collect();
        objs.sort_by(|a, b| a.name.cmp(&b.name));
        for obj in objs {
            out.push_str(&format!("{class} : \"{}\"\n", obj.name));
            for (tag, values) in &obj.tags {
                for v in values {
                    out.push_str(tag);
                    out.push(' ');
                    match v {
                        Value::Str(s) => out.push_str(&format!("\"{s}\"")),
                        Value::Int(i) => out.push_str(&i.to_string()),
                        Value::Float(x) => out.push_str(&format!("{x:?}")),
                        Value::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
                        Value::Ref(oid) => {
                            // references print as Class "name"
                            let target = store
                                .deref(oid)
                                .ok()
                                .and_then(|t| t.project("name").cloned());
                            match target {
                                Some(Value::Str(n)) => {
                                    out.push_str(&format!("{} \"{}\"", oid.class, n))
                                }
                                _ => out.push_str(&format!("{} \"?{}\"", oid.class, oid.id)),
                            }
                        }
                        other => out.push_str(&format!("\"{other}\"")),
                    }
                    out.push('\n');
                }
            }
            out.push('\n');
        }
    }
    out
}

fn paragraphs(text: &str) -> Vec<Vec<&str>> {
    let mut out = Vec::new();
    let mut cur: Vec<&str> = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.trim().is_empty() {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        } else if !line.trim_start().starts_with("//") {
            cur.push(line);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_header(line: &str) -> Option<(String, String)> {
    let (class, rest) = line.split_once(':')?;
    let name = rest.trim().strip_prefix('"')?.strip_suffix('"')?;
    Some((class.trim().to_string(), name.to_string()))
}

fn parse_tag_line(line: &str, store: &mut AceStore) -> Option<(String, Vec<Value>)> {
    let mut rest = line.trim();
    let tag_end = rest.find(char::is_whitespace)?;
    let tag = rest[..tag_end].to_string();
    rest = rest[tag_end..].trim_start();
    let mut values = Vec::new();
    while !rest.is_empty() {
        if let Some(q) = rest.strip_prefix('"') {
            let end = q.find('"')?;
            values.push(Value::str(&q[..end]));
            rest = q[end + 1..].trim_start();
        } else {
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let word = &rest[..end];
            rest = rest[end..].trim_start();
            if let Ok(i) = word.parse::<i64>() {
                values.push(Value::Int(i));
            } else if let Ok(x) = word.parse::<f64>() {
                values.push(Value::Float(x));
            } else if word == "TRUE" {
                values.push(Value::Bool(true));
            } else if word == "FALSE" {
                values.push(Value::Bool(false));
            } else if word.chars().next().is_some_and(char::is_uppercase) {
                // `Class "name"` reference: consume the following string
                let q = rest.strip_prefix('"')?;
                let end = q.find('"')?;
                let name = &q[..end];
                rest = q[end + 1..].trim_start();
                values.push(store.reference(word, name));
            } else {
                return None;
            }
        }
    }
    Some((tag, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
Sequence : "seq-22-1"
Clone Clone "c22-5"
Length 1200
Remark "cosmid walk" "verified"

Clone : "c22-5"
Map "chr22"
"#;

    #[test]
    fn parse_paragraphs_and_references() {
        let store = parse_ace(SAMPLE).unwrap();
        assert_eq!(store.object_count(), 2);
        let seq = store.find("Sequence", "seq-22-1").unwrap().to_value();
        assert_eq!(seq.project("Length"), Some(&Value::Int(1200)));
        // the Clone tag is a reference
        let clone_ref = seq.project("Clone").unwrap();
        let Value::Ref(oid) = clone_ref else {
            panic!("expected a reference, got {clone_ref}");
        };
        let target = store.deref(oid).unwrap();
        assert_eq!(target.project("Map"), Some(&Value::str("chr22")));
        // multi-valued tag
        assert_eq!(
            seq.project("Remark"),
            Some(&Value::list(vec![
                Value::str("cosmid walk"),
                Value::str("verified")
            ]))
        );
    }

    #[test]
    fn roundtrip_through_print() {
        let store = parse_ace(SAMPLE).unwrap();
        let text = print_ace(&store);
        let store2 = parse_ace(&text).unwrap();
        assert_eq!(store2.object_count(), store.object_count());
        let a = store.find("Sequence", "seq-22-1").unwrap().to_value();
        let b = store2.find("Sequence", "seq-22-1").unwrap().to_value();
        // references get fresh oids on reparse; compare projected scalars
        assert_eq!(a.project("Length"), b.project("Length"));
        assert_eq!(a.project("Remark"), b.project("Remark"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "// header comment\n\nClone : \"c1\"\nLength 5\n\n\n";
        let store = parse_ace(text).unwrap();
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_ace("Clone \"missing colon\"\n").is_err());
        assert!(parse_ace("Clone : \"c\"\nTag \"unterminated\n").is_err());
    }
}
