//! # bio-data
//!
//! Deterministic, seeded generators for the biological data the paper's
//! system federates. The shapes follow what the paper prints:
//!
//! * **GDB** relational extracts — the `locus`, `object_genbank_eref` and
//!   `locus_cyto_location` tables used by `Loci22`, with cytogenetic band
//!   positions for the Figure-1 band-interval parameter;
//! * **GenBank** `Seq-entry` values — nested records with variant-typed
//!   sequence ids (`giim` / `accession`), publications with variant-typed
//!   journals, keyword sets and DNA sequences — plus the precomputed
//!   homology-link graph served by `NA-Links`;
//! * **Publications** — the `Publication` type from the paper's
//!   introduction, for the restructuring examples of Section 2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kleisli_core::Value;

pub mod gdb;
pub mod genbank;
pub mod publications;
pub mod server;

pub use gdb::{GdbConfig, GdbData};
pub use genbank::{GenBankConfig, GenBankData};
pub use publications::publications;
pub use server::MemorySource;

/// Shared RNG constructor so every generator is reproducible.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random DNA string of the given length.
pub(crate) fn dna(rng: &mut StdRng, len: usize) -> String {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// A GenBank-style accession number, unique per index `n`.
pub(crate) fn accession(n: usize) -> String {
    let letter = (b'A' + (n % 26) as u8) as char;
    format!("{letter}{:05}", 10_000 + n)
}

/// Helper: string value.
pub(crate) fn s(v: impl AsRef<str>) -> Value {
    Value::str(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = GdbData::generate(&GdbConfig {
            loci: 50,
            seed: 7,
            ..Default::default()
        });
        let b = GdbData::generate(&GdbConfig {
            loci: 50,
            seed: 7,
            ..Default::default()
        });
        assert_eq!(a.loci.len(), b.loci.len());
        assert_eq!(a.loci[10], b.loci[10]);
    }

    #[test]
    fn dna_is_dna() {
        let mut r = rng(1);
        let d = dna(&mut r, 100);
        assert_eq!(d.len(), 100);
        assert!(d.chars().all(|c| "ACGT".contains(c)));
    }

    #[test]
    fn accessions_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..1000 {
            assert!(seen.insert(accession(n)));
        }
    }
}
