//! Generator for the `Publication` type printed in the paper's
//! introduction: title, author list, variant-typed journal, volume/issue/
//! year/pages, abstract, and keyword set.

use rand::Rng;

use kleisli_core::Value;

use crate::s;

const JOURNALS: [&str; 5] = [
    "J Immunol",
    "Nucleic Acids Research",
    "Nature",
    "Cell",
    "Genomics",
];

const SURNAMES: [&str; 8] = [
    "Lichtenheld",
    "Podack",
    "Buneman",
    "Davidson",
    "Hart",
    "Overton",
    "Wong",
    "Smith",
];

const KEYWORDS: [&str; 7] = [
    "Amino Acid Sequence",
    "Base Sequence",
    "Exons",
    "Genes, Structural",
    "Chromosome 22",
    "Human Genome Project",
    "Sequence Homology",
];

const TOPICS: [&str; 6] = [
    "the human perforin gene",
    "cosmid contigs on chromosome 22q11",
    "a transcription map of the DiGeorge region",
    "immunoglobulin lambda variable genes",
    "a yeast artificial chromosome library",
    "long-range restriction mapping",
];

/// Generate `n` publication records with the paper's `Publication` type.
/// Journals follow the variant structure: roughly a third `uncontrolled`
/// (free-text, the informal review process) and the rest `controlled`
/// with a nested variant choosing among `medline-jta`, `iso-jta`,
/// `journal-title` and `issn`.
pub fn publications(n: usize, seed: u64) -> Value {
    let mut rng = crate::rng(seed);
    let mut pubs = Vec::with_capacity(n);
    for i in 0..n {
        let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
        let journal = if rng.gen_ratio(1, 3) {
            Value::variant(
                "uncontrolled",
                s(format!("{} lab report", SURNAMES[rng.gen_range(0..SURNAMES.len())])),
            )
        } else {
            let name = JOURNALS[rng.gen_range(0..JOURNALS.len())];
            let inner = match rng.gen_range(0..4) {
                0 => Value::variant("medline-jta", s(name)),
                1 => Value::variant("iso-jta", s(name)),
                2 => Value::variant("journal-title", s(name)),
                _ => Value::variant("issn", s(format!("00{:02}-{:04}", i % 100, 1000 + i))),
            };
            Value::variant("controlled", inner)
        };
        let n_authors = rng.gen_range(1..4);
        let authors = Value::list(
            (0..n_authors)
                .map(|a| {
                    Value::record_from(vec![
                        ("name", s(SURNAMES[(i + a) % SURNAMES.len()])),
                        (
                            "initial",
                            s(format!("{}", (b'A' + ((i + a) % 26) as u8) as char)),
                        ),
                    ])
                })
                .collect(),
        );
        let n_kw = rng.gen_range(1..4);
        let keywd = Value::set(
            (0..n_kw)
                .map(|_| s(KEYWORDS[rng.gen_range(0..KEYWORDS.len())]))
                .collect(),
        );
        pubs.push(Value::record_from(vec![
            ("title", s(format!("Structure of {topic} ({i})"))),
            ("authors", authors),
            ("journal", journal),
            ("volume", s(format!("{}", 100 + i % 80))),
            ("issue", s(format!("{}", 1 + i % 12))),
            ("year", Value::Int(1985 + (i % 10) as i64)),
            ("pages", s(format!("{}-{}", 4000 + i, 4008 + i))),
            ("abstract", s(format!("We have cloned {topic}."))),
            ("keywd", keywd),
        ]));
    }
    Value::set(pubs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kleisli_core::Type;

    #[test]
    fn publications_conform_to_the_papers_type() {
        let ty = Type::set(Type::Record(
            vec![
                (std::sync::Arc::from("title"), Type::Str),
                (
                    std::sync::Arc::from("authors"),
                    Type::list(Type::record(vec![
                        ("name", Type::Str),
                        ("initial", Type::Str),
                    ])),
                ),
                (
                    std::sync::Arc::from("journal"),
                    Type::variant(vec![
                        ("uncontrolled", Type::Str),
                        (
                            "controlled",
                            Type::Variant(
                                vec![
                                    (std::sync::Arc::from("medline-jta"), Type::Str),
                                    (std::sync::Arc::from("iso-jta"), Type::Str),
                                    (std::sync::Arc::from("journal-title"), Type::Str),
                                    (std::sync::Arc::from("issn"), Type::Str),
                                ],
                                false,
                            ),
                        ),
                    ]),
                ),
                (std::sync::Arc::from("year"), Type::Int),
                (std::sync::Arc::from("keywd"), Type::set(Type::Str)),
            ],
            true,
        ));
        let pubs = publications(50, 42);
        assert!(ty.admits(&pubs), "generated publications violate the type");
        assert_eq!(pubs.len(), Some(50));
    }

    #[test]
    fn journals_cover_both_variants() {
        let pubs = publications(100, 7);
        let mut uncontrolled = 0;
        let mut controlled = 0;
        for p in pubs.elements().unwrap() {
            match p.project("journal") {
                Some(Value::Variant(tag, _)) if &**tag == "uncontrolled" => uncontrolled += 1,
                Some(Value::Variant(tag, _)) if &**tag == "controlled" => controlled += 1,
                other => panic!("unexpected journal {other:?}"),
            }
        }
        assert!(uncontrolled > 10);
        assert!(controlled > 10);
    }
}
