//! GenBank-shaped ASN.1 entries and the homology-link graph.
//!
//! Each entry is a `Seq-entry` complex object:
//!
//! ```text
//! [seq = [id = { <giim = uid>, <accession = "M81409"> },
//!         descr = "...", inst = [length = n, seq-data = "ACGT..."]],
//!  organism = "...",
//!  keywords = {"..."},
//!  pubs = {Publication}]
//! ```
//!
//! Entries are indexed by `accession`, `organism`, and `chromosome`; the
//! link graph provides the precomputed similarity neighbors `NA-Links`
//! returns, each with a score and the *neighbor's* organism so the DOE
//! query can keep only non-human homologs.

use rand::Rng;

use entrez_sim::server::Link;
use entrez_sim::EntrezServer;
use kleisli_core::Value;

use crate::gdb::GdbData;
use crate::{dna, s};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GenBankConfig {
    /// Extra entries beyond those cross-referenced from GDB.
    pub extra_entries: usize,
    /// Homology links per entry.
    pub links_per_entry: usize,
    /// Sequence length.
    pub seq_len: usize,
    pub seed: u64,
}

impl Default for GenBankConfig {
    fn default() -> Self {
        GenBankConfig {
            extra_entries: 200,
            links_per_entry: 4,
            seq_len: 120,
            seed: 81409,
        }
    }
}

const ORGANISMS: [&str; 6] = [
    "Homo sapiens",
    "Mus musculus",
    "Rattus norvegicus",
    "Gallus gallus",
    "Drosophila melanogaster",
    "Saccharomyces cerevisiae",
];

/// One generated entry.
#[derive(Debug, Clone)]
pub struct GenBankEntry {
    pub uid: i64,
    pub accession: String,
    pub organism: String,
    pub chromosome: Option<String>,
    pub value: Value,
}

/// The generated entries and links.
#[derive(Debug, Clone)]
pub struct GenBankData {
    pub entries: Vec<GenBankEntry>,
    /// (from uid, to uid, score)
    pub links: Vec<(i64, i64, f64)>,
}

impl GenBankData {
    /// Generate entries for every GDB cross-reference (same accession,
    /// human, on the locus's chromosome) plus `extra_entries` from other
    /// organisms, then a link graph.
    pub fn generate(config: &GenBankConfig, gdb: &GdbData) -> GenBankData {
        let mut rng = crate::rng(config.seed);
        let mut entries = Vec::new();
        let mut uid = 100_000i64;
        for locus in &gdb.loci {
            let Some(acc) = &locus.genbank_ref else {
                continue;
            };
            uid += 1;
            entries.push(make_entry(
                &mut rng,
                uid,
                acc,
                "Homo sapiens",
                Some(&locus.chromosome),
                config.seq_len,
                &format!("Human {} locus", locus.symbol),
            ));
        }
        for n in 0..config.extra_entries {
            uid += 1;
            let organism = ORGANISMS[1 + rng.gen_range(0..ORGANISMS.len() - 1)];
            let acc = crate::accession(50_000 + n);
            entries.push(make_entry(
                &mut rng,
                uid,
                &acc,
                organism,
                None,
                config.seq_len,
                &format!("{organism} homologous sequence {n}"),
            ));
        }
        // link graph: each entry links to k random others
        let mut links = Vec::new();
        if entries.len() > 1 {
            for e in &entries {
                for _ in 0..config.links_per_entry {
                    let target = &entries[rng.gen_range(0..entries.len())];
                    if target.uid != e.uid {
                        links.push((e.uid, target.uid, rng.gen_range(0.5..1.0)));
                    }
                }
            }
        }
        GenBankData { entries, links }
    }

    /// Load entries, index terms and links into an Entrez server division.
    pub fn load(&self, server: &EntrezServer, db: &str) -> kleisli_core::KResult<()> {
        let by_uid: std::collections::HashMap<i64, &GenBankEntry> =
            self.entries.iter().map(|e| (e.uid, e)).collect();
        server.with_division(db, |division| -> kleisli_core::KResult<()> {
            for e in &self.entries {
                let mut terms = vec![
                    ("accession".to_string(), e.accession.clone()),
                    ("organism".to_string(), e.organism.clone()),
                ];
                if let Some(chr) = &e.chromosome {
                    terms.push(("chromosome".to_string(), chr.clone()));
                }
                division.add_entry(e.uid, e.value.clone(), terms)?;
            }
            for (from, to, score) in &self.links {
                let organism = by_uid
                    .get(to)
                    .map(|t| t.organism.clone())
                    .unwrap_or_default();
                division.add_link(
                    *from,
                    Link {
                        uid: *to,
                        score: *score,
                        organism,
                    },
                );
            }
            Ok(())
        })
    }

    pub fn entry_by_accession(&self, acc: &str) -> Option<&GenBankEntry> {
        self.entries.iter().find(|e| e.accession == acc)
    }

    /// Non-human link targets of a uid — the expected homolog set for the
    /// DOE query.
    pub fn expected_non_human_links(&self, uid: i64) -> Vec<i64> {
        let human: std::collections::HashSet<i64> = self
            .entries
            .iter()
            .filter(|e| e.organism == "Homo sapiens")
            .map(|e| e.uid)
            .collect();
        self.links
            .iter()
            .filter(|(f, t, _)| *f == uid && !human.contains(t))
            .map(|(_, t, _)| *t)
            .collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn make_entry(
    rng: &mut rand::rngs::StdRng,
    uid: i64,
    accession: &str,
    organism: &str,
    chromosome: Option<&str>,
    seq_len: usize,
    descr: &str,
) -> GenBankEntry {
    let sequence = dna(rng, seq_len);
    let keywords = {
        const KW: [&str; 6] = [
            "Exons",
            "Base Sequence",
            "Amino Acid Sequence",
            "Genes, Structural",
            "Repetitive Sequences",
            "Promoter Regions",
        ];
        let n = rng.gen_range(1..4);
        Value::set((0..n).map(|_| s(KW[rng.gen_range(0..KW.len())])).collect())
    };
    let value = Value::record_from(vec![
        (
            "seq",
            Value::record_from(vec![
                (
                    "id",
                    Value::set(vec![
                        Value::variant("giim", Value::Int(uid)),
                        Value::variant("accession", s(accession)),
                    ]),
                ),
                ("descr", s(descr)),
                (
                    "inst",
                    Value::record_from(vec![
                        ("length", Value::Int(sequence.len() as i64)),
                        ("seq-data", s(&sequence)),
                    ]),
                ),
            ]),
        ),
        ("organism", s(organism)),
        ("keywords", keywords),
        (
            "chromosome",
            match chromosome {
                Some(c) => Value::variant("known", s(c)),
                None => Value::variant("unknown", Value::Unit),
            },
        ),
    ]);
    GenBankEntry {
        uid,
        accession: accession.to_string(),
        organism: organism.to_string(),
        chromosome: chromosome.map(String::from),
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdb::GdbConfig;
    use kleisli_core::{Driver, DriverRequest, KResult, LatencyModel};

    fn data() -> (GdbData, GenBankData) {
        let gdb = GdbData::generate(&GdbConfig {
            loci: 100,
            seed: 5,
            ..Default::default()
        });
        let gb = GenBankData::generate(
            &GenBankConfig {
                extra_entries: 30,
                seed: 5,
                ..Default::default()
            },
            &gdb,
        );
        (gdb, gb)
    }

    #[test]
    fn every_gdb_ref_has_an_entry() {
        let (gdb, gb) = data();
        for locus in &gdb.loci {
            if let Some(acc) = &locus.genbank_ref {
                let e = gb.entry_by_accession(acc).expect("entry exists");
                assert_eq!(e.organism, "Homo sapiens");
                assert_eq!(e.chromosome.as_deref(), Some(locus.chromosome.as_str()));
            }
        }
    }

    #[test]
    fn loads_into_entrez_and_fetches_by_accession() {
        let (gdb, gb) = data();
        let server = EntrezServer::new("GenBank", LatencyModel::instant());
        gb.load(&server, "na").unwrap();
        let locus = gdb
            .loci
            .iter()
            .find(|l| l.genbank_ref.is_some())
            .unwrap();
        let acc = locus.genbank_ref.as_deref().unwrap();
        let hits: Vec<Value> = server
            .submit(&DriverRequest::EntrezFetch {
                db: "na".into(),
                query: format!("accession {acc}"),
                path: Some("Seq-entry.seq.id..giim".into()),
            })
            .unwrap()
            .wait()
            .unwrap()
            .collect::<KResult<_>>()
            .unwrap();
        assert_eq!(hits.len(), 1);
        let expected_uid = gb.entry_by_accession(acc).unwrap().uid;
        assert_eq!(hits[0], Value::set(vec![Value::Int(expected_uid)]));
    }

    #[test]
    fn links_resolve_with_organisms() {
        let (_, gb) = data();
        let server = EntrezServer::new("GenBank", LatencyModel::instant());
        gb.load(&server, "na").unwrap();
        let some_linked = gb.links[0].0;
        let links: Vec<Value> = server
            .submit(&DriverRequest::EntrezLinks {
                db: "na".into(),
                uid: some_linked,
            })
            .unwrap()
            .wait()
            .unwrap()
            .collect::<KResult<_>>()
            .unwrap();
        assert!(!links.is_empty());
        for l in &links {
            assert!(l.project("organism").is_some());
            assert!(l.project("score").is_some());
        }
    }
}
