//! GDB-shaped relational data: the three tables the paper's `Loci22`
//! query joins, with the schema names used in its SQL.

use rand::Rng;

use sybase_sim::storage::Datum;
use sybase_sim::Database;

use crate::accession;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GdbConfig {
    /// Total loci across all chromosomes.
    pub loci: usize,
    /// Chromosomes to spread loci over (names "1".."22","X","Y" cycle).
    pub chromosomes: usize,
    /// Fraction (0..=100) of loci that carry a GenBank cross-reference of
    /// object class 1 (the class `Loci22` selects).
    pub genbank_ref_pct: u32,
    pub seed: u64,
}

impl Default for GdbConfig {
    fn default() -> Self {
        GdbConfig {
            loci: 500,
            chromosomes: 24,
            genbank_ref_pct: 80,
            seed: 22,
        }
    }
}

/// One generated locus.
#[derive(Debug, Clone, PartialEq)]
pub struct Locus {
    pub locus_id: i64,
    pub symbol: String,
    pub chromosome: String,
    pub band: String,
    /// GenBank accession, if cross-referenced.
    pub genbank_ref: Option<String>,
    /// Object class key for the cross-reference (1 = sequence object).
    pub object_class_key: i64,
}

/// The generated data plus loaders.
#[derive(Debug, Clone)]
pub struct GdbData {
    pub loci: Vec<Locus>,
}

pub(crate) fn chromosome_name(i: usize) -> String {
    match i % 24 {
        22 => "X".to_string(),
        23 => "Y".to_string(),
        n => (n + 1).to_string(),
    }
}

impl GdbData {
    pub fn generate(config: &GdbConfig) -> GdbData {
        let mut rng = crate::rng(config.seed);
        let mut loci = Vec::with_capacity(config.loci);
        for i in 0..config.loci {
            let chromosome = chromosome_name(rng.gen_range(0..config.chromosomes.max(1)));
            let arm = if rng.gen_bool(0.5) { "p" } else { "q" };
            let band = format!("{chromosome}{arm}{}{}", rng.gen_range(1..=3), rng.gen_range(1..=9));
            let has_ref = rng.gen_range(0..100) < config.genbank_ref_pct;
            loci.push(Locus {
                locus_id: i as i64 + 1,
                symbol: format!("D{}S{}", chromosome, 100 + i),
                chromosome,
                band,
                genbank_ref: has_ref.then(|| accession(i)),
                object_class_key: if rng.gen_bool(0.9) { 1 } else { 2 },
            });
        }
        GdbData { loci }
    }

    /// Load into a relational database using the paper's schema:
    /// `locus(locus_id, locus_symbol)`,
    /// `object_genbank_eref(object_id, genbank_ref, object_class_key)`,
    /// `locus_cyto_location(locus_cyto_location_id, loc_cyto_chrom_num,
    /// loc_cyto_band)`. Indexes are created on the join columns ("where
    /// pre-computed indexes and table statistics may be exploited").
    pub fn load(&self, db: &mut Database) -> kleisli_core::KResult<()> {
        db.create_table("locus", &["locus_id", "locus_symbol"])?;
        db.create_table(
            "object_genbank_eref",
            &["object_id", "genbank_ref", "object_class_key"],
        )?;
        db.create_table(
            "locus_cyto_location",
            &["locus_cyto_location_id", "loc_cyto_chrom_num", "loc_cyto_band"],
        )?;
        for l in &self.loci {
            db.table_mut("locus")?
                .insert(vec![Datum::Int(l.locus_id), Datum::str(&l.symbol)])?;
            if let Some(acc) = &l.genbank_ref {
                db.table_mut("object_genbank_eref")?.insert(vec![
                    Datum::Int(l.locus_id),
                    Datum::str(acc),
                    Datum::Int(l.object_class_key),
                ])?;
            }
            db.table_mut("locus_cyto_location")?.insert(vec![
                Datum::Int(l.locus_id),
                Datum::str(&l.chromosome),
                Datum::str(&l.band),
            ])?;
        }
        db.table_mut("locus")?.create_index("locus_id")?;
        db.table_mut("object_genbank_eref")?.create_index("object_id")?;
        db.table_mut("locus_cyto_location")?
            .create_index("locus_cyto_location_id")?;
        Ok(())
    }

    /// Accessions of loci on a chromosome with class-1 GenBank refs — the
    /// expected result of `Loci22` for correctness checks.
    pub fn expected_loci(&self, chromosome: &str) -> Vec<(&str, &str)> {
        self.loci
            .iter()
            .filter(|l| l.chromosome == chromosome && l.object_class_key == 1)
            .filter_map(|l| {
                l.genbank_ref
                    .as_deref()
                    .map(|acc| (l.symbol.as_str(), acc))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sybase_sim::{execute_query, parse};

    #[test]
    fn load_and_query_loci22() {
        let data = GdbData::generate(&GdbConfig {
            loci: 200,
            seed: 1,
            ..Default::default()
        });
        let mut db = Database::new();
        data.load(&mut db).unwrap();
        let rows = execute_query(
            &db,
            &parse(
                "select locus_symbol, genbank_ref \
                 from locus, object_genbank_eref, locus_cyto_location \
                 where locus.locus_id = locus_cyto_location.locus_cyto_location_id \
                 and locus.locus_id = object_genbank_eref.object_id \
                 and object_class_key = 1 \
                 and loc_cyto_chrom_num = '22'",
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(rows.len(), data.expected_loci("22").len());
        assert!(!rows.is_empty(), "seed must place some loci on chr 22");
    }

    #[test]
    fn chromosome_names_cover_x_y() {
        assert_eq!(chromosome_name(0), "1");
        assert_eq!(chromosome_name(21), "22");
        assert_eq!(chromosome_name(22), "X");
        assert_eq!(chromosome_name(23), "Y");
    }

    #[test]
    fn stats_expose_indexes_for_optimizer() {
        let data = GdbData::generate(&GdbConfig::default());
        let mut db = Database::new();
        data.load(&mut db).unwrap();
        let stats = db.table("locus").unwrap().stats();
        assert!(stats.indexed_columns.contains(&"locus_id".to_string()));
        assert_eq!(stats.columns, vec!["locus_id", "locus_symbol"]);
    }
}
