//! A local in-memory `Driver` over generated biological data — the
//! simplest citizen of the two-phase driver API.
//!
//! Unlike the simulated remote servers (Sybase/Entrez/ACE), a local
//! source has no latency worth hiding, so it implements **only**
//! [`Driver::perform`] and inherits the default blocking `submit`
//! adapter: submission performs inline and returns an already-completed
//! [`kleisli_core::RequestHandle`]. This is the "simple drivers stay one
//! method" end of the API; see `kleisli_core::driver` for the lifecycle.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kleisli_core::{
    Capabilities, Driver, DriverMetrics, DriverRequest, KError, KResult, MetricsSnapshot,
    TableStats, Value, blocks_of_rows, BlockStream,
};

/// Named in-memory collections served as tables: `MemorySource::new("Pubs")
/// .with_table("publications", publications(100, 7))` answers
/// `TableScan { table: "publications" }` requests.
pub struct MemorySource {
    name: String,
    /// Behind a mutex so a registered (hence shared, immutable `self`)
    /// source can be refreshed in place with [`MemorySource::replace_table`]
    /// — the cache-invalidation tests model "the source changed
    /// underneath the mediator" this way.
    tables: Mutex<HashMap<String, Arc<Vec<Value>>>>,
    metrics: DriverMetrics,
}

impl MemorySource {
    pub fn new(name: impl Into<String>) -> MemorySource {
        MemorySource {
            name: name.into(),
            tables: Mutex::new(HashMap::new()),
            metrics: DriverMetrics::default(),
        }
    }

    fn tables(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Vec<Value>>>> {
        self.tables.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a collection value under a table name (builder-style).
    /// Non-collection values are wrapped as a single-row table.
    pub fn with_table(self, table: impl Into<String>, rows: Value) -> MemorySource {
        self.tables()
            .insert(table.into(), Arc::new(table_rows(rows)));
        self
    }

    /// Replace (or create) a table's contents in place — the "refreshed
    /// source" half of a FLUSH round-trip. Scans already streaming keep
    /// the old row vector alive through their own `Arc`s; new scans see
    /// the new rows.
    pub fn replace_table(&self, table: impl Into<String>, rows: Value) {
        self.tables()
            .insert(table.into(), Arc::new(table_rows(rows)));
    }

    /// A source named `Pubs` serving the paper's publication database as
    /// the `publications` table.
    pub fn publications(n: usize, seed: u64) -> MemorySource {
        MemorySource::new("Pubs").with_table("publications", crate::publications(n, seed))
    }
}

/// Rows of a table value; non-collection values become one-row tables.
fn table_rows(rows: Value) -> Vec<Value> {
    match rows.elements() {
        Some(es) => es.to_vec(),
        None => vec![rows],
    }
}

impl Driver for MemorySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> Capabilities {
        // Local and in-memory: the default (serial) admission budget is
        // fine — there is no latency to overlap — and the default
        // `prefetch_rows: 0` keeps rows fully lazy (a zero ceiling means
        // the adaptive buffer never exists at all); with the inline
        // `submit` adapter there is no pool worker to prefetch on, and
        // row "transfer" is an Arc-backed vector read anyway.
        Capabilities::default()
    }

    fn perform(&self, req: &DriverRequest) -> KResult<BlockStream> {
        self.metrics.record_request();
        let table = match req {
            DriverRequest::TableScan { table, columns: None } => table,
            DriverRequest::TableScan { columns: Some(_), .. } => {
                return Err(KError::driver(
                    &self.name,
                    "memory source does not project columns; scan whole tables",
                ))
            }
            other => {
                return Err(KError::driver(
                    &self.name,
                    format!("unsupported request: {}", other.describe()),
                ))
            }
        };
        let rows = self
            .tables()
            .get(table)
            .cloned()
            .ok_or_else(|| KError::driver(&self.name, format!("no table '{table}'")))?;
        // A local source ships nothing over a wire; the whole table is
        // accounted at request time and the stream shares the row vector.
        for v in rows.iter() {
            self.metrics.record_row(v.approx_size());
        }
        let mut i = 0;
        Ok(blocks_of_rows(Box::new(std::iter::from_fn(move || {
            let out = rows.get(i).cloned().map(Ok);
            i += 1;
            out
        }))))
    }

    fn table_stats(&self, table: &str) -> Option<TableStats> {
        self.tables().get(table).map(|rows| TableStats {
            rows: rows.len() as u64,
            ..TableStats::default()
        })
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kleisli_core::RequestStatus;

    #[test]
    fn one_method_driver_submits_through_the_default_adapter() {
        let src = MemorySource::publications(12, 1995);
        let handle = src
            .submit(&DriverRequest::TableScan {
                table: "publications".into(),
                columns: None,
            })
            .unwrap();
        // the default adapter completes inline
        assert_eq!(handle.poll(), RequestStatus::Ready);
        let rows: Vec<Value> = handle.wait().unwrap().collect::<KResult<_>>().unwrap();
        assert_eq!(rows.len(), 12);
        assert_eq!(src.metrics().requests, 1);
        assert_eq!(src.metrics().rows_shipped, 12);
    }

    #[test]
    fn unknown_tables_and_requests_error() {
        let src = MemorySource::new("M").with_table("t", Value::set(vec![Value::Int(1)]));
        assert!(src
            .perform(&DriverRequest::TableScan {
                table: "missing".into(),
                columns: None
            })
            .is_err());
        assert!(src
            .perform(&DriverRequest::EntrezLinks {
                db: "na".into(),
                uid: 1
            })
            .is_err());
        assert_eq!(src.table_stats("t").unwrap().rows, 1);
        assert!(src.table_stats("missing").is_none());
    }
}
