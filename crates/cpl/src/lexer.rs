//! Lexer for CPL surface syntax.
//!
//! CPL identifiers follow the paper's convention of embedded hyphens
//! (`locus-symbol`, `medline-jta`, `NA-Links`): a `-` is part of an
//! identifier when it is directly surrounded by identifier characters.
//! Binary subtraction therefore requires whitespace (`a - b`), which
//! matches every example in the paper.
//!
//! Comments run from `%` to end of line (the paper's ASN.1 excerpts use
//! `%` comments).

use kleisli_core::{KError, KResult};

/// A lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // keywords
    Define,
    If,
    Then,
    Else,
    Let,
    In,
    True,
    False,
    And,
    Or,
    Not,
    Mod,
    // brackets
    LBrace,     // {
    RBrace,     // }
    LBraceBar,  // {|
    RBraceBar,  // |}
    LBrack,     // [
    RBrack,     // ]
    LBrackBar,  // [|
    RBrackBar,  // |]
    LParen,     // (
    RParen,     // )
    Lt,         // <
    Gt,         // >
    // punctuation / operators
    Comma,
    Semi,
    Dot,
    Ellipsis,  // ...
    Backslash, // \
    LArrow,    // <-
    DArrow,    // =>
    EqEq,      // ==
    Eq,        // =
    Ne,        // <>
    Le,        // <=
    Ge,        // >=
    Pipe,      // |
    Caret,     // ^
    Plus,
    Minus,
    Star,
    Slash,
    Underscore,
    Eof,
}

impl Tok {
    /// Human-readable name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier '{s}'"),
            Tok::Int(i) => format!("integer {i}"),
            Tok::Float(x) => format!("float {x}"),
            Tok::Str(_) => "string literal".into(),
            Tok::Eof => "end of input".into(),
            other => format!("'{}'", symbol_of(other)),
        }
    }
}

fn symbol_of(t: &Tok) -> &'static str {
    match t {
        Tok::Define => "define",
        Tok::If => "if",
        Tok::Then => "then",
        Tok::Else => "else",
        Tok::Let => "let",
        Tok::In => "in",
        Tok::True => "true",
        Tok::False => "false",
        Tok::And => "and",
        Tok::Or => "or",
        Tok::Not => "not",
        Tok::Mod => "mod",
        Tok::LBrace => "{",
        Tok::RBrace => "}",
        Tok::LBraceBar => "{|",
        Tok::RBraceBar => "|}",
        Tok::LBrack => "[",
        Tok::RBrack => "]",
        Tok::LBrackBar => "[|",
        Tok::RBrackBar => "|]",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::Lt => "<",
        Tok::Gt => ">",
        Tok::Comma => ",",
        Tok::Semi => ";",
        Tok::Dot => ".",
        Tok::Ellipsis => "...",
        Tok::Backslash => "\\",
        Tok::LArrow => "<-",
        Tok::DArrow => "=>",
        Tok::EqEq => "==",
        Tok::Eq => "=",
        Tok::Ne => "<>",
        Tok::Le => "<=",
        Tok::Ge => ">=",
        Tok::Pipe => "|",
        Tok::Caret => "^",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Underscore => "_",
        _ => "?",
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Tokenize CPL source text.
pub fn lex(src: &str) -> KResult<Vec<Token>> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let done = t.kind == Tok::Eof;
        out.push(t);
        if done {
            return Ok(out);
        }
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> KError {
        KError::parse(msg, self.line, self.col)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> KResult<Token> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let mk = |kind| Token { kind, line, col };
        let Some(c) = self.peek() else {
            return Ok(mk(Tok::Eof));
        };
        // identifiers / keywords
        if c.is_ascii_alphabetic() {
            let word = self.lex_word();
            let kind = match word.as_str() {
                "define" => Tok::Define,
                "if" => Tok::If,
                "then" => Tok::Then,
                "else" => Tok::Else,
                "let" => Tok::Let,
                "in" => Tok::In,
                "true" => Tok::True,
                "false" => Tok::False,
                "and" => Tok::And,
                "or" => Tok::Or,
                "not" => Tok::Not,
                "mod" => Tok::Mod,
                _ => Tok::Ident(word),
            };
            return Ok(mk(kind));
        }
        // numbers
        if c.is_ascii_digit() {
            return self.lex_number().map(&mk);
        }
        // strings
        if c == b'"' {
            return self.lex_string().map(&mk);
        }
        // underscore: wildcard or identifier start
        if c == b'_' {
            if self
                .peek2()
                .is_some_and(|c2| c2.is_ascii_alphanumeric() || c2 == b'_')
            {
                let word = self.lex_word();
                return Ok(mk(Tok::Ident(word)));
            }
            self.bump();
            return Ok(mk(Tok::Underscore));
        }
        self.bump();
        let kind = match c {
            b'{' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::LBraceBar
                } else {
                    Tok::LBrace
                }
            }
            b'}' => Tok::RBrace,
            b'[' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::LBrackBar
                } else {
                    Tok::LBrack
                }
            }
            b']' => Tok::RBrack,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b'.' => {
                if self.peek() == Some(b'.') && self.peek2() == Some(b'.') {
                    self.bump();
                    self.bump();
                    Tok::Ellipsis
                } else {
                    Tok::Dot
                }
            }
            b'\\' => Tok::Backslash,
            b'^' => Tok::Caret,
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'|' => match self.peek() {
                Some(b'}') => {
                    self.bump();
                    Tok::RBraceBar
                }
                Some(b']') => {
                    self.bump();
                    Tok::RBrackBar
                }
                _ => Tok::Pipe,
            },
            b'<' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    Tok::LArrow
                }
                Some(b'=') => {
                    self.bump();
                    Tok::Le
                }
                Some(b'>') => {
                    self.bump();
                    Tok::Ne
                }
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Tok::Ge
                }
                _ => Tok::Gt,
            },
            b'=' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Tok::EqEq
                }
                Some(b'>') => {
                    self.bump();
                    Tok::DArrow
                }
                _ => Tok::Eq,
            },
            other => {
                return Err(KError::parse(
                    format!("unexpected character '{}'", other as char),
                    line,
                    col,
                ))
            }
        };
        Ok(mk(kind))
    }

    /// Lex an identifier; hyphens join when surrounded by ident chars.
    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let joining_hyphen = c == b'-'
                && self
                    .peek2()
                    .is_some_and(|c2| c2.is_ascii_alphanumeric() || c2 == b'_');
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' || joining_hyphen {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self) -> KResult<Tok> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.src.get(look), Some(b'+') | Some(b'-')) {
                look += 1;
            }
            if self.src.get(look).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if is_float {
            text.parse()
                .map(Tok::Float)
                .map_err(|_| self.err(format!("bad float literal '{text}'")))
        } else {
            text.parse()
                .map(Tok::Int)
                .map_err(|_| self.err(format!("integer literal out of range '{text}'")))
        }
    }

    fn lex_string(&mut self) -> KResult<Tok> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => return Ok(Tok::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    other => {
                        return Err(self.err(format!(
                            "unknown string escape '\\{}'",
                            other.map(|c| c as char).unwrap_or(' ')
                        )))
                    }
                },
                Some(c) if c < 0x80 => s.push(c as char),
                Some(first) => {
                    // multi-byte utf-8: copy the remaining bytes of the char
                    let mut bytes = vec![first];
                    let extra = match first {
                        0xC0..=0xDF => 1,
                        0xE0..=0xEF => 2,
                        _ => 3,
                    };
                    for _ in 0..extra {
                        if let Some(b) = self.bump() {
                            bytes.push(b);
                        }
                    }
                    s.push_str(&String::from_utf8_lossy(&bytes));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(
            kinds("locus-symbol"),
            vec![Tok::Ident("locus-symbol".into()), Tok::Eof]
        );
        // subtraction needs spaces
        assert_eq!(
            kinds("a - b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn bag_and_list_brackets() {
        assert_eq!(
            kinds("{| x |}"),
            vec![Tok::LBraceBar, Tok::Ident("x".into()), Tok::RBraceBar, Tok::Eof]
        );
        assert_eq!(
            kinds("[| x |]"),
            vec![Tok::LBrackBar, Tok::Ident("x".into()), Tok::RBrackBar, Tok::Eof]
        );
    }

    #[test]
    fn arrows_and_equality() {
        assert_eq!(
            kinds("\\x <- y == => = <> <= >="),
            vec![
                Tok::Backslash,
                Tok::Ident("x".into()),
                Tok::LArrow,
                Tok::Ident("y".into()),
                Tok::EqEq,
                Tok::DArrow,
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(kinds("3.25"), vec![Tok::Float(3.25), Tok::Eof]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        // field access after an int-looking receiver still works: `x.1`? not
        // supported — but `p.title` must lex Dot.
        assert_eq!(
            kinds("p.title"),
            vec![
                Tok::Ident("p".into()),
                Tok::Dot,
                Tok::Ident("title".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n""#),
            vec![Tok::Str("a\"b\n".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x % comment here\ny"),
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn ellipsis_vs_dot() {
        assert_eq!(kinds("..."), vec![Tok::Ellipsis, Tok::Eof]);
        assert_eq!(kinds("."), vec![Tok::Dot, Tok::Eof]);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("x\n  y").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn wildcard_vs_ident() {
        assert_eq!(kinds("_"), vec![Tok::Underscore, Tok::Eof]);
        assert_eq!(kinds("_x"), vec![Tok::Ident("_x".into()), Tok::Eof]);
    }
}
